"""RSL abstract syntax.

An RSL specification is a boolean combination of attribute relations:

* ``&(count=10)(memory>=2048)`` — conjunction, all relations must hold.
* ``|(...)(...)`` — disjunction, at least one must hold.
* ``+(...)(...)`` — a multi-request: each child is an independent
  specification (used for co-allocation across resource managers).

Values are strings, numbers or lists; relations carry one of the
operators ``= != < <= > >=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..errors import RSLError

#: A parsed value: scalar string/number or a list of values.
Value = Union[str, float, "Tuple[Value, ...]"]

_OPERATORS = ("=", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class RSLRelation:
    """One ``(attribute op value)`` clause."""

    attribute: str
    operator: str
    value: Value

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise RSLError(f"unknown RSL operator {self.operator!r}")
        if not self.attribute:
            raise RSLError("RSL relation has an empty attribute name")

    def matches(self, offered: Value) -> bool:
        """Whether an offered attribute value satisfies this relation.

        Numeric comparison is used when both sides parse as numbers;
        otherwise only ``=`` / ``!=`` string (in)equality is defined.
        """
        wanted = self.value
        offered_num = _as_number(offered)
        wanted_num = _as_number(wanted)
        if offered_num is not None and wanted_num is not None:
            comparisons = {
                "=": offered_num == wanted_num,
                "!=": offered_num != wanted_num,
                "<": offered_num < wanted_num,
                "<=": offered_num <= wanted_num,
                ">": offered_num > wanted_num,
                ">=": offered_num >= wanted_num,
            }
            return comparisons[self.operator]
        if self.operator == "=":
            return _canonical(offered) == _canonical(wanted)
        if self.operator == "!=":
            return _canonical(offered) != _canonical(wanted)
        raise RSLError(
            f"operator {self.operator!r} needs numeric operands: "
            f"{offered!r} vs {wanted!r}")

    def render(self) -> str:
        """Serialize back to ``(attribute op value)`` form."""
        return f"({self.attribute}{self.operator}{_render_value(self.value)})"


@dataclass(frozen=True)
class RSLExpression:
    """A boolean combination of relations and sub-expressions."""

    operator: str  # "&", "|" or "+"
    relations: "Tuple[RSLRelation, ...]" = ()
    children: "Tuple[RSLExpression, ...]" = ()

    def __post_init__(self) -> None:
        if self.operator not in ("&", "|", "+"):
            raise RSLError(f"unknown RSL combinator {self.operator!r}")

    def attributes(self) -> Dict[str, Value]:
        """Flat ``attribute -> value`` view of the ``=`` relations.

        Later bindings win, matching GRAM's last-value semantics. Only
        meaningful for conjunctions; nested children are merged.
        """
        result: Dict[str, Value] = {}
        for child in self.children:
            result.update(child.attributes())
        for relation in self.relations:
            if relation.operator == "=":
                result[relation.attribute] = relation.value
        return result

    def satisfied_by(self, offered: Dict[str, Value]) -> bool:
        """Whether an offered attribute map satisfies the expression.

        Relations over attributes absent from ``offered`` fail (the
        resource cannot demonstrate the property).
        """
        def relation_holds(relation: RSLRelation) -> bool:
            if relation.attribute not in offered:
                return False
            return relation.matches(offered[relation.attribute])

        parts = ([relation_holds(r) for r in self.relations] +
                 [c.satisfied_by(offered) for c in self.children])
        if not parts:
            return True
        if self.operator == "|":
            return any(parts)
        # "&" and "+" both require all parts (a multi-request is
        # satisfiable only if each component request is).
        return all(parts)

    def render(self) -> str:
        """Serialize back to RSL text.

        Every child expression is wrapped in exactly one pair of
        parentheses — the grammar's clause form — so nested
        conjunctions, disjunctions and multi-requests all re-parse.
        """
        inner = "".join(r.render() for r in self.relations)
        inner += "".join(f"({c.render()})" for c in self.children)
        return f"{self.operator}{inner}"


def _as_number(value: Value) -> Optional[float]:
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def _canonical(value: Value) -> Value:
    number = _as_number(value)
    if number is not None:
        return number
    if isinstance(value, str):
        return value
    return tuple(_canonical(item) for item in value)


def _render_value(value: Value) -> str:
    if isinstance(value, tuple):
        return "(" + " ".join(_render_value(item) for item in value) + ")"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    text = str(value)
    if any(ch in text for ch in " ()=<>!\"'") or text == "":
        escaped = text.replace('"', '""')
        return f'"{escaped}"'
    return text
