"""Globus RSL — the Resource Specification Language.

"In the context of GARA, resource specifications are described in
Globus Resource Specification Language (RSL) and used as the input
parameters for reservation purposes" (Section 3.1). The Reservation
System renders each reservation request as an RSL string and GARA
parses it back, so the wire format the paper relied on is genuinely
exercised.

* :mod:`repro.rsl.ast` — relations and boolean expressions.
* :mod:`repro.rsl.parser` — the tokenizer/recursive-descent parser.
* :mod:`repro.rsl.builder` — helpers mapping resource vectors to RSL.
"""

from .ast import RSLExpression, RSLRelation
from .builder import reservation_rsl, vector_from_rsl
from .parser import parse_rsl

__all__ = [
    "RSLExpression",
    "RSLRelation",
    "parse_rsl",
    "reservation_rsl",
    "vector_from_rsl",
]
