"""Mapping between resource vectors and RSL strings.

The Reservation System "generates the appropriate resource
specification RSL string, which describes the resources, and submits it
to GARA for reservation" (Section 3.1). These helpers perform that
rendering and the inverse extraction GARA applies on receipt.

Attribute names follow GRAM conventions: ``count`` (CPU nodes),
``memory`` / ``disk`` (MB), ``bandwidth`` (Mbps), plus reservation
window attributes ``start-time`` / ``end-time`` (simulation time).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import RSLError
from ..qos.vector import ResourceVector
from .ast import RSLExpression, RSLRelation
from .parser import parse_rsl

_ATTRIBUTE_FIELDS = (
    ("count", "cpu"),
    ("memory", "memory_mb"),
    ("disk", "disk_mb"),
    ("bandwidth", "bandwidth_mbps"),
)


def reservation_rsl(demand: ResourceVector, start_time: float,
                    end_time: float, *,
                    service_name: Optional[str] = None) -> str:
    """Render a reservation request as an RSL conjunction.

    Zero components are omitted — GARA ignores resources the request
    does not touch.
    """
    if end_time < start_time:
        raise RSLError(
            f"reservation window ends ({end_time}) before it starts "
            f"({start_time})")
    relations = []
    for attribute, field_name in _ATTRIBUTE_FIELDS:
        value = getattr(demand, field_name)
        if value > 0:
            relations.append(RSLRelation(attribute, "=", float(value)))
    relations.append(RSLRelation("start-time", "=", float(start_time)))
    relations.append(RSLRelation("end-time", "=", float(end_time)))
    if service_name:
        relations.append(RSLRelation("label", "=", service_name))
    return RSLExpression("&", relations=tuple(relations)).render()


def vector_from_rsl(text: str) -> "Tuple[ResourceVector, float, float, Optional[str]]":
    """Parse a reservation RSL back into ``(demand, start, end, label)``.

    Raises:
        RSLError: When the window attributes are missing or malformed.
    """
    expression = parse_rsl(text)
    attributes = expression.attributes()

    def numeric(name: str, default: Optional[float] = None) -> float:
        if name not in attributes:
            if default is not None:
                return default
            raise RSLError(f"RSL is missing required attribute {name!r}")
        value = attributes[name]
        if isinstance(value, str):
            try:
                value = float(value)
            except ValueError:
                raise RSLError(
                    f"attribute {name!r} is not numeric: {value!r}") from None
        if not isinstance(value, float):
            raise RSLError(f"attribute {name!r} is not numeric: {value!r}")
        return value

    demand = ResourceVector(
        cpu=numeric("count", 0.0),
        memory_mb=numeric("memory", 0.0),
        disk_mb=numeric("disk", 0.0),
        bandwidth_mbps=numeric("bandwidth", 0.0),
    )
    start_time = numeric("start-time")
    end_time = numeric("end-time")
    if end_time < start_time:
        raise RSLError(
            f"reservation window ends ({end_time}) before it starts "
            f"({start_time})")
    label = attributes.get("label")
    if label is not None and not isinstance(label, str):
        label = str(label)
    return demand, start_time, end_time, label
