"""Recursive-descent parser for the RSL subset GARA consumes.

Grammar (whitespace-insensitive)::

    specification := combinator clause+
    combinator    := '&' | '|' | '+'
    clause        := '(' specification ')'      -- nested expression
                   | '(' relation ')'
    relation      := attribute op value+
    op            := '=' | '!=' | '<' | '<=' | '>' | '>='
    value         := token | quoted | '(' value* ')'

Multiple values after one operator form a list, matching Globus
(``(arguments=a b c)``). Quoted strings use double quotes with ``""``
as the escape.
"""

from __future__ import annotations

from typing import List

from ..errors import RSLError
from .ast import RSLExpression, RSLRelation, Value

_COMBINATORS = "&|+"
_OPERATOR_STARTS = "=!<>"


class _Scanner:
    """Character scanner with look-ahead."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def skip_space(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_space()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def take(self) -> str:
        char = self.peek()
        if char:
            self.pos += 1
        return char

    def expect(self, char: str) -> None:
        got = self.take()
        if got != char:
            raise RSLError(
                f"expected {char!r} at position {self.pos} "
                f"of {self.text!r}, got {got!r}")

    def at_end(self) -> bool:
        self.skip_space()
        return self.pos >= len(self.text)


def parse_rsl(text: str) -> RSLExpression:
    """Parse an RSL string into an :class:`RSLExpression`.

    A bare relation list without a combinator (``(count=10)(memory=64)``)
    is treated as a conjunction, matching common Globus usage.
    """
    scanner = _Scanner(text)
    if scanner.at_end():
        raise RSLError("empty RSL specification")
    expression = _parse_expression(scanner)
    if not scanner.at_end():
        raise RSLError(
            f"trailing input at position {scanner.pos} of {text!r}")
    return expression


def _parse_expression(scanner: _Scanner) -> RSLExpression:
    char = scanner.peek()
    if char in _COMBINATORS:
        scanner.take()
        operator = char
    else:
        operator = "&"
    relations: List[RSLRelation] = []
    children: List[RSLExpression] = []
    saw_clause = False
    while scanner.peek() == "(":
        saw_clause = True
        scanner.expect("(")
        if scanner.peek() in _COMBINATORS:
            children.append(_parse_expression(scanner))
        else:
            relations.append(_parse_relation(scanner))
        scanner.expect(")")
    if not saw_clause:
        raise RSLError(
            f"expected '(' at position {scanner.pos} of {scanner.text!r}")
    return RSLExpression(operator=operator, relations=tuple(relations),
                         children=tuple(children))


def _parse_relation(scanner: _Scanner) -> RSLRelation:
    attribute = _parse_token(scanner)
    if not attribute:
        raise RSLError(
            f"expected attribute name at position {scanner.pos}")
    operator = _parse_operator(scanner)
    values: List[Value] = []
    while True:
        char = scanner.peek()
        if char == ")" or char == "":
            break
        values.append(_parse_value(scanner))
    if not values:
        raise RSLError(f"relation {attribute!r} has no value")
    value: Value = values[0] if len(values) == 1 else tuple(values)
    return RSLRelation(attribute=attribute, operator=operator, value=value)


def _parse_operator(scanner: _Scanner) -> str:
    first = scanner.take()
    if first not in _OPERATOR_STARTS:
        raise RSLError(
            f"expected operator at position {scanner.pos}, got {first!r}")
    if first == "=":
        return "="
    second = ""
    if scanner.pos < len(scanner.text) and scanner.text[scanner.pos] == "=":
        scanner.pos += 1
        second = "="
    operator = first + second
    if operator == "!":
        raise RSLError("'!' must be followed by '='")
    return operator


def _parse_value(scanner: _Scanner) -> Value:
    char = scanner.peek()
    if char == "(":
        scanner.expect("(")
        items: List[Value] = []
        while scanner.peek() != ")":
            if scanner.peek() == "":
                raise RSLError("unterminated value list")
            items.append(_parse_value(scanner))
        scanner.expect(")")
        return tuple(items)
    if char == '"':
        return _parse_quoted(scanner)
    token = _parse_token(scanner)
    if token == "":
        raise RSLError(f"expected a value at position {scanner.pos}")
    try:
        return float(token)
    except ValueError:
        return token


def _parse_quoted(scanner: _Scanner) -> str:
    scanner.expect('"')
    pieces: List[str] = []
    text = scanner.text
    while True:
        if scanner.pos >= len(text):
            raise RSLError("unterminated quoted string")
        char = text[scanner.pos]
        scanner.pos += 1
        if char == '"':
            # '""' is an escaped quote.
            if scanner.pos < len(text) and text[scanner.pos] == '"':
                pieces.append('"')
                scanner.pos += 1
                continue
            return "".join(pieces)
        pieces.append(char)


def _parse_token(scanner: _Scanner) -> str:
    scanner.skip_space()
    start = scanner.pos
    text = scanner.text
    while scanner.pos < len(text):
        char = text[scanner.pos]
        if char.isspace() or char in "()\"" or char in _OPERATOR_STARTS:
            break
        scanner.pos += 1
    return text[start:scanner.pos]
