"""Sites, links and administrative domains.

A :class:`Topology` is an undirected graph of named sites. Each link
carries a raw bandwidth capacity plus a *congestion factor* scaling the
capacity that is actually usable (congestion episodes are the paper's
"network traffic changes in unpredictable ways"). Sites belong to
administrative domains; "a domain can be defined via an IP mask or as
an administrative domain in Globus" (Section 2.1) — here, a domain is a
named set of sites managed by one NRM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import networkx as nx

from ..errors import NetworkError


@dataclass(frozen=True)
class Site:
    """A named network endpoint.

    Attributes:
        name: Site name (e.g. ``"siteA"``).
        domain: Administrative domain the site belongs to.
        address: The site's IP address, used in SLA documents.
    """

    name: str
    domain: str
    address: str = ""


@dataclass
class Link:
    """An undirected link between two sites.

    Attributes:
        a, b: Endpoint site names.
        capacity_mbps: Raw bandwidth.
        delay_ms: Propagation delay contribution.
        loss: Baseline packet-loss fraction.
        congestion_factor: In ``(0, 1]``; usable capacity is
            ``capacity_mbps * congestion_factor``.
        owner_domain: The single administrative domain whose NRM
            books this link. For a cross-domain link this defaults to
            the ``a``-side domain — the DiffServ convention that the
            upstream domain polices the inter-domain link.
    """

    a: str
    b: str
    capacity_mbps: float
    delay_ms: float = 1.0
    loss: float = 0.0
    congestion_factor: float = 1.0
    owner_domain: str = ""

    @property
    def key(self) -> "Tuple[str, str]":
        """Canonical (sorted) endpoint pair."""
        return tuple(sorted((self.a, self.b)))  # type: ignore[return-value]

    @property
    def usable_mbps(self) -> float:
        """Capacity after congestion scaling."""
        return self.capacity_mbps * self.congestion_factor

    def set_congestion(self, factor: float) -> None:
        """Set the congestion factor (1.0 = uncongested)."""
        if not 0.0 < factor <= 1.0:
            raise NetworkError(f"congestion factor out of (0, 1]: {factor}")
        self.congestion_factor = factor


@dataclass(frozen=True)
class Domain:
    """An administrative domain: a named set of sites."""

    name: str
    sites: "Tuple[str, ...]"


class Topology:
    """The network graph shared by all NRMs."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._sites: Dict[str, Site] = {}
        self._links: Dict[Tuple[str, str], Link] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_site(self, name: str, domain: str, *,
                 address: str = "") -> Site:
        """Register a site; names must be unique."""
        if name in self._sites:
            raise NetworkError(f"site {name!r} already exists")
        site = Site(name=name, domain=domain, address=address)
        self._sites[name] = site
        self._graph.add_node(name)
        return site

    def add_link(self, a: str, b: str, capacity_mbps: float, *,
                 delay_ms: float = 1.0, loss: float = 0.0,
                 owner_domain: str = "") -> Link:
        """Connect two existing sites."""
        for name in (a, b):
            if name not in self._sites:
                raise NetworkError(f"unknown site {name!r}")
        if a == b:
            raise NetworkError(f"self-link at {a!r}")
        link = Link(a=a, b=b, capacity_mbps=capacity_mbps,
                    delay_ms=delay_ms, loss=loss,
                    owner_domain=owner_domain or self._sites[a].domain)
        if link.key in self._links:
            raise NetworkError(f"link {a!r}-{b!r} already exists")
        self._links[link.key] = link
        self._graph.add_edge(a, b)
        return link

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def site(self, name: str) -> Site:
        """Look up a site by name."""
        found = self._sites.get(name)
        if found is None:
            raise NetworkError(f"unknown site {name!r}")
        return found

    def site_by_address(self, address: str) -> Site:
        """Look up a site by IP address (SLAs carry addresses)."""
        for site in self._sites.values():
            if site.address == address:
                return site
        raise NetworkError(f"no site has address {address!r}")

    def sites(self) -> List[Site]:
        """All sites."""
        return list(self._sites.values())

    def link(self, a: str, b: str) -> Link:
        """The link between two sites."""
        key = tuple(sorted((a, b)))
        found = self._links.get(key)  # type: ignore[arg-type]
        if found is None:
            raise NetworkError(f"no link between {a!r} and {b!r}")
        return found

    def links(self) -> List[Link]:
        """All links."""
        return list(self._links.values())

    def domains(self) -> List[Domain]:
        """Domains, derived from site membership."""
        members: Dict[str, List[str]] = {}
        for site in self._sites.values():
            members.setdefault(site.domain, []).append(site.name)
        return [Domain(name=name, sites=tuple(sorted(site_names)))
                for name, site_names in sorted(members.items())]

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path(self, source: str, destination: str) -> List[Link]:
        """Shortest path (by delay) between two sites, as links.

        Raises:
            NetworkError: When no path exists.
        """
        for name in (source, destination):
            if name not in self._sites:
                raise NetworkError(f"unknown site {name!r}")
        if source == destination:
            return []

        def weight(u: str, v: str, _attrs: dict) -> float:
            return self.link(u, v).delay_ms

        try:
            nodes = nx.shortest_path(self._graph, source, destination,
                                     weight=weight)
        except nx.NetworkXNoPath:
            raise NetworkError(
                f"no path between {source!r} and {destination!r}") from None
        return [self.link(u, v) for u, v in zip(nodes, nodes[1:])]

    def path_delay_ms(self, source: str, destination: str) -> float:
        """Total propagation delay along the shortest path."""
        return sum(link.delay_ms for link in self.path(source, destination))

    def path_loss(self, source: str, destination: str) -> float:
        """End-to-end loss fraction along the shortest path."""
        survive = 1.0
        for link in self.path(source, destination):
            survive *= (1.0 - link.loss)
        return 1.0 - survive
