"""Network resources: topology, bandwidth brokers, inter-domain SLAs.

"The Network Resource Manager (NRM) is conceptually a Bandwidth Broker
... and manages QoS parameters within a given domain based on the SLAs
agreed to in that domain. The NRM is also responsible for managing
inter-domain communication with NRMs in neighboring domains"
(Section 2.1). This package provides:

* :mod:`repro.network.topology` — sites, links and domains over a
  networkx graph, with per-link capacities and congestion state.
* :mod:`repro.network.nrm` — the per-domain bandwidth broker, with
  path reservation, measurement and degradation notification.
* :mod:`repro.network.interdomain` — end-to-end coordination across
  domain boundaries (two-phase reserve/commit).
"""

from .congestion import CongestionEpisode, CongestionInjector
from .interdomain import EndToEndAllocation, InterDomainCoordinator
from .nrm import FlowAllocation, NetworkMeasurement, NetworkResourceManager
from .topology import Domain, Link, Site, Topology

__all__ = [
    "CongestionEpisode",
    "CongestionInjector",
    "Domain",
    "EndToEndAllocation",
    "FlowAllocation",
    "InterDomainCoordinator",
    "Link",
    "NetworkMeasurement",
    "NetworkResourceManager",
    "Site",
    "Topology",
]
