"""The Network Resource Manager — a per-domain bandwidth broker.

The NRM admits bandwidth reservations along paths inside its domain,
tracks per-link allocations on advance-reservation slot tables, answers
the broker's ``QueryNetworkResources`` call (Figure 2), measures the
QoS a flow actually receives (congestion squeezes flows
proportionally), and "notifies the SLA-Verif system of such
degradation" (Section 3.2) through registered listeners.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import CapacityError, NetworkError
from ..gara.slot_table import SlotEntry, SlotTable
from ..qos.vector import ResourceVector
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from ..telemetry import Telemetry
from .topology import Link, Topology


@dataclass(frozen=True)
class NetworkMeasurement:
    """What a flow is actually receiving.

    Attributes:
        flow_id: The measured flow.
        bandwidth_mbps: Delivered bandwidth after congestion scaling.
        delay_ms: End-to-end path delay.
        loss: End-to-end loss fraction.
    """

    flow_id: int
    bandwidth_mbps: float
    delay_ms: float
    loss: float


@dataclass
class FlowAllocation:
    """A bandwidth reservation along a path.

    Attributes:
        flow_id: Unique id.
        source: Source site name.
        destination: Destination site name.
        bandwidth_mbps: Agreed bandwidth.
        links: The path links (in order).
        entries: Per-link slot-table bookings.
        start, end: Reservation window.
        active: Whether the allocation still holds bandwidth.
        committed: Whether the booking was confirmed (vs temporary);
            reconciliation uses this to tell a confirmed composite
            from one still inside GARA's auto-cancel window.
    """

    flow_id: int
    source: str
    destination: str
    bandwidth_mbps: float
    links: List[Link]
    entries: List[SlotEntry]
    start: float
    end: float
    active: bool = True
    committed: bool = False

    def commit(self) -> None:
        """Mark the booking confirmed (idempotent)."""
        self.committed = True


#: Degradation listener: called with (flow, measurement) when a flow's
#: delivered bandwidth drops below its agreed bandwidth.
DegradationListener = Callable[[FlowAllocation, NetworkMeasurement], None]


class NetworkResourceManager:
    """Bandwidth broker for one administrative domain.

    Args:
        sim: Simulation engine.
        topology: The shared network graph.
        domain: The domain this NRM manages; flows whose path leaves
            the domain must go through the inter-domain coordinator.
        rng: Optional random source for measurement noise.
        measurement_noise: Std-dev of multiplicative Gaussian noise on
            measured bandwidth (0 = exact).
        trace: Optional activity recorder.
    """

    def __init__(self, sim: Simulator, topology: Topology, domain: str, *,
                 rng: Optional[RandomSource] = None,
                 measurement_noise: float = 0.0,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._topology = topology
        self.domain = domain
        self._rng = rng
        self.measurement_noise = measurement_noise
        self._trace = trace
        self._tables: Dict[Tuple[str, str], SlotTable] = {}
        self._flows: Dict[int, FlowAllocation] = {}
        # Per-domain flow numbering (like per-table slot-entry ids):
        # two testbeds built in one process assign identical flow ids,
        # so journal payloads are comparable across runs.
        self._flow_ids = itertools.count(1)
        self._listeners: List[DegradationListener] = []
        #: Optional telemetry hub; ``None`` keeps allocation untouched.
        self.telemetry: Optional[Telemetry] = None

    def _observe(self, op: str) -> None:
        """Count one flow operation and refresh the live-flow gauge."""
        telemetry = self.telemetry
        if telemetry is None:
            return
        telemetry.metrics.counter("repro_nrm_operations_total",
                                  domain=self.domain, op=op).inc()
        telemetry.metrics.gauge("repro_nrm_active_flows",
                                domain=self.domain).set(
            float(len(self._flows)))

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def _table(self, link: Link) -> SlotTable:
        table = self._tables.get(link.key)
        if table is None:
            table = SlotTable(ResourceVector(
                bandwidth_mbps=link.capacity_mbps))
            self._tables[link.key] = table
        return table

    def _owns(self, link: Link) -> bool:
        return link.owner_domain == self.domain

    def domain_links(self, source: str, destination: str) -> List[Link]:
        """The shortest-path links, verified to be owned by this domain.

        Raises:
            NetworkError: When the path uses links another domain's NRM
                books (the caller must use the inter-domain coordinator).
        """
        links = self._topology.path(source, destination)
        for link in links:
            if not self._owns(link):
                raise NetworkError(
                    f"link {link.a!r}-{link.b!r} is owned by domain "
                    f"{link.owner_domain!r}, not {self.domain!r}; use "
                    f"InterDomainCoordinator")
        return links

    # ------------------------------------------------------------------
    # Admission / allocation
    # ------------------------------------------------------------------

    def available_bandwidth(self, source: str, destination: str,
                            start: float, end: float) -> float:
        """Free end-to-end bandwidth over a window (min across links)."""
        return self.available_on_links(
            self.domain_links(source, destination), start, end)

    def available_on_links(self, links: List[Link], start: float,
                           end: float) -> float:
        """Free bandwidth over a window on an explicit link list."""
        if not links:
            return float("inf")
        return min(self._table(link).available(start, end).bandwidth_mbps
                   for link in links)

    def available_bandwidth_at(self, source: str, destination: str,
                               time: float) -> float:
        """Instantaneous free end-to-end bandwidth (profile fast path).

        The slot-table point query replaces the
        ``available(now, now + 1e-9)`` pinhole-window idiom for
        "what could this path carry right now" probes.
        """
        links = self.domain_links(source, destination)
        if not links:
            return float("inf")
        return min(self._table(link).available_at(time).bandwidth_mbps
                   for link in links)

    def can_allocate(self, source: str, destination: str,
                     bandwidth_mbps: float, start: float,
                     end: float) -> bool:
        """Whether a flow of the given bandwidth is admissible."""
        try:
            return (self.available_bandwidth(source, destination, start, end)
                    >= bandwidth_mbps)
        except NetworkError:
            return False

    def allocate(self, source: str, destination: str,
                 bandwidth_mbps: float, start: float,
                 end: float) -> FlowAllocation:
        """Reserve ``bandwidth_mbps`` along the path over ``[start, end)``.

        Bookings are atomic: on a mid-path capacity failure, already-
        booked links are rolled back.

        Raises:
            CapacityError: When some link lacks the bandwidth.
            NetworkError: When no intra-domain path exists.
        """
        links = self.domain_links(source, destination)
        return self.allocate_links(links, source, destination,
                                   bandwidth_mbps, start, end)

    def allocate_links(self, links: List[Link], source: str,
                       destination: str, bandwidth_mbps: float,
                       start: float, end: float) -> FlowAllocation:
        """Reserve bandwidth along an explicit owned link list.

        The inter-domain coordinator uses this to book the segment of a
        cross-domain path that this NRM owns.

        Raises:
            CapacityError: When some link lacks the bandwidth (earlier
                bookings are rolled back).
            NetworkError: On non-positive bandwidth or foreign links.
        """
        if bandwidth_mbps <= 0:
            raise NetworkError(
                f"bandwidth must be positive: {bandwidth_mbps}")
        for link in links:
            if not self._owns(link):
                raise NetworkError(
                    f"link {link.a!r}-{link.b!r} is owned by domain "
                    f"{link.owner_domain!r}, not {self.domain!r}")
        demand = ResourceVector(bandwidth_mbps=bandwidth_mbps)
        booked: List[SlotEntry] = []
        try:
            for link in links:
                booked.append(self._table(link).reserve(
                    demand, start, end,
                    label=f"{source}->{destination}"))
        except CapacityError:
            for link, entry in zip(links, booked):
                self._table(link).release(entry)
            raise
        flow = FlowAllocation(
            flow_id=next(self._flow_ids), source=source,
            destination=destination, bandwidth_mbps=bandwidth_mbps,
            links=list(links), entries=booked, start=start, end=end)
        self._flows[flow.flow_id] = flow
        if not math.isinf(end):
            self._sim.schedule_at(end, lambda: self._expire(flow.flow_id),
                                  label=f"nrm:{self.domain}:flow-expiry")
        self._observe("allocate")
        self._record(f"allocated flow {flow.flow_id} "
                     f"{source}->{destination} at {bandwidth_mbps:g} Mbps")
        return flow

    def release(self, flow: FlowAllocation) -> None:
        """Tear down a flow and free its bandwidth."""
        if not flow.active:
            return
        flow.active = False
        for link, entry in zip(flow.links, flow.entries):
            self._table(link).release(entry)
        self._flows.pop(flow.flow_id, None)
        self._observe("release")
        self._record(f"released flow {flow.flow_id}")

    def resize(self, flow: FlowAllocation, bandwidth_mbps: float) -> None:
        """Change a live flow's bandwidth (adaptation's modify path).

        Raises:
            CapacityError: When growing past some link's free capacity;
                already-resized links are rolled back.
        """
        if not flow.active:
            raise NetworkError(f"flow {flow.flow_id} is not active")
        demand = ResourceVector(bandwidth_mbps=bandwidth_mbps)
        new_entries: List[SlotEntry] = []
        for index, (link, entry) in enumerate(zip(flow.links, flow.entries)):
            try:
                new_entries.append(self._table(link).resize(entry, demand))
            except CapacityError:
                for prev_index in range(index):
                    restored = self._table(flow.links[prev_index]).resize(
                        new_entries[prev_index],
                        ResourceVector(bandwidth_mbps=flow.bandwidth_mbps))
                    flow.entries[prev_index] = restored
                raise
        flow.entries = new_entries
        flow.bandwidth_mbps = bandwidth_mbps
        self._observe("resize")
        self._record(f"resized flow {flow.flow_id} to {bandwidth_mbps:g} Mbps")

    def _expire(self, flow_id: int) -> None:
        flow = self._flows.get(flow_id)
        if flow is not None and flow.active:
            flow.active = False
            for link, entry in zip(flow.links, flow.entries):
                self._table(link).release(entry)
            self._flows.pop(flow_id, None)
            self._observe("expire")
            self._record(f"flow {flow_id} expired")

    def flows(self) -> List[FlowAllocation]:
        """All active flows."""
        return [flow for flow in self._flows.values() if flow.active]

    def flow(self, flow_id: int) -> Optional[FlowAllocation]:
        """Look up an active flow by id (``None`` when gone).

        Recovery's reconciliation sweep uses this to re-adopt journaled
        network bookings that survived a broker crash.
        """
        flow = self._flows.get(flow_id)
        if flow is not None and flow.active:
            return flow
        return None

    # ------------------------------------------------------------------
    # Measurement & congestion
    # ------------------------------------------------------------------

    def measure(self, flow: FlowAllocation) -> NetworkMeasurement:
        """What the flow is currently receiving.

        When a link's usable capacity (after congestion) is below its
        total booked bandwidth, flows on the link are squeezed
        proportionally.
        """
        delivered = flow.bandwidth_mbps
        for link, entry in zip(flow.links, flow.entries):
            booked = self._table(link).usage_at(self._sim.now).bandwidth_mbps
            if booked <= 0:
                continue
            scale = min(1.0, link.usable_mbps / booked)
            delivered = min(delivered, flow.bandwidth_mbps * scale)
        if self._rng is not None and self.measurement_noise > 0:
            noise = self._rng.normal(1.0, self.measurement_noise)
            delivered = max(0.0, delivered * noise)
        delivered = min(delivered, flow.bandwidth_mbps)
        delay = sum(link.delay_ms for link in flow.links)
        survive = 1.0
        for link in flow.links:
            survive *= (1.0 - link.loss)
        return NetworkMeasurement(flow_id=flow.flow_id,
                                  bandwidth_mbps=delivered,
                                  delay_ms=delay, loss=1.0 - survive)

    def subscribe_degradation(self, listener: DegradationListener) -> None:
        """Register a degradation listener (the SLA-Verif hook)."""
        self._listeners.append(listener)

    def set_congestion(self, a: str, b: str, factor: float) -> None:
        """Congest (or clear) a link and notify degraded flows."""
        link = self._topology.link(a, b)
        link.set_congestion(factor)
        self._record(f"link {a}-{b} congestion factor -> {factor:g}")
        for flow in self.flows():
            if link.key in {l.key for l in flow.links}:
                measurement = self.measure(flow)
                if measurement.bandwidth_mbps < flow.bandwidth_mbps - 1e-9:
                    for listener in list(self._listeners):
                        listener(flow, measurement)

    def _record(self, message: str) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, "network",
                               f"nrm.{self.domain}: {message}")
