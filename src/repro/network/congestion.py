"""Stochastic link-congestion injection.

The adaptation scheme exists because "workload or network traffic
changes in unpredictable ways during an active session" (abstract).
The :class:`CongestionInjector` provides the network half of that
unpredictability: congestion episodes strike random links with
exponential inter-arrival times, squeeze the link's usable capacity by
a random factor for a random duration, then clear. Every squeeze goes
through :meth:`NetworkResourceManager.set_congestion`, so degraded
flows raise the same NRM→SLA-Verif notifications a real bandwidth
broker would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from .nrm import NetworkResourceManager
from .topology import Link
from ..errors import ValidationError


@dataclass(frozen=True)
class CongestionEpisode:
    """One injected episode (for post-run inspection)."""

    link_key: "Tuple[str, str]"
    start: float
    end: float
    factor: float


class CongestionInjector:
    """Random congestion episodes over one NRM's links.

    Args:
        sim: Simulation engine.
        nrm: The bandwidth broker whose links are congested.
        links: The candidate links (defaults to every link the NRM's
            domain owns in the topology).
        rng: Seeded random source (use a dedicated stream).
        mtbc: Mean time between congestion episodes.
        mean_duration: Mean episode length.
        severity: ``(low, high)`` uniform range for the congestion
            factor applied (0.3 = 70% capacity loss).
        trace: Optional activity recorder.
    """

    def __init__(self, sim: Simulator, nrm: NetworkResourceManager, *,
                 links: Optional[List[Link]] = None,
                 rng: Optional[RandomSource] = None,
                 mtbc: float = 100.0, mean_duration: float = 30.0,
                 severity: "Tuple[float, float]" = (0.3, 0.8),
                 trace: Optional[TraceRecorder] = None) -> None:
        if mtbc <= 0 or mean_duration <= 0:
            raise ValidationError("mtbc and mean_duration must be positive")
        low, high = severity
        if not 0.0 < low <= high <= 1.0:
            raise ValidationError(f"severity range out of (0, 1]: {severity}")
        self._sim = sim
        self._nrm = nrm
        if links is None:
            topology = nrm._topology  # noqa: SLF001 — same package
            links = [link for link in topology.links()
                     if link.owner_domain == nrm.domain]
        if not links:
            raise ValidationError("no candidate links to congest")
        self._links = list(links)
        self._rng = rng if rng is not None else RandomSource(0)
        self.mtbc = mtbc
        self.mean_duration = mean_duration
        self.severity = severity
        self._trace = trace
        self._congested: "set[Tuple[str, str]]" = set()
        self.episodes: List[CongestionEpisode] = []
        self._running = False

    def start(self) -> None:
        """Begin injecting congestion episodes."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Stop injecting (active episodes still clear)."""
        self._running = False

    def _schedule_next(self) -> None:
        delay = self._rng.exponential(self.mtbc)
        self._sim.schedule(delay, self._strike,
                           label=f"congestion:{self._nrm.domain}")

    def _strike(self) -> None:
        if not self._running:
            return
        candidates = [link for link in self._links
                      if link.key not in self._congested]
        if candidates:
            link = self._rng.choice(candidates)
            factor = self._rng.uniform(*self.severity)
            duration = self._rng.exponential(self.mean_duration)
            self._congested.add(link.key)
            self._nrm.set_congestion(link.a, link.b, factor)
            self.episodes.append(CongestionEpisode(
                link_key=link.key, start=self._sim.now,
                end=self._sim.now + duration, factor=factor))
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "congestion",
                    f"link {link.a}-{link.b} congested to "
                    f"{factor:.0%} for {duration:.1f}")
            self._sim.schedule(duration, lambda: self._clear(link),
                               label=f"congestion:clear:{link.a}-{link.b}")
        self._schedule_next()

    def _clear(self, link: Link) -> None:
        if link.key not in self._congested:
            return
        self._congested.discard(link.key)
        self._nrm.set_congestion(link.a, link.b, 1.0)
        if self._trace is not None:
            self._trace.record(self._sim.now, "congestion",
                               f"link {link.a}-{link.b} cleared")
