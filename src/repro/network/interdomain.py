"""Inter-domain bandwidth coordination.

"The NRM is also responsible for managing inter-domain communication
with NRMs in neighboring domains, in order to coordinate SLAs across
domain boundaries" (Section 2.1). The coordinator splits an end-to-end
path into per-domain segments (cross-domain links are attributed to the
upstream domain's NRM) and performs a two-phase reserve: every segment
is booked, and if any NRM refuses, all prior bookings are rolled back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import CapacityError, NetworkError
from .nrm import FlowAllocation, NetworkResourceManager
from .topology import Link, Topology


@dataclass
class EndToEndAllocation:
    """A cross-domain bandwidth reservation: one flow per segment."""

    source: str
    destination: str
    bandwidth_mbps: float
    segments: "List[Tuple[NetworkResourceManager, FlowAllocation]]"
    active: bool = True
    committed: bool = False

    def release(self) -> None:
        """Tear down every segment."""
        if not self.active:
            return
        self.active = False
        for nrm, flow in self.segments:
            nrm.release(flow)

    def commit(self) -> None:
        """Mark every segment's booking confirmed (idempotent)."""
        self.committed = True
        for _nrm, flow in self.segments:
            flow.commit()


class InterDomainCoordinator:
    """Coordinates end-to-end reservations across NRMs."""

    def __init__(self, topology: Topology,
                 nrms: "List[NetworkResourceManager]") -> None:
        self._topology = topology
        self._nrms: Dict[str, NetworkResourceManager] = {}
        for nrm in nrms:
            if nrm.domain in self._nrms:
                raise NetworkError(
                    f"duplicate NRM for domain {nrm.domain!r}")
            self._nrms[nrm.domain] = nrm

    def nrm_for(self, domain: str) -> NetworkResourceManager:
        """The NRM managing a domain."""
        nrm = self._nrms.get(domain)
        if nrm is None:
            raise NetworkError(f"no NRM registered for domain {domain!r}")
        return nrm

    def nrms(self) -> "List[NetworkResourceManager]":
        """Every managed NRM, in deterministic domain order."""
        return [self._nrms[domain] for domain in sorted(self._nrms)]

    def _segments(self, source: str, destination: str
                  ) -> "List[Tuple[str, List[Link], str, str]]":
        """Split the path into consecutive same-owner link runs.

        Each segment is ``(owner_domain, links, seg_src, seg_dst)``.
        Link ownership follows :attr:`Link.owner_domain` — cross-domain
        links default to the upstream domain (DiffServ convention).
        """
        links = self._topology.path(source, destination)
        if not links:
            return []
        # Re-derive the node order along the path.
        nodes = [source]
        for link in links:
            nodes.append(link.b if nodes[-1] == link.a else link.a)
        segments: List[Tuple[str, List[Link], str, str]] = []
        run: List[Link] = [links[0]]
        run_start = nodes[0]
        for index in range(1, len(links)):
            if links[index].owner_domain == run[-1].owner_domain:
                run.append(links[index])
            else:
                segments.append((run[-1].owner_domain, run,
                                 run_start, nodes[index]))
                run_start = nodes[index]
                run = [links[index]]
        segments.append((run[-1].owner_domain, run, run_start, nodes[-1]))
        return segments

    def can_allocate(self, source: str, destination: str,
                     bandwidth_mbps: float, start: float,
                     end: float) -> bool:
        """Whether every segment can carry the bandwidth."""
        try:
            for domain, links, _src, _dst in self._segments(source, destination):
                nrm = self.nrm_for(domain)
                if nrm.available_on_links(links, start, end) < bandwidth_mbps:
                    return False
        except NetworkError:
            return False
        return True

    def allocate(self, source: str, destination: str,
                 bandwidth_mbps: float, start: float,
                 end: float) -> EndToEndAllocation:
        """Two-phase end-to-end reservation.

        Raises:
            CapacityError: When any segment lacks the bandwidth; all
                earlier segments are rolled back.
        """
        booked: List[Tuple[NetworkResourceManager, FlowAllocation]] = []
        try:
            for domain, links, seg_src, seg_dst in self._segments(
                    source, destination):
                nrm = self.nrm_for(domain)
                flow = nrm.allocate_links(links, seg_src, seg_dst,
                                          bandwidth_mbps, start, end)
                booked.append((nrm, flow))
        except (CapacityError, NetworkError):
            for nrm, flow in booked:
                nrm.release(flow)
            raise
        return EndToEndAllocation(source=source, destination=destination,
                                  bandwidth_mbps=bandwidth_mbps,
                                  segments=booked)

    def measure(self, allocation: EndToEndAllocation) -> float:
        """End-to-end delivered bandwidth (min across segments)."""
        if not allocation.segments:
            return allocation.bandwidth_mbps
        return min(nrm.measure(flow).bandwidth_mbps
                   for nrm, flow in allocation.segments)
