"""Monitoring: sensors, the MDS information service, SLA-Verif.

"The QoS monitoring system keeps track of Grid resources and provides
information on resources, such as resource availability and
utilization, to be used for adaptation purposes" (Section 3.2).

* :mod:`repro.monitoring.sensors` — CPU and network sensors.
* :mod:`repro.monitoring.mds` — the Globus MDS-like information
  service the SLA-Verif polls "using the Java CoG Kit MDS APIs".
* :mod:`repro.monitoring.verifier` — the SLA-Verif component:
  on-demand conformance tests, periodic polling, degradation
  notifications.
* :mod:`repro.monitoring.notifications` — the pub/sub hub carrying
  degradation notifications to the broker.
* :mod:`repro.monitoring.relay` — the hub's bus transport, making
  notices droppable/delayable under fault injection.
"""

from .mds import InformationService
from .notifications import DegradationNotice, NotificationHub
from .relay import BusNotificationRelay
from .sensors import ComputeSensor, NetworkSensor, Sensor, SensorReading
from .verifier import SlaVerifier

__all__ = [
    "BusNotificationRelay",
    "ComputeSensor",
    "DegradationNotice",
    "InformationService",
    "NetworkSensor",
    "NotificationHub",
    "Sensor",
    "SensorReading",
    "SlaVerifier",
]
