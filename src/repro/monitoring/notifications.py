"""Degradation notifications.

"When the network QoS degrades, the Network Resource Manager (NRM)
notifies the SLA-Verif system of such degradation" (Section 3.2), and
SLA-Verif "generates a notification of any QoS degradation of an
agreed on QoS". The :class:`NotificationHub` is the pub/sub channel
those notices travel on; the AQoS broker subscribes and feeds
Scenario 3 adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..sla.violations import ConformanceReport


@dataclass(frozen=True)
class DegradationNotice:
    """One degradation event.

    Attributes:
        sla_id: The affected session.
        time: When the degradation was detected.
        source: Which component raised it (``"nrm"``, ``"sla-verif"``,
            ``"compute"``).
        report: The conformance report that triggered the notice, when
            one exists.
        detail: Human-readable description.
    """

    sla_id: int
    time: float
    source: str
    report: Optional[ConformanceReport] = None
    detail: str = ""

    @property
    def severity(self) -> float:
        """Worst violation severity carried by the notice (0 if none)."""
        if self.report is None:
            return 0.0
        worst = self.report.worst()
        return worst.severity if worst is not None else 0.0


#: Subscriber callback.
Subscriber = Callable[[DegradationNotice], None]


class NotificationHub:
    """A pub/sub hub for degradation notices.

    By default delivery is synchronous fan-out (the pre-chaos
    behaviour). A *transport* — e.g. the
    :class:`~repro.monitoring.relay.BusNotificationRelay` — can be
    installed to carry notices over the message bus instead; the
    transport must eventually call :meth:`deliver` for each notice
    that survives the trip (a dropped notification simply never
    arrives, which is why consumers must also poll).
    """

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        self._log: List[DegradationNotice] = []
        self._transport: Optional[Subscriber] = None

    def subscribe(self, subscriber: Subscriber) -> None:
        """Register a subscriber; every publish reaches all of them."""
        self._subscribers.append(subscriber)

    def install_transport(self, transport: Optional[Subscriber]) -> None:
        """Route future publishes through ``transport`` (``None``
        restores synchronous fan-out)."""
        self._transport = transport

    def publish(self, notice: DegradationNotice) -> None:
        """Emit a notice (retained in the log either way)."""
        self._log.append(notice)
        if self._transport is not None:
            self._transport(notice)
            return
        self.deliver(notice)

    def deliver(self, notice: DegradationNotice) -> None:
        """Fan a notice out to subscribers (the transport's delivery
        entry point; called directly by :meth:`publish` when no
        transport is installed)."""
        for subscriber in list(self._subscribers):
            subscriber(notice)

    def log(self) -> List[DegradationNotice]:
        """All notices ever published (a copy)."""
        return list(self._log)

    def for_sla(self, sla_id: int) -> List[DegradationNotice]:
        """Notices concerning one SLA."""
        return [notice for notice in self._log if notice.sla_id == sla_id]
