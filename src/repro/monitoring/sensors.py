"""Sensors over the simulated resource managers.

Foster et al.'s adaptive architecture (which the paper builds on) uses
"sensors that permit monitoring of resource allocation". A sensor here
is a named probe that, when sampled, returns a
:class:`SensorReading` — a bag of per-dimension values plus metadata.
Compute sensors read the compute RM (capacity, utilization, free
nodes); network sensors measure a specific flow through its NRM.
Optional multiplicative noise models imperfect measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import MonitoringError
from ..network.nrm import FlowAllocation, NetworkResourceManager
from ..qos.parameters import Dimension
from ..resources.compute import ComputeResourceManager
from ..sim.engine import Simulator
from ..sim.random import RandomSource


@dataclass(frozen=True)
class SensorReading:
    """One sample from a sensor.

    Attributes:
        sensor: Name of the producing sensor.
        time: Sample time.
        values: Per-dimension measurements.
        extra: Non-dimension metadata (e.g. ``"utilization"``).
    """

    sensor: str
    time: float
    values: "Dict[Dimension, float]"
    extra: "Dict[str, float]" = field(default_factory=dict)


class Sensor:
    """Base sensor: named, sampled on demand."""

    def __init__(self, name: str, sim: Simulator, *,
                 rng: Optional[RandomSource] = None,
                 noise: float = 0.0) -> None:
        self.name = name
        self._sim = sim
        self._rng = rng
        self.noise = noise

    def _jitter(self, value: float) -> float:
        """Apply multiplicative Gaussian noise when configured."""
        if self._rng is None or self.noise <= 0:
            return value
        return max(0.0, value * self._rng.normal(1.0, self.noise))

    def sample(self) -> SensorReading:
        """Take one sample. Subclasses must override."""
        raise NotImplementedError


class ComputeSensor(Sensor):
    """Reads a compute resource manager's current state."""

    def __init__(self, name: str, sim: Simulator,
                 rm: ComputeResourceManager, *,
                 rng: Optional[RandomSource] = None,
                 noise: float = 0.0) -> None:
        super().__init__(name, sim, rng=rng, noise=noise)
        self._rm = rm

    def sample(self) -> SensorReading:
        """Capacity, free nodes and utilization right now."""
        now = self._sim.now
        capacity = self._rm.capacity()
        free = self._rm.available_at(now)
        return SensorReading(
            sensor=self.name, time=now,
            values={
                Dimension.CPU: self._jitter(capacity.cpu),
                Dimension.MEMORY_MB: self._jitter(capacity.memory_mb),
            },
            extra={
                "free_cpu": free.cpu,
                "free_memory_mb": free.memory_mb,
                "utilization": self._rm.utilization(),
                "running_jobs": float(len(self._rm.running_jobs())),
            })


class NetworkSensor(Sensor):
    """Measures one flow through its NRM."""

    def __init__(self, name: str, sim: Simulator,
                 nrm: NetworkResourceManager, flow: FlowAllocation, *,
                 rng: Optional[RandomSource] = None,
                 noise: float = 0.0) -> None:
        super().__init__(name, sim, rng=rng, noise=noise)
        self._nrm = nrm
        self._flow = flow

    @property
    def flow(self) -> FlowAllocation:
        """The measured flow."""
        return self._flow

    def sample(self) -> SensorReading:
        """Delivered bandwidth, delay and loss for the flow.

        Raises:
            MonitoringError: When the flow is no longer active.
        """
        if not self._flow.active:
            raise MonitoringError(
                f"flow {self._flow.flow_id} is no longer active")
        measurement = self._nrm.measure(self._flow)
        return SensorReading(
            sensor=self.name, time=self._sim.now,
            values={
                Dimension.BANDWIDTH_MBPS: self._jitter(
                    measurement.bandwidth_mbps),
                Dimension.DELAY_MS: measurement.delay_ms,
                Dimension.PACKET_LOSS: measurement.loss,
            },
            extra={"agreed_mbps": self._flow.bandwidth_mbps})
