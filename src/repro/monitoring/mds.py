"""The MDS-like information service.

"The SLA-Verif obtains QoS levels from both the NRM, for network
resources, and the Globus information service (MDS) for CPU QoS"
(Section 3.2). :class:`InformationService` is that directory: sensors
register under hierarchical names, queries return the latest (cached)
or a fresh reading, and readings are retained for history-style
queries the experiment harness uses.
"""

from __future__ import annotations

import fnmatch
from typing import Dict, List, Optional

from ..errors import MonitoringError
from ..sim.engine import Simulator
from .sensors import Sensor, SensorReading


class InformationService:
    """A queryable directory of sensors (the MDS analogue).

    Args:
        sim: Simulation engine (timestamps cached readings).
        history_limit: How many readings are retained per sensor.
    """

    def __init__(self, sim: Simulator, *, history_limit: int = 64) -> None:
        self._sim = sim
        self.history_limit = history_limit
        self._sensors: Dict[str, Sensor] = {}
        self._history: Dict[str, List[SensorReading]] = {}

    def register(self, sensor: Sensor) -> Sensor:
        """Add a sensor under its name.

        Raises:
            MonitoringError: On duplicate names.
        """
        if sensor.name in self._sensors:
            raise MonitoringError(f"sensor {sensor.name!r} already registered")
        self._sensors[sensor.name] = sensor
        self._history[sensor.name] = []
        return sensor

    def unregister(self, name: str) -> None:
        """Remove a sensor (history is kept)."""
        self._sensors.pop(name, None)

    def has_sensor(self, name: str) -> bool:
        """Whether a sensor is registered under ``name``.

        The O(1) membership probe: session attach runs once per
        admission, so globbing every registered name there would put
        an O(total sensors) scan on the admission hot path.
        """
        return name in self._sensors

    def sensor_names(self, pattern: str = "*") -> List[str]:
        """Registered sensor names matching a glob pattern."""
        return sorted(name for name in self._sensors
                      if fnmatch.fnmatchcase(name, pattern))

    def query(self, name: str) -> SensorReading:
        """Take (and retain) a fresh reading from one sensor.

        Raises:
            MonitoringError: When the sensor is unknown.
        """
        sensor = self._sensors.get(name)
        if sensor is None:
            raise MonitoringError(f"unknown sensor {name!r}")
        reading = sensor.sample()
        history = self._history.setdefault(name, [])
        history.append(reading)
        del history[:-self.history_limit]
        return reading

    def query_all(self, pattern: str = "*") -> "List[SensorReading]":
        """Fresh readings from every sensor matching the pattern."""
        return [self.query(name) for name in self.sensor_names(pattern)]

    def latest(self, name: str) -> Optional[SensorReading]:
        """The most recent retained reading, or ``None``."""
        history = self._history.get(name)
        if not history:
            return None
        return history[-1]

    def history(self, name: str) -> List[SensorReading]:
        """Retained readings for a sensor, oldest first (a copy)."""
        return list(self._history.get(name, []))
