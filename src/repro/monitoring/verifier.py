"""SLA-Verif: the conformance-verification component of the AQoS.

"In the AQoS broker, the verification can be accomplished by a SLA
conformance test on an explicit request by the client/application. ...
The AQoS does not constantly monitor the QoS levels of the allocated
resources; rather it relies on the SLA-Verif component" (Section 3.2).

The verifier:

* runs an on-demand conformance test for one SLA, assembling measured
  values from the sensors registered for the session and producing the
  Table 3 XML reply;
* optionally polls periodically ("the SLA-Verif uses the Java CoG Kit
  MDS APIs to periodically retrieve QoS data");
* publishes a :class:`~repro.monitoring.notifications.DegradationNotice`
  whenever a test finds violations;
* receives NRM degradation callbacks and republishes them against the
  owning SLA.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional
from xml.etree import ElementTree as ET

from ..errors import MonitoringError
from ..network.nrm import FlowAllocation, NetworkMeasurement
from ..qos.parameters import Dimension
from ..recovery.journal import Journal, RESTORATION, VIOLATION
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..telemetry import MetricsRegistry, Telemetry
from ..sla.repository import SLARepository
from ..sla.violations import (
    ConformanceReport,
    MeasuredQoS,
    check_conformance,
)
from .mds import InformationService
from .notifications import DegradationNotice, NotificationHub
from .sensors import Sensor


class SlaVerifier:
    """The SLA-Verif component.

    Args:
        sim: Simulation engine.
        mds: Information service holding the sensors.
        repository: The SLA repository to verify against.
        hub: Where degradation notices are published.
        trace: Optional activity recorder.
        metrics: Registry for the SLA gauges/counters (violations
            detected, restorations, tests run); a private one is
            created when omitted so counting always works.
        tolerance: Relative slack before a shortfall is a violation.
    """

    def __init__(self, sim: Simulator, mds: InformationService,
                 repository: SLARepository, hub: NotificationHub, *,
                 trace: Optional[TraceRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tolerance: float = 0.05) -> None:
        self._sim = sim
        self._mds = mds
        self._repository = repository
        self._hub = hub
        self._trace = trace
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(now=lambda: sim.now))
        #: Optional telemetry hub (spans for conformance tests).
        self.telemetry: Optional[Telemetry] = None
        #: Optional write-ahead journal; violation/restoration state
        #: *transitions* are appended when set.
        self.journal: Optional[Journal] = None
        #: Optional decision-provenance log
        #: (:class:`repro.obs.DecisionLog`); the same transitions emit
        #: ``violation``/``restoration`` records citing the worst
        #: violated dimension.
        self.decisions: "Optional[Any]" = None
        #: Optional SLO engine (:class:`repro.obs.SloEngine`); fed the
        #: same transitions so per-class error budgets accrue bad time.
        self.slo: "Optional[Any]" = None
        self.tolerance = tolerance
        #: sensor names attached per SLA id
        self._session_sensors: Dict[int, List[str]] = {}
        self._poll_event = None
        #: SLA ids currently in a detected-violation state, so the
        #: detected/restored counters count state *transitions*, not
        #: every poll of an already-degraded session.
        self._violating: set = set()

    @property
    def tests_run(self) -> int:
        """Total conformance tests executed (registry-backed)."""
        return int(self.metrics.counter_value(
            "repro_sla_conformance_tests_total"))

    # ------------------------------------------------------------------
    # Session wiring
    # ------------------------------------------------------------------

    def attach_sensor(self, sla_id: int, sensor: Sensor) -> None:
        """Associate a sensor with a session (registers it in MDS)."""
        if not self._mds.has_sensor(sensor.name):
            self._mds.register(sensor)
        self._session_sensors.setdefault(sla_id, []).append(sensor.name)

    def detach_session(self, sla_id: int) -> None:
        """Drop a finished session's sensors."""
        for name in self._session_sensors.pop(sla_id, []):
            self._mds.unregister(name)
        self._violating.discard(sla_id)
        self.metrics.gauge("repro_sla_violating_sessions").set(
            float(len(self._violating)))

    def reset_sessions(self) -> None:
        """Forget every session binding (crash-recovery wipe).

        MDS registrations are left alone: recovery re-attaches sensors
        by name, and :meth:`attach_sensor` deduplicates registration.
        """
        self._session_sensors.clear()
        self._violating.clear()
        self.metrics.gauge("repro_sla_violating_sessions").set(0.0)

    # ------------------------------------------------------------------
    # Conformance testing
    # ------------------------------------------------------------------

    def measure(self, sla_id: int) -> MeasuredQoS:
        """Assemble the measured values for a session from its sensors.

        Raises:
            MonitoringError: When the session has no sensors attached.
        """
        names = self._session_sensors.get(sla_id)
        if not names:
            raise MonitoringError(
                f"no sensors attached for SLA {sla_id}")
        values: Dict[Dimension, float] = {}
        for name in names:
            reading = self._mds.query(name)
            values.update(reading.values)
        return MeasuredQoS(sla_id=sla_id, values=values, time=self._sim.now)

    def conformance_test(self, sla_id: int) -> ConformanceReport:
        """Run one conformance test (the explicit client request path)."""
        if self.telemetry is None:
            return self._conformance_test(sla_id)
        with self.telemetry.tracer.span("conformance-test",
                                        component="sla-verif",
                                        sla_id=sla_id) as span:
            report = self._conformance_test(sla_id)
            span.attributes["conformant"] = report.conformant
            return report

    def _conformance_test(self, sla_id: int) -> ConformanceReport:
        sla = self._repository.get(sla_id)
        measured = self.measure(sla_id)
        report = check_conformance(sla, measured, tolerance=self.tolerance)
        self.metrics.counter("repro_sla_conformance_tests_total").inc()
        if self._trace is not None:
            verdict = ("conformant" if report.conformant
                       else f"{len(report.violations)} violation(s)")
            self._trace.record(self._sim.now, "sla-verif",
                               f"conformance test SLA {sla_id}: {verdict}")
        if not report.conformant:
            if sla_id not in self._violating:
                self._violating.add(sla_id)
                self.metrics.counter(
                    "repro_sla_violations_detected_total").inc()
                if self.journal is not None:
                    self.journal.append(VIOLATION, sla_id=sla_id)
                if self.decisions is not None:
                    worst = report.worst()
                    detail = (f"; worst: {worst.dimension.value} "
                              f"expected {worst.expected:g} measured "
                              f"{worst.measured:g} (severity "
                              f"{worst.severity:.2f})"
                              if worst is not None else "")
                    self.decisions.decide(
                        "violation", "detected", sla_id=sla_id,
                        subject=f"sla-{sla_id}",
                        constraint=(worst.dimension.value
                                    if worst is not None else ""),
                        reason=f"{len(report.violations)} "
                               f"violation(s){detail}")
                if self.slo is not None:
                    self.slo.on_violation(sla_id, self._sim.now)
            self.metrics.counter(
                "repro_sla_degradation_notices_total",
                source="sla-verif").inc()
            self._hub.publish(DegradationNotice(
                sla_id=sla_id, time=self._sim.now, source="sla-verif",
                report=report,
                detail=f"conformance test found "
                       f"{len(report.violations)} violation(s)"))
        elif sla_id in self._violating:
            self._violating.discard(sla_id)
            self.metrics.counter("repro_sla_restorations_total").inc()
            if self.journal is not None:
                self.journal.append(RESTORATION, sla_id=sla_id)
            if self.decisions is not None:
                self.decisions.decide(
                    "restoration", "restored", sla_id=sla_id,
                    subject=f"sla-{sla_id}",
                    reason="conformance test back within tolerance")
            if self.slo is not None:
                self.slo.on_restoration(sla_id, self._sim.now)
        self.metrics.gauge("repro_sla_violating_sessions").set(
            float(len(self._violating)))
        return report

    def conformance_reply_xml(self, sla_id: int) -> ET.Element:
        """Run a test and encode the Table 3 ``<QoS_Levels>`` reply."""
        from ..xmlmsg.codec import encode_qos_levels
        sla = self._repository.get(sla_id)
        measured = self.measure(sla_id)
        self.metrics.counter("repro_sla_conformance_tests_total").inc()
        return encode_qos_levels(sla, measured)

    # ------------------------------------------------------------------
    # Periodic polling
    # ------------------------------------------------------------------

    def start_polling(self, interval: float) -> None:
        """Begin periodic conformance tests over all monitored sessions."""
        if interval <= 0:
            raise MonitoringError(f"poll interval must be positive: {interval}")
        if self._poll_event is not None:
            return

        def poll() -> None:
            self._poll_event = None
            for sla_id in list(self._session_sensors):
                sla = self._repository.get(sla_id)
                if sla.status.is_live and sla.service_class.monitored:
                    self.conformance_test(sla_id)
            self._poll_event = self._sim.schedule(interval, poll,
                                                  label="sla-verif:poll")

        self._poll_event = self._sim.schedule(interval, poll,
                                              label="sla-verif:poll")

    def stop_polling(self) -> None:
        """Stop the periodic tests."""
        if self._poll_event is not None:
            self._sim.cancel(self._poll_event)
            self._poll_event = None

    # ------------------------------------------------------------------
    # NRM callback path
    # ------------------------------------------------------------------

    def on_network_degradation(self, sla_id_for_flow) -> "callable":
        """Build the NRM degradation listener.

        Args:
            sla_id_for_flow: Mapping function ``flow -> sla_id`` (or
                ``None`` when the flow belongs to no monitored SLA).
        """
        def listener(flow: FlowAllocation,
                     measurement: NetworkMeasurement) -> None:
            sla_id = sla_id_for_flow(flow)
            if sla_id is None:
                return
            self.metrics.counter(
                "repro_sla_degradation_notices_total", source="nrm").inc()
            self._hub.publish(DegradationNotice(
                sla_id=sla_id, time=self._sim.now, source="nrm",
                detail=f"flow {flow.flow_id} delivering "
                       f"{measurement.bandwidth_mbps:g} of "
                       f"{flow.bandwidth_mbps:g} Mbps"))
            if self._trace is not None:
                self._trace.record(
                    self._sim.now, "sla-verif",
                    f"NRM degradation notice for SLA {sla_id}")
        return listener
