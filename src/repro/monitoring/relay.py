"""Degradation notices over the message bus.

In the paper the NRM "notifies" SLA-Verif and the broker over the
network; the in-process :class:`~repro.monitoring.notifications.NotificationHub`
made that hop invisible to the chaos layer. The
:class:`BusNotificationRelay` restores the wire: it installs itself as
the hub's transport, serializes each
:class:`~repro.monitoring.notifications.DegradationNotice` into a
``degradation_notice`` envelope, and sends it asynchronously over the
bus to its own receiving endpoint, which fans it back out via
:meth:`~repro.monitoring.notifications.NotificationHub.deliver`.

Under fault injection a notice can now be dropped (dead-lettered),
delayed or duplicated like any other message. Loss is survivable by
design: the verifier's periodic conformance polling re-detects any
degradation whose notice vanished, so adaptation is delayed — never
deadlocked.
"""

from __future__ import annotations

from typing import Optional
from xml.etree import ElementTree as ET

from ..qos.parameters import Dimension
from ..sla.violations import ConformanceReport, MeasuredQoS, Violation
from ..xmlmsg.bus import MessageBus
from ..xmlmsg.document import child_text, element, subelement
from ..xmlmsg.envelope import Envelope
from .notifications import DegradationNotice, NotificationHub

#: Endpoint name the relay listens on.
HUB_ENDPOINT = "notification-hub"


def encode_degradation_notice(notice: DegradationNotice) -> ET.Element:
    """Serialize a notice (and its report) to ``<Degradation_Notice>``."""
    root = element("Degradation_Notice")
    subelement(root, "SLA-ID", str(notice.sla_id))
    subelement(root, "Time", f"{notice.time:.12g}")
    subelement(root, "Source", notice.source)
    if notice.detail:
        subelement(root, "Detail", notice.detail)
    report = notice.report
    if report is not None:
        report_node = subelement(root, "Conformance_Report")
        report_node.set("sla-id", str(report.sla_id))
        report_node.set("time", f"{report.time:.12g}")
        for violation in report.violations:
            violation_node = subelement(report_node, "Violation")
            violation_node.set("dimension", violation.dimension.value)
            violation_node.set("expected", f"{violation.expected:.12g}")
            violation_node.set("measured", f"{violation.measured:.12g}")
            violation_node.set("severity", f"{violation.severity:.12g}")
        measured_node = subelement(report_node, "Measured")
        measured_node.set("time", f"{report.measured.time:.12g}")
        for dimension in sorted(report.measured.values,
                                key=lambda d: d.value):
            value_node = subelement(measured_node, "Value")
            value_node.set("dimension", dimension.value)
            value_node.text = f"{report.measured.values[dimension]:.12g}"
    return root


def decode_degradation_notice(node: ET.Element) -> DegradationNotice:
    """Parse a ``<Degradation_Notice>`` document."""
    sla_id = int(child_text(node, "SLA-ID"))
    time = float(child_text(node, "Time"))
    report: Optional[ConformanceReport] = None
    report_node = node.find("Conformance_Report")
    if report_node is not None:
        violations = tuple(
            Violation(
                sla_id=int(report_node.get("sla-id", "0")),
                dimension=Dimension(violation_node.get("dimension", "")),
                expected=float(violation_node.get("expected", "0")),
                measured=float(violation_node.get("measured", "0")),
                severity=float(violation_node.get("severity", "0")))
            for violation_node in report_node.findall("Violation"))
        measured_node = report_node.find("Measured")
        values = {}
        measured_time = 0.0
        if measured_node is not None:
            measured_time = float(measured_node.get("time", "0"))
            for value_node in measured_node.findall("Value"):
                values[Dimension(value_node.get("dimension", ""))] = \
                    float(value_node.text or "0")
        report = ConformanceReport(
            sla_id=int(report_node.get("sla-id", "0")),
            time=float(report_node.get("time", "0")),
            violations=violations,
            measured=MeasuredQoS(sla_id=sla_id, values=values,
                                 time=measured_time))
    return DegradationNotice(
        sla_id=sla_id, time=time,
        source=child_text(node, "Source", default=""),
        report=report,
        detail=child_text(node, "Detail", default=""))


class BusNotificationRelay:
    """Carries hub notices over the bus (installable chaos wiring).

    Args:
        hub: The hub whose publishes should ride the bus.
        bus: The transport.
        sender: Sender name stamped on the notice envelopes.
        endpoint_name: The relay's receiving endpoint.
        latency: Per-notice delivery latency (bus default when
            ``None``).
    """

    def __init__(self, hub: NotificationHub, bus: MessageBus, *,
                 sender: str = "sla-verif",
                 endpoint_name: str = HUB_ENDPOINT,
                 latency: Optional[float] = None) -> None:
        self._hub = hub
        self._bus = bus
        self._sender = sender
        self._latency = latency
        self.endpoint_name = endpoint_name
        self.sent = 0
        endpoint = bus.endpoint(endpoint_name)
        endpoint.on("degradation_notice", self._on_notice)
        hub.install_transport(self._send)

    def _send(self, notice: DegradationNotice) -> None:
        envelope = Envelope(
            sender=self._sender, recipient=self.endpoint_name,
            action="degradation_notice",
            body=encode_degradation_notice(notice))
        self.sent += 1
        self._bus.send_async(envelope, latency=self._latency)

    def _on_notice(self, envelope: Envelope) -> None:
        self._hub.deliver(decode_degradation_notice(envelope.body))
        return None
