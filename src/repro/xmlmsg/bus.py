"""In-process message bus replacing SOAP-over-HTTP.

Components register as named :class:`Endpoint` handlers; the bus routes
:class:`~repro.xmlmsg.envelope.Envelope` objects between them. Every
message is serialized to XML and re-parsed on delivery, so the wire
format is genuinely exercised (a handler never sees the sender's
objects). Delivery is either synchronous (request/response, used for
the control-plane calls in Figure 2) or scheduled on the simulator with
a configurable latency (used to model notification delay).

Two production concerns live here as well:

* **At-least-once tolerance** — every endpoint keeps a bounded
  :class:`~repro.xmlmsg.idempotency.DedupCache` keyed on
  :attr:`~repro.xmlmsg.envelope.Envelope.dedup_key`; a duplicated or
  retried request is answered from the cached reply instead of
  re-executing the handler.
* **Fault injection** — an installed
  :class:`~repro.xmlmsg.faults.FaultPlan` perturbs deliveries
  (drop/duplicate/delay/error/reorder) deterministically from the sim
  seed. A lost synchronous leg surfaces as
  :class:`~repro.errors.MessageDropped`; a lost or failing
  notification lands in :attr:`MessageBus.dead_letters` instead of
  unwinding the simulator's event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import GQoSMError, MessageDropped, MessageError, RemoteFaultError
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..telemetry import Telemetry
from .envelope import Envelope
from .faults import FaultDecision, FaultPlan
from .idempotency import DEFAULT_CAPACITY, DedupCache

#: A handler takes the delivered request and returns a response
#: envelope (or ``None`` for one-way notifications).
Handler = Callable[[Envelope], Optional[Envelope]]


@dataclass(frozen=True)
class DeadLetter:
    """A notification that could not be delivered or processed."""

    time: float
    sender: str
    recipient: str
    action: str
    message_id: str
    reason: str
    detail: str = ""


class Endpoint:
    """A named participant on the bus, dispatching by action name.

    Args:
        name: Unique endpoint name on the bus.
        dedup_capacity: Size of the idempotency cache (number of
            remembered request outcomes).
    """

    def __init__(self, name: str,
                 dedup_capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self._actions: Dict[str, Handler] = {}
        self.dedup: "DedupCache[Optional[str]]" = DedupCache(dedup_capacity)

    def on(self, action: str, handler: Handler) -> None:
        """Register a handler for an action name."""
        self._actions[action] = handler

    def dispatch(self, envelope: Envelope) -> Optional[Envelope]:
        """Invoke the handler for the envelope's action.

        Re-deliveries of an already-executed request (same
        :attr:`~repro.xmlmsg.envelope.Envelope.dedup_key`) are answered
        from the cache without running the handler again — a duplicated
        ``create`` must never double-reserve. Failed handlers are not
        cached, so a retry after an error re-executes.
        """
        key = envelope.dedup_key
        if self.dedup.seen(key):
            cached = self.dedup.get(key)
            return Envelope.from_xml(cached) if cached is not None else None
        handler = self._actions.get(envelope.action)
        if handler is None:
            raise MessageError(
                f"endpoint {self.name!r} has no handler for action "
                f"{envelope.action!r}")
        response = handler(envelope)
        self.dedup.put(key, response.to_xml() if response is not None
                       else None)
        return response


class MessageBus:
    """Routes envelopes between registered endpoints.

    Args:
        sim: Simulator used to timestamp and (for async sends) delay
            deliveries.
        trace: Optional recorder; every send/delivery is logged under
            the ``"message"`` category (injected faults under
            ``"chaos"``, undeliverable notifications under
            ``"dead-letter"``).
        latency: Default delivery delay for :meth:`send_async`.
        faults: Optional fault plan; :meth:`install_faults` can attach
            one later. Without a plan the bus is a perfect transport.
    """

    def __init__(self, sim: Simulator,
                 trace: Optional[TraceRecorder] = None,
                 latency: float = 0.0,
                 faults: Optional[FaultPlan] = None) -> None:
        self._sim = sim
        self._trace = trace
        self._endpoints: Dict[str, Endpoint] = {}
        self.latency = latency
        self.faults = faults
        self.dead_letters: List[DeadLetter] = []
        self._telemetry: Optional[Telemetry] = None

    @property
    def telemetry(self) -> Optional[Telemetry]:
        """Optional telemetry hub; when set, every request leg opens a
        span, deliveries open handler spans parented at the sender's
        span (via the envelope's TraceID/SpanID headers), and the
        transport counters — including every endpoint's dedup-cache
        counters — land in the hub's registry."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, telemetry: Optional[Telemetry]) -> None:
        self._telemetry = telemetry
        if telemetry is not None:
            for endpoint in self._endpoints.values():
                endpoint.dedup.bind_metrics(telemetry.metrics,
                                            endpoint=endpoint.name)

    @property
    def sim(self) -> Simulator:
        """The simulator whose clock stamps deliveries."""
        return self._sim

    def install_faults(self, plan: Optional[FaultPlan]) -> None:
        """Attach (or with ``None``, remove) the fault plan."""
        self.faults = plan

    def register(self, endpoint: Endpoint) -> Endpoint:
        """Attach an endpoint; names must be unique."""
        if endpoint.name in self._endpoints:
            raise MessageError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        if self._telemetry is not None:
            endpoint.dedup.bind_metrics(self._telemetry.metrics,
                                        endpoint=endpoint.name)
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        """Create, register and return a new endpoint."""
        return self.register(Endpoint(name))

    def _decide(self, envelope: Envelope, leg: str) -> Optional[FaultDecision]:
        if self.faults is None:
            return None
        decision = self.faults.decide(envelope, leg)
        kinds: List[str] = []
        if not decision.clean:
            kinds = [name for flag, name in (
                (decision.drop, "drop"), (decision.error, "error"),
                (decision.duplicate, "duplicate"),
                (decision.reorder, "reorder"),
                (decision.delay > 0, "delay")) if flag]
        if self.telemetry is not None:
            for kind in kinds:
                self.telemetry.metrics.counter(
                    "repro_bus_faults_total", kind=kind, leg=leg).inc()
        if self._trace is not None and not decision.clean:
            self._trace.record(
                self._sim.now, "chaos",
                f"{'+'.join(kinds)} on {leg} {envelope.sender} -> "
                f"{envelope.recipient}: {envelope.action}",
                message_id=envelope.message_id, leg=leg,
                delay=decision.delay)
        return decision

    def _dead_letter(self, envelope: Envelope, reason: str,
                     detail: str = "") -> DeadLetter:
        letter = DeadLetter(
            time=self._sim.now, sender=envelope.sender,
            recipient=envelope.recipient, action=envelope.action,
            message_id=envelope.message_id, reason=reason, detail=detail)
        self.dead_letters.append(letter)
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "repro_bus_dead_letters_total", reason=reason).inc()
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "dead-letter",
                f"{envelope.sender} -> {envelope.recipient}: "
                f"{envelope.action} ({reason})",
                message_id=envelope.message_id, detail=detail)
        return letter

    def _deliver(self, envelope: Envelope) -> Optional[Envelope]:
        target = self._endpoints.get(envelope.recipient)
        if target is None:
            raise MessageError(f"unknown endpoint {envelope.recipient!r}")
        # Round-trip through XML so handlers only ever see the wire form.
        delivered = Envelope.from_xml(envelope.to_xml())
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "message",
                f"{delivered.sender} -> {delivered.recipient}: "
                f"{delivered.action}",
                message_id=delivered.message_id, action=delivered.action)
        if self.telemetry is None or delivered.trace_id is None:
            return target.dispatch(delivered)
        # Parent the handler span at the *sender's* span carried in the
        # envelope headers, so the episode stays one connected tree even
        # when this delivery was scheduled (empty context stack) or is a
        # duplicate of an earlier leg.
        with self.telemetry.tracer.span(
                f"handle:{delivered.action}",
                component=delivered.recipient,
                trace_id=delivered.trace_id,
                parent_id=delivered.span_id,
                message_id=delivered.message_id,
                sender=delivered.sender):
            response = target.dispatch(delivered)
        if response is not None and response.trace_id is None:
            response.trace_id = delivered.trace_id
        return response

    def _deliver_async(self, envelope: Envelope) -> None:
        """Scheduled-delivery entry point: failures must not unwind the
        event loop, so handler errors become dead letters."""
        try:
            self._deliver(envelope)
        except GQoSMError as error:
            self._dead_letter(envelope, "handler-error", str(error))

    def request(self, envelope: Envelope) -> Envelope:
        """Synchronous request/response (the Figure 2 control calls).

        Under an installed fault plan the call may raise
        :class:`~repro.errors.MessageDropped` (a leg was lost; for a
        request-leg drop the handler never ran) or
        :class:`~repro.errors.RemoteFaultError` (the handler ran but
        the exchange failed), both retryable thanks to endpoint-side
        idempotency.

        Raises:
            MessageError: If the handler returns no response.
        """
        if self.telemetry is None:
            return self._request(envelope)
        attributes = {"message_id": envelope.message_id,
                      "recipient": envelope.recipient}
        if envelope.retry_of is not None:
            attributes["retry_of"] = envelope.retry_of
        self.telemetry.metrics.counter(
            "repro_bus_requests_total", action=envelope.action).inc()
        # A retried envelope already carries its trace id; when the
        # caller holds an open span (the resilient caller's ``call:``
        # span) parent there instead, so every attempt is a sibling
        # child of the one logical call.
        trace_id = (envelope.trace_id
                    if self.telemetry.tracer.current() is None else None)
        with self.telemetry.tracer.span(
                f"request:{envelope.action}",
                component=envelope.sender,
                trace_id=trace_id,
                **attributes) as span:
            envelope.trace_id = span.trace_id
            envelope.span_id = span.span_id
            return self._request(envelope)

    def _request(self, envelope: Envelope) -> Envelope:
        envelope.sent_at = self._sim.now
        decision = self._decide(envelope, "request")
        if decision is not None and decision.drop:
            raise MessageDropped(
                f"request {envelope.action!r} to {envelope.recipient!r} "
                f"lost in flight")
        if decision is not None and decision.delay > 0 \
                and not self._sim.running:
            self._sim.advance(decision.delay)
        response = self._deliver(envelope)
        if decision is not None and decision.duplicate:
            # The network delivered the request twice; the endpoint's
            # dedup cache must answer the re-delivery without side
            # effects.
            response = self._deliver(envelope)
        if decision is not None and decision.error:
            raise RemoteFaultError(
                f"transport fault on {envelope.action!r} to "
                f"{envelope.recipient!r} (handler may have run)")
        if response is None:
            raise MessageError(
                f"endpoint {envelope.recipient!r} returned no response to "
                f"{envelope.action!r}")
        reply_decision = self._decide(response, "reply")
        if reply_decision is not None:
            if reply_decision.drop:
                raise MessageDropped(
                    f"reply to {envelope.action!r} from "
                    f"{envelope.recipient!r} lost in flight")
            if reply_decision.error:
                raise RemoteFaultError(
                    f"transport fault on reply to {envelope.action!r} "
                    f"from {envelope.recipient!r}")
            if reply_decision.delay > 0 and not self._sim.running:
                self._sim.advance(reply_decision.delay)
        response.sent_at = self._sim.now
        return Envelope.from_xml(response.to_xml())

    def send_async(self, envelope: Envelope,
                   latency: Optional[float] = None) -> None:
        """One-way notification, delivered after ``latency`` sim time.

        A dropped or remotely-failing notification is recorded in
        :attr:`dead_letters` (consumers recover by re-polling, see the
        monitoring verifier); it never raises into the caller.
        """
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "repro_bus_notifications_total",
                action=envelope.action).inc()
            current = self.telemetry.tracer.current()
            if envelope.trace_id is None and current is not None:
                # Carry the publisher's span across the async hop so the
                # delayed delivery parents into the same episode tree.
                envelope.trace_id = current.trace_id
                envelope.span_id = current.span_id
        envelope.sent_at = self._sim.now
        delay = self.latency if latency is None else latency
        decision = self._decide(envelope, "notify")
        if decision is not None:
            if decision.drop:
                self._dead_letter(envelope, "dropped",
                                  "lost by fault injection")
                return
            if decision.error:
                self._dead_letter(envelope, "remote-fault",
                                  "receiver failed the delivery")
                return
            delay += decision.delay
        self._sim.schedule(
            delay, lambda: self._deliver_async(envelope),
            label=f"deliver:{envelope.action}")
        if decision is not None and decision.duplicate:
            self._sim.schedule(
                delay, lambda: self._deliver_async(envelope),
                label=f"deliver:{envelope.action}")
