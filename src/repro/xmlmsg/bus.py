"""In-process message bus replacing SOAP-over-HTTP.

Components register as named :class:`Endpoint` handlers; the bus routes
:class:`~repro.xmlmsg.envelope.Envelope` objects between them. Every
message is serialized to XML and re-parsed on delivery, so the wire
format is genuinely exercised (a handler never sees the sender's
objects). Delivery is either synchronous (request/response, used for
the control-plane calls in Figure 2) or scheduled on the simulator with
a configurable latency (used to model notification delay).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import MessageError
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .envelope import Envelope

#: A handler takes the delivered request and returns a response
#: envelope (or ``None`` for one-way notifications).
Handler = Callable[[Envelope], Optional[Envelope]]


class Endpoint:
    """A named participant on the bus, dispatching by action name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._actions: Dict[str, Handler] = {}

    def on(self, action: str, handler: Handler) -> None:
        """Register a handler for an action name."""
        self._actions[action] = handler

    def dispatch(self, envelope: Envelope) -> Optional[Envelope]:
        """Invoke the handler for the envelope's action."""
        handler = self._actions.get(envelope.action)
        if handler is None:
            raise MessageError(
                f"endpoint {self.name!r} has no handler for action "
                f"{envelope.action!r}")
        return handler(envelope)


class MessageBus:
    """Routes envelopes between registered endpoints.

    Args:
        sim: Simulator used to timestamp and (for async sends) delay
            deliveries.
        trace: Optional recorder; every send/delivery is logged under
            the ``"message"`` category.
        latency: Default delivery delay for :meth:`send_async`.
    """

    def __init__(self, sim: Simulator,
                 trace: Optional[TraceRecorder] = None,
                 latency: float = 0.0) -> None:
        self._sim = sim
        self._trace = trace
        self._endpoints: Dict[str, Endpoint] = {}
        self.latency = latency

    def register(self, endpoint: Endpoint) -> Endpoint:
        """Attach an endpoint; names must be unique."""
        if endpoint.name in self._endpoints:
            raise MessageError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def endpoint(self, name: str) -> Endpoint:
        """Create, register and return a new endpoint."""
        return self.register(Endpoint(name))

    def _deliver(self, envelope: Envelope) -> Optional[Envelope]:
        target = self._endpoints.get(envelope.recipient)
        if target is None:
            raise MessageError(f"unknown endpoint {envelope.recipient!r}")
        # Round-trip through XML so handlers only ever see the wire form.
        delivered = Envelope.from_xml(envelope.to_xml())
        if self._trace is not None:
            self._trace.record(
                self._sim.now, "message",
                f"{delivered.sender} -> {delivered.recipient}: "
                f"{delivered.action}",
                message_id=delivered.message_id, action=delivered.action)
        return target.dispatch(delivered)

    def request(self, envelope: Envelope) -> Envelope:
        """Synchronous request/response (the Figure 2 control calls).

        Raises:
            MessageError: If the handler returns no response.
        """
        envelope.sent_at = self._sim.now
        response = self._deliver(envelope)
        if response is None:
            raise MessageError(
                f"endpoint {envelope.recipient!r} returned no response to "
                f"{envelope.action!r}")
        response.sent_at = self._sim.now
        return Envelope.from_xml(response.to_xml())

    def send_async(self, envelope: Envelope,
                   latency: Optional[float] = None) -> None:
        """One-way notification, delivered after ``latency`` sim time."""
        envelope.sent_at = self._sim.now
        delay = self.latency if latency is None else latency
        self._sim.schedule(
            delay, lambda: self._deliver(envelope),
            label=f"deliver:{envelope.action}")
