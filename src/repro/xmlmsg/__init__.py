"""XML messaging: all G-QoSM component interactions are XML messages.

The paper's components exchange XML over SOAP/HTTP (Figure 5). The
reproduction keeps the encoding — every SLA, offer and conformance
report round-trips through real XML (Tables 1, 3, 4) — and replaces the
socket with an in-process :class:`~repro.xmlmsg.bus.MessageBus` whose
delivery can be delayed on the simulation clock.

* :mod:`repro.xmlmsg.document` — small helpers over ``xml.etree``.
* :mod:`repro.xmlmsg.envelope` — SOAP-style envelopes.
* :mod:`repro.xmlmsg.bus` — the in-process transport.
* :mod:`repro.xmlmsg.codec` — encoders/decoders for the paper's
  message schemas.
"""

from .bus import Endpoint, MessageBus
from .document import (
    child_text,
    element,
    parse_xml,
    pretty_xml,
    require_child,
    subelement,
)
from .envelope import Envelope

__all__ = [
    "Endpoint",
    "Envelope",
    "MessageBus",
    "child_text",
    "element",
    "parse_xml",
    "pretty_xml",
    "require_child",
    "subelement",
]
