"""XML messaging: all G-QoSM component interactions are XML messages.

The paper's components exchange XML over SOAP/HTTP (Figure 5). The
reproduction keeps the encoding — every SLA, offer and conformance
report round-trips through real XML (Tables 1, 3, 4) — and replaces the
socket with an in-process :class:`~repro.xmlmsg.bus.MessageBus` whose
delivery can be delayed on the simulation clock.

* :mod:`repro.xmlmsg.document` — small helpers over ``xml.etree``.
* :mod:`repro.xmlmsg.envelope` — SOAP-style envelopes.
* :mod:`repro.xmlmsg.bus` — the in-process transport (with dead
  letters and per-endpoint idempotency).
* :mod:`repro.xmlmsg.codec` — encoders/decoders for the paper's
  message schemas.
* :mod:`repro.xmlmsg.faults` — seeded fault injection (chaos layer).
* :mod:`repro.xmlmsg.idempotency` — bounded dedup caches.
* :mod:`repro.xmlmsg.resilient` — retry/timeout/backoff + breaker.
"""

from .bus import DeadLetter, Endpoint, MessageBus
from .document import (
    child_text,
    element,
    parse_xml,
    pretty_xml,
    require_child,
    subelement,
)
from .envelope import Envelope
from .faults import FaultDecision, FaultPlan, FaultRule, FaultStats
from .idempotency import DEFAULT_CAPACITY, DedupCache
from .resilient import CallerStats, ResilientCaller, RetryPolicy

__all__ = [
    "CallerStats",
    "DEFAULT_CAPACITY",
    "DeadLetter",
    "DedupCache",
    "Endpoint",
    "Envelope",
    "FaultDecision",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "MessageBus",
    "ResilientCaller",
    "RetryPolicy",
    "child_text",
    "element",
    "parse_xml",
    "pretty_xml",
    "require_child",
    "subelement",
]
