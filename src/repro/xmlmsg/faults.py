"""Deterministic fault injection for the message bus.

The paper's SOAP-over-HTTP testbed assumed a perfect transport; a
production control plane cannot. A :class:`FaultPlan` interposes on
:class:`~repro.xmlmsg.bus.MessageBus` and — driven entirely by the
seeded simulation RNG — drops, duplicates, delays, reorders and
error-replies envelopes matched by per ``(sender, recipient, action)``
rules. Same seed, same workload ⇒ byte-identical fault schedule, so
chaos runs are replayable test cases rather than flakes.

Fault semantics per delivery leg:

* ``request`` (sync) — *drop* loses the request before the handler runs
  (the caller times out); *error* runs the handler but loses the reply
  in a transport fault (retry needs server-side idempotency);
  *duplicate* delivers the request twice (the dedup cache must answer
  the second delivery from the first's reply).
* ``reply`` (sync) — *drop*/*error* lose the response after the handler
  ran.
* ``notify`` (async) — *drop*/*error* dead-letter the notification;
  *delay*/*reorder* add seeded latency so deliveries overtake each
  other.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ValidationError
from ..sim.random import RandomSource
from .envelope import Envelope

#: Delivery legs a decision can apply to.
LEGS = ("request", "reply", "notify")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} probability out of [0, 1]: {value}")


@dataclass(frozen=True)
class FaultRule:
    """One match rule with its fault probabilities.

    ``sender``/``recipient``/``action`` are glob patterns
    (:mod:`fnmatch`); ``None`` matches anything. Probabilities are
    independent per delivery.
    """

    sender: Optional[str] = None
    recipient: Optional[str] = None
    action: Optional[str] = None
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    error: float = 0.0
    reorder: float = 0.0
    delay_range: "Tuple[float, float]" = (0.5, 2.0)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "error", "reorder"):
            _check_probability(name, getattr(self, name))
        low, high = self.delay_range
        if low < 0 or high < low:
            raise ValidationError(
                f"delay_range must satisfy 0 <= low <= high: "
                f"{self.delay_range}")

    def matches(self, envelope: Envelope) -> bool:
        """Whether this rule applies to an envelope."""
        for pattern, value in ((self.sender, envelope.sender),
                               (self.recipient, envelope.recipient),
                               (self.action, envelope.action)):
            if pattern is not None and \
                    not fnmatch.fnmatchcase(value, pattern):
                return False
        return True


@dataclass
class FaultDecision:
    """The faults drawn for one delivery."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0
    error: bool = False
    reorder: bool = False

    @property
    def clean(self) -> bool:
        """Whether the delivery proceeds unperturbed."""
        return not (self.drop or self.duplicate or self.error
                    or self.reorder or self.delay > 0)


@dataclass
class FaultStats:
    """Counters over every decision the plan made."""

    decisions: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    errored: int = 0
    reordered: int = 0

    def as_dict(self) -> "dict[str, int]":
        """Flat counters for reports and benchmarks."""
        return {
            "decisions": self.decisions,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "errored": self.errored,
            "reordered": self.reordered,
        }


class FaultPlan:
    """An ordered rule list plus the seeded stream driving the draws.

    The first matching rule decides a delivery (rules are ordered, so
    specific rules go before catch-alls). All stochastic choices flow
    through the given :class:`~repro.sim.random.RandomSource`, keeping
    chaos runs replayable from one integer seed.
    """

    def __init__(self, rng: RandomSource,
                 rules: "Sequence[FaultRule]" = ()) -> None:
        self._rng = rng
        self._rules = list(rules)
        self.stats = FaultStats()

    @classmethod
    def uniform(cls, rng: RandomSource, *, drop: float = 0.0,
                duplicate: float = 0.0, delay: float = 0.0,
                error: float = 0.0, reorder: float = 0.0,
                delay_range: "Tuple[float, float]" = (0.5, 2.0)
                ) -> "FaultPlan":
        """A plan with one catch-all rule (every message eligible)."""
        return cls(rng, [FaultRule(drop=drop, duplicate=duplicate,
                                   delay=delay, error=error,
                                   reorder=reorder,
                                   delay_range=delay_range)])

    @property
    def rules(self) -> "list[FaultRule]":
        """The match rules, in evaluation order (a copy)."""
        return list(self._rules)

    def add(self, rule: FaultRule) -> "FaultPlan":
        """Append a rule; returns self for chaining."""
        self._rules.append(rule)
        return self

    def rule_for(self, envelope: Envelope) -> Optional[FaultRule]:
        """The first rule matching an envelope (``None`` when exempt)."""
        for rule in self._rules:
            if rule.matches(envelope):
                return rule
        return None

    def decide(self, envelope: Envelope, leg: str) -> FaultDecision:
        """Draw the faults for one delivery of ``envelope`` on ``leg``.

        The draw order is fixed (drop, error, duplicate, delay,
        reorder) so the stream consumption — and therefore every later
        decision — is a pure function of the seed and the message
        sequence.
        """
        if leg not in LEGS:
            raise ValidationError(f"unknown delivery leg {leg!r}")
        decision = FaultDecision()
        rule = self.rule_for(envelope)
        if rule is None:
            return decision
        self.stats.decisions += 1
        if rule.drop > 0 and self._rng.probability(rule.drop):
            decision.drop = True
            self.stats.dropped += 1
            return decision
        if rule.error > 0 and self._rng.probability(rule.error):
            decision.error = True
            self.stats.errored += 1
            return decision
        if rule.duplicate > 0 and self._rng.probability(rule.duplicate):
            decision.duplicate = True
            self.stats.duplicated += 1
        if rule.delay > 0 and self._rng.probability(rule.delay):
            decision.delay += self._rng.uniform(*rule.delay_range)
            self.stats.delayed += 1
        if rule.reorder > 0 and self._rng.probability(rule.reorder):
            # Reordering is a deliberately larger hold-back: the
            # envelope is released only after later traffic has had
            # time to overtake it.
            low, high = rule.delay_range
            decision.reorder = True
            decision.delay += high + self._rng.uniform(low, high)
            self.stats.reordered += 1
        return decision
