"""Retry, timeout and circuit-breaking for synchronous bus calls.

The Figure 2 control-plane exchanges (``service_request``,
``accept_offer``, ``verify_sla``, …) are request/response calls; under
fault injection any leg can be lost. A :class:`ResilientCaller` turns
the bus's raw at-most-once ``request`` into an at-least-once call with
bounded retries:

* a lost leg surfaces as a **timeout** spent on the *simulation* clock
  (:meth:`~repro.sim.engine.Simulator.advance`), so waiting callers do
  not freeze the world — monitoring, expiries and other sessions keep
  running while a client waits;
* each retry is a fresh :meth:`~repro.xmlmsg.envelope.Envelope.retry`
  envelope (new ``message_id``, stable ``retry_of``) so server-side
  dedup answers re-executions from cache;
* backoff is exponential with seeded-RNG jitter — deterministic per
  seed, yet decorrelated between concurrent callers;
* when every attempt fails the breaker opens:
  :class:`~repro.errors.CircuitOpenError` is raised immediately for
  that ``(recipient, action)`` until a cooldown expires, so a dead
  dependency cannot stall every caller behind full retry ladders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import (CircuitOpenError, GQoSMError, MessageDropped,
                      RemoteFaultError, ValidationError)
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from .bus import MessageBus
from .envelope import Envelope


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :class:`ResilientCaller`.

    Attributes:
        max_attempts: Total tries per call (first attempt + retries).
        timeout: Default sim-time spent waiting for a reply that a
            drop already doomed, before the caller gives up on the
            attempt.
        per_action_timeout: Overrides of ``timeout`` by action name
            (e.g. a long-running ``negotiate`` vs a cheap ``query``).
        backoff_base: Backoff before the first retry.
        backoff_factor: Multiplier per further retry (exponential).
        jitter: Relative jitter amplitude in ``[0, 1]``; the drawn
            backoff is scaled by ``1 ± jitter``.
        circuit_cooldown: Sim-time the breaker stays open after a call
            exhausts its attempts.
    """

    max_attempts: int = 4
    timeout: float = 2.0
    per_action_timeout: "Mapping[str, float]" = field(default_factory=dict)
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25
    circuit_cooldown: float = 30.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be at least 1: {self.max_attempts}")
        if self.timeout < 0 or self.backoff_base < 0 \
                or self.circuit_cooldown < 0:
            raise ValidationError("timeouts and backoffs must be >= 0")
        if self.backoff_factor < 1:
            raise ValidationError(
                f"backoff_factor must be >= 1: {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(
                f"jitter must be in [0, 1]: {self.jitter}")

    def timeout_for(self, action: str) -> float:
        """The reply timeout for one action."""
        return self.per_action_timeout.get(action, self.timeout)

    def backoff_for(self, retry_index: int, rng: RandomSource) -> float:
        """The (jittered) pause before retry number ``retry_index``
        (1-based). Draws from ``rng`` only when jitter is enabled."""
        backoff = self.backoff_base * self.backoff_factor ** (retry_index - 1)
        if self.jitter > 0:
            backoff *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return max(backoff, 0.0)


@dataclass
class CallerStats:
    """Counters over every call the resilient caller made."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    remote_faults: int = 0
    recovered: int = 0
    exhausted: int = 0
    circuit_rejections: int = 0
    blocked_waits: int = 0

    def as_dict(self) -> "dict[str, int]":
        """Flat counters for reports and benchmarks."""
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "remote_faults": self.remote_faults,
            "recovered": self.recovered,
            "exhausted": self.exhausted,
            "circuit_rejections": self.circuit_rejections,
            "blocked_waits": self.blocked_waits,
        }


class ResilientCaller:
    """At-least-once request/response on top of :class:`MessageBus`.

    Args:
        bus: The transport.
        rng: Seeded stream for backoff jitter; without one, jitter is
            drawn from a fixed-seed private stream (still
            deterministic).
        policy: Retry/timeout/breaker knobs.
        trace: Optional recorder; retries, timeouts and breaker
            transitions are logged under the ``"resilience"`` category.
        name: Label used in trace records.
    """

    def __init__(self, bus: MessageBus, *,
                 rng: Optional[RandomSource] = None,
                 policy: Optional[RetryPolicy] = None,
                 trace: Optional[TraceRecorder] = None,
                 name: str = "resilient") -> None:
        self._bus = bus
        self._rng = rng if rng is not None else RandomSource(0)
        self.policy = policy if policy is not None else RetryPolicy()
        self._trace = trace
        self.name = name
        self.stats = CallerStats()
        #: Open circuits: (recipient, action) -> sim time it may close.
        self._open_until: Dict[Tuple[str, str], float] = {}

    def circuit_open(self, recipient: str, action: str) -> bool:
        """Whether calls to ``(recipient, action)`` fast-fail now."""
        open_until = self._open_until.get((recipient, action))
        return open_until is not None and self._bus.sim.now < open_until

    def _record(self, message: str, **details: object) -> None:
        if self._trace is not None:
            self._trace.record(self._bus.sim.now, "resilience",
                               f"{self.name}: {message}", **details)

    def _wait(self, delta: float) -> None:
        """Spend ``delta`` units on the sim clock (world keeps moving).

        Inside a running event callback the clock cannot advance; the
        wait is then only accounted (the retry happens at the same sim
        instant — acceptable for notification-path callers).
        """
        if delta <= 0:
            return
        if self._bus.sim.running:
            self.stats.blocked_waits += 1
            return
        self._bus.sim.advance(delta)

    def call(self, envelope: Envelope) -> Envelope:
        """Issue a request, retrying transient failures with backoff.

        Raises:
            CircuitOpenError: When the breaker for this
                ``(recipient, action)`` is open, or once this call
                exhausts its attempts (which opens it).
            GQoSMError: Non-transient errors from the handler or codec
                propagate unchanged on first occurrence.
        """
        telemetry = self._bus.telemetry
        if telemetry is None:
            return self._call(envelope)
        attempts_before = self.stats.attempts
        retries_before = self.stats.retries
        with telemetry.tracer.span(
                f"call:{envelope.action}", component=self.name,
                recipient=envelope.recipient,
                message_id=envelope.message_id) as span:
            try:
                return self._call(envelope)
            finally:
                span.attributes["attempts"] = \
                    self.stats.attempts - attempts_before
                delta = self.stats.retries - retries_before
                if delta > 0:
                    telemetry.metrics.counter(
                        "repro_rpc_retries_total",
                        action=envelope.action).inc(float(delta))

    def _call(self, envelope: Envelope) -> Envelope:
        key = (envelope.recipient, envelope.action)
        self.stats.calls += 1
        open_until = self._open_until.get(key)
        if open_until is not None:
            if self._bus.sim.now < open_until:
                self.stats.circuit_rejections += 1
                raise CircuitOpenError(
                    f"circuit open for {envelope.action!r} to "
                    f"{envelope.recipient!r} until t={open_until:g}")
            # Cooldown expired: half-open, let this call probe.
            del self._open_until[key]
            self._record(f"circuit half-open for {envelope.action} to "
                         f"{envelope.recipient}")
        attempt_envelope = envelope
        last_error: Optional[GQoSMError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            if attempt > 1:
                self._wait(self.policy.backoff_for(attempt - 1, self._rng))
                attempt_envelope = envelope.retry()
                self.stats.retries += 1
                self._record(
                    f"retry {attempt - 1} of {envelope.action} to "
                    f"{envelope.recipient}",
                    attempt=attempt, retry_of=attempt_envelope.retry_of)
            self.stats.attempts += 1
            try:
                response = self._bus.request(attempt_envelope)
            except MessageDropped as error:
                last_error = error
                self.stats.timeouts += 1
                # The reply will never come; the caller finds out by
                # waiting out its timeout on the sim clock.
                self._wait(self.policy.timeout_for(envelope.action))
                self._record(
                    f"timeout waiting for {envelope.action} from "
                    f"{envelope.recipient}", attempt=attempt)
            except RemoteFaultError as error:
                last_error = error
                self.stats.remote_faults += 1
                self._record(
                    f"remote fault on {envelope.action} from "
                    f"{envelope.recipient}", attempt=attempt)
            else:
                if attempt > 1:
                    self.stats.recovered += 1
                    self._record(
                        f"recovered {envelope.action} to "
                        f"{envelope.recipient} on attempt {attempt}",
                        attempt=attempt)
                return response
        self.stats.exhausted += 1
        self._open_until[key] = \
            self._bus.sim.now + self.policy.circuit_cooldown
        self._record(
            f"circuit opened for {envelope.action} to "
            f"{envelope.recipient} after {self.policy.max_attempts} "
            f"attempts", cooldown=self.policy.circuit_cooldown)
        raise CircuitOpenError(
            f"{envelope.action!r} to {envelope.recipient!r} failed after "
            f"{self.policy.max_attempts} attempt(s): {last_error}"
        ) from last_error
