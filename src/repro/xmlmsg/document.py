"""Thin helpers over ``xml.etree.ElementTree``.

These keep the codec modules readable: building nested elements,
requiring children by tag, and pretty-printing in the indented style of
the paper's tables.
"""

from __future__ import annotations

from typing import Optional
from xml.etree import ElementTree as ET

from ..errors import MessageError


def element(tag: str, text: Optional[str] = None,
            **attributes: str) -> ET.Element:
    """Create a root element with optional text and attributes."""
    node = ET.Element(tag, dict(attributes))
    if text is not None:
        node.text = text
    return node


def subelement(parent: ET.Element, tag: str, text: Optional[str] = None,
               **attributes: str) -> ET.Element:
    """Create and attach a child element."""
    node = ET.SubElement(parent, tag, dict(attributes))
    if text is not None:
        node.text = text
    return node


def parse_xml(text: str) -> ET.Element:
    """Parse an XML document, wrapping parse failures in MessageError."""
    try:
        return ET.fromstring(text)
    except ET.ParseError as error:
        raise MessageError(f"malformed XML: {error}") from error


def require_child(parent: ET.Element, tag: str) -> ET.Element:
    """The unique child with ``tag``; raises MessageError when missing."""
    node = parent.find(tag)
    if node is None:
        raise MessageError(
            f"<{parent.tag}> is missing required child <{tag}>")
    return node


def child_text(parent: ET.Element, tag: str,
               default: Optional[str] = None) -> str:
    """Stripped text of the child with ``tag``.

    Raises:
        MessageError: When the child is absent (or has no text) and no
            default was supplied.
    """
    node = parent.find(tag)
    if node is None or node.text is None:
        if default is not None:
            return default
        raise MessageError(
            f"<{parent.tag}> is missing text child <{tag}>")
    return node.text.strip()


def pretty_xml(node: ET.Element, indent: str = "  ") -> str:
    """Render an element tree with indentation (paper-table style)."""
    _indent_in_place(node, indent, 0)
    return ET.tostring(node, encoding="unicode")


def _indent_in_place(node: ET.Element, indent: str, depth: int) -> None:
    children = list(node)
    if not children:
        return
    node.text = "\n" + indent * (depth + 1)
    for index, child in enumerate(children):
        _indent_in_place(child, indent, depth + 1)
        if index == len(children) - 1:
            child.tail = "\n" + indent * depth
        else:
            child.tail = "\n" + indent * (depth + 1)
