"""SOAP-style message envelopes.

Clients "send XML messages to the AQoS broker using SOAP over HTTP"
(Figure 5). An :class:`Envelope` carries routing metadata in a header
and an arbitrary XML payload in its body; it serializes to a
``<Envelope>`` document and parses back losslessly.

Delivery semantics headers: every envelope carries a ``<MessageID>``
and a retried envelope additionally carries ``<RetryOf>`` naming the
original message id, so server-side endpoints can answer duplicated or
retried requests from a dedup cache instead of re-executing them (the
idempotency contract — see DESIGN.md's fault model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional
from xml.etree import ElementTree as ET

from ..errors import MessageError
from .document import child_text, element, parse_xml, pretty_xml, require_child, subelement

_message_counter = itertools.count(1)

#: Header fields that must be present and non-empty on the wire.
_REQUIRED_HEADERS = ("MessageID", "Sender", "Recipient", "Action")


@dataclass
class Envelope:
    """A routed XML message.

    Attributes:
        sender: Logical endpoint name of the originator.
        recipient: Logical endpoint name of the destination.
        action: Operation name, e.g. ``"service_request"`` — the
            SOAPAction equivalent.
        body: The payload element.
        message_id: Unique id, auto-assigned when omitted.
        in_reply_to: The request's message id, for responses.
        retry_of: For a client retry, the original attempt's message
            id. Endpoints deduplicate on :attr:`dedup_key`, so a retry
            is answered from the cached reply of the first delivery.
        sent_at: Simulation time of sending (stamped by the bus).
        trace_id: Telemetry trace this message belongs to (stamped by
            the bus when telemetry is installed).
        span_id: The sender-side span that emitted this message; the
            receiving side parents its handler span here, so causality
            survives the process boundary.
    """

    sender: str
    recipient: str
    action: str
    body: ET.Element
    message_id: str = field(default_factory=lambda: f"msg-{next(_message_counter)}")
    in_reply_to: Optional[str] = None
    retry_of: Optional[str] = None
    sent_at: Optional[float] = None
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    @property
    def dedup_key(self) -> str:
        """Idempotency key: the original message id of this request.

        A duplicated delivery shares its ``message_id``; a retried
        request carries a fresh id plus ``retry_of``. Either way the
        key identifies the one logical operation.
        """
        return self.retry_of or self.message_id

    def reply(self, action: str, body: ET.Element) -> "Envelope":
        """Construct a response envelope routed back to the sender."""
        return Envelope(sender=self.recipient, recipient=self.sender,
                        action=action, body=body,
                        in_reply_to=self.message_id,
                        trace_id=self.trace_id)

    def retry(self) -> "Envelope":
        """A fresh retransmission of this request.

        The clone gets a new ``message_id`` and names the original
        attempt in ``retry_of`` (chained retries keep pointing at the
        first attempt, so the dedup key is stable).
        """
        return Envelope(sender=self.sender, recipient=self.recipient,
                        action=self.action, body=self.body,
                        retry_of=self.dedup_key,
                        trace_id=self.trace_id)

    def to_xml(self) -> str:
        """Serialize to an ``<Envelope>`` document."""
        root = element("Envelope")
        header = subelement(root, "Header")
        subelement(header, "MessageID", self.message_id)
        subelement(header, "Sender", self.sender)
        subelement(header, "Recipient", self.recipient)
        subelement(header, "Action", self.action)
        if self.in_reply_to is not None:
            subelement(header, "InReplyTo", self.in_reply_to)
        if self.retry_of is not None:
            subelement(header, "RetryOf", self.retry_of)
        if self.sent_at is not None:
            subelement(header, "SentAt", f"{self.sent_at:g}")
        if self.trace_id is not None:
            subelement(header, "TraceID", self.trace_id)
        if self.span_id is not None:
            subelement(header, "SpanID", self.span_id)
        body = subelement(root, "Body")
        body.append(self.body)
        return pretty_xml(root)

    @classmethod
    def from_xml(cls, text: str) -> "Envelope":
        """Parse an ``<Envelope>`` document.

        Raises:
            MessageError: On malformed XML, a missing/empty required
                header, or a body that does not hold exactly one
                payload element.
        """
        root = parse_xml(text)
        if root.tag != "Envelope":
            raise MessageError(f"expected <Envelope>, got <{root.tag}>")
        header = require_child(root, "Header")
        body = require_child(root, "Body")
        payloads = list(body)
        if len(payloads) != 1:
            raise MessageError(
                f"<Body> must hold exactly one payload, got {len(payloads)}")
        fields = {}
        for tag in _REQUIRED_HEADERS:
            value = child_text(header, tag)
            if not value:
                raise MessageError(
                    f"<Header> field <{tag}> must not be empty")
            fields[tag] = value
        sent_at_text = child_text(header, "SentAt", default="")
        try:
            sent_at = float(sent_at_text) if sent_at_text else None
        except ValueError as error:
            raise MessageError(
                f"<SentAt> is not a number: {sent_at_text!r}") from error
        return cls(
            sender=fields["Sender"],
            recipient=fields["Recipient"],
            action=fields["Action"],
            body=payloads[0],
            message_id=fields["MessageID"],
            in_reply_to=child_text(header, "InReplyTo", default="") or None,
            retry_of=child_text(header, "RetryOf", default="") or None,
            sent_at=sent_at,
            trace_id=child_text(header, "TraceID", default="") or None,
            span_id=child_text(header, "SpanID", default="") or None,
        )
