"""SOAP-style message envelopes.

Clients "send XML messages to the AQoS broker using SOAP over HTTP"
(Figure 5). An :class:`Envelope` carries routing metadata in a header
and an arbitrary XML payload in its body; it serializes to a
``<Envelope>`` document and parses back losslessly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional
from xml.etree import ElementTree as ET

from ..errors import MessageError
from .document import child_text, element, parse_xml, pretty_xml, require_child, subelement

_message_counter = itertools.count(1)


@dataclass
class Envelope:
    """A routed XML message.

    Attributes:
        sender: Logical endpoint name of the originator.
        recipient: Logical endpoint name of the destination.
        action: Operation name, e.g. ``"service_request"`` — the
            SOAPAction equivalent.
        body: The payload element.
        message_id: Unique id, auto-assigned when omitted.
        in_reply_to: The request's message id, for responses.
        sent_at: Simulation time of sending (stamped by the bus).
    """

    sender: str
    recipient: str
    action: str
    body: ET.Element
    message_id: str = field(default_factory=lambda: f"msg-{next(_message_counter)}")
    in_reply_to: Optional[str] = None
    sent_at: Optional[float] = None

    def reply(self, action: str, body: ET.Element) -> "Envelope":
        """Construct a response envelope routed back to the sender."""
        return Envelope(sender=self.recipient, recipient=self.sender,
                        action=action, body=body,
                        in_reply_to=self.message_id)

    def to_xml(self) -> str:
        """Serialize to an ``<Envelope>`` document."""
        root = element("Envelope")
        header = subelement(root, "Header")
        subelement(header, "MessageID", self.message_id)
        subelement(header, "Sender", self.sender)
        subelement(header, "Recipient", self.recipient)
        subelement(header, "Action", self.action)
        if self.in_reply_to is not None:
            subelement(header, "InReplyTo", self.in_reply_to)
        if self.sent_at is not None:
            subelement(header, "SentAt", f"{self.sent_at:g}")
        body = subelement(root, "Body")
        body.append(self.body)
        return pretty_xml(root)

    @classmethod
    def from_xml(cls, text: str) -> "Envelope":
        """Parse an ``<Envelope>`` document."""
        root = parse_xml(text)
        if root.tag != "Envelope":
            raise MessageError(f"expected <Envelope>, got <{root.tag}>")
        header = require_child(root, "Header")
        body = require_child(root, "Body")
        payloads = list(body)
        if len(payloads) != 1:
            raise MessageError(
                f"<Body> must hold exactly one payload, got {len(payloads)}")
        sent_at_text = child_text(header, "SentAt", default="")
        return cls(
            sender=child_text(header, "Sender"),
            recipient=child_text(header, "Recipient"),
            action=child_text(header, "Action"),
            body=payloads[0],
            message_id=child_text(header, "MessageID"),
            in_reply_to=child_text(header, "InReplyTo", default="") or None,
            sent_at=float(sent_at_text) if sent_at_text else None,
        )
