"""Encoders/decoders for the paper's XML message schemas.

Three schemas come straight from the paper:

* Table 1 — ``<Service-Specific>``: the SLA portion relayed to the
  resource managers (CPU, memory, network block).
* Table 3 — ``<QoS_Levels>``: the reply to an SLA conformance test.
* Table 4 — ``<Service_SLA>``: a negotiated SLA with its
  ``<Adaptation_Options>`` (alternative QoS + promotion offer).

Round-tripping is exact for the information content; formatting follows
the paper's indented style via
:func:`~repro.xmlmsg.document.pretty_xml`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from xml.etree import ElementTree as ET

from .. import units
from ..errors import MessageError
from ..qos.classes import ServiceClass
from ..qos.parameters import (
    Dimension,
    Form,
    QoSParameter,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)
from ..qos.specification import OperatingPoint, QoSSpecification
from ..sla.document import AdaptationOptions, NetworkDemand, ServiceSLA
from ..sla.violations import MeasuredQoS
from .document import child_text, element, pretty_xml, require_child, subelement

def _number(value: float) -> str:
    """Format a numeric field without visible precision loss."""
    return f"{value:.12g}"


# ----------------------------------------------------------------------
# Table 1: <Service-Specific>
# ----------------------------------------------------------------------


def encode_service_specific(sla: ServiceSLA) -> ET.Element:
    """Encode the SLA portion relayed to the resource managers."""
    root = element("Service-Specific")
    subelement(root, "SLA-ID", str(sla.sla_id))
    point = sla.agreed_point
    if Dimension.CPU in point:
        subelement(root, "CPU-QoS", units.render_cpu(int(point[Dimension.CPU])))
    if Dimension.MEMORY_MB in point:
        subelement(root, "Memory-QoS",
                   units.render_memory_mb(point[Dimension.MEMORY_MB]))
    if Dimension.DISK_MB in point:
        subelement(root, "Disk-QoS",
                   units.render_memory_mb(point[Dimension.DISK_MB]))
    if sla.network is not None:
        root.append(_encode_network_demand(sla.network))
    return root


def _encode_network_demand(network: NetworkDemand) -> ET.Element:
    node = element("Network_QoS")
    subelement(node, "Source_IP", network.source_ip)
    subelement(node, "Dest_IP", network.dest_ip)
    subelement(node, "Bandwidth",
               units.render_bandwidth_mbps(network.bandwidth_mbps))
    if network.packet_loss_bound is not None:
        subelement(node, "Packet_Loss",
                   units.render_bound(network.packet_loss_bound))
    if network.delay_bound_ms is not None:
        subelement(node, "Delay",
                   units.render_delay_ms(network.delay_bound_ms))
    return node


def render_service_specific(sla: ServiceSLA) -> str:
    """Render Table 1 XML as a compact string, byte-for-byte equal to
    ``ET.tostring(encode_service_specific(sla), encoding="unicode")``.

    The string-builder twin of :func:`render_service_sla`: the relay
    to a resource manager re-encodes the SLA portion per hop, and
    skipping the tree build keeps the message off the admission
    profile.  A property test pins the equality.
    """
    out: List[str] = ["<Service-Specific>"]
    add = out.append
    add(f"<SLA-ID>{sla.sla_id}</SLA-ID>")
    point = sla.agreed_point
    if Dimension.CPU in point:
        add(f"<CPU-QoS>{units.render_cpu(int(point[Dimension.CPU]))}"
            f"</CPU-QoS>")
    if Dimension.MEMORY_MB in point:
        add(f"<Memory-QoS>"
            f"{units.render_memory_mb(point[Dimension.MEMORY_MB])}"
            f"</Memory-QoS>")
    if Dimension.DISK_MB in point:
        add(f"<Disk-QoS>{units.render_memory_mb(point[Dimension.DISK_MB])}"
            f"</Disk-QoS>")
    if sla.network is not None:
        _render_network_demand(sla.network, add)
    add("</Service-Specific>")
    return "".join(out)


def decode_service_specific(node: ET.Element
                            ) -> "Tuple[int, OperatingPoint, Optional[NetworkDemand]]":
    """Decode Table 1 XML into ``(sla_id, operating point, network)``."""
    if node.tag != "Service-Specific":
        raise MessageError(f"expected <Service-Specific>, got <{node.tag}>")
    sla_id = int(child_text(node, "SLA-ID", default="0"))
    point: OperatingPoint = {}
    cpu_text = node.find("CPU-QoS")
    if cpu_text is not None and cpu_text.text:
        point[Dimension.CPU] = float(units.parse_cpu(cpu_text.text))
    memory_text = node.find("Memory-QoS")
    if memory_text is not None and memory_text.text:
        point[Dimension.MEMORY_MB] = units.parse_memory_mb(memory_text.text)
    disk_text = node.find("Disk-QoS")
    if disk_text is not None and disk_text.text:
        point[Dimension.DISK_MB] = units.parse_memory_mb(disk_text.text)
    network_node = node.find("Network_QoS")
    network = (_decode_network_demand(network_node)
               if network_node is not None else None)
    if network is not None:
        point[Dimension.BANDWIDTH_MBPS] = network.bandwidth_mbps
    return sla_id, point, network


def _decode_network_demand(node: ET.Element) -> NetworkDemand:
    loss_text = node.find("Packet_Loss")
    delay_text = node.find("Delay")
    return NetworkDemand(
        source_ip=child_text(node, "Source_IP"),
        dest_ip=child_text(node, "Dest_IP"),
        bandwidth_mbps=units.parse_bandwidth_mbps(
            child_text(node, "Bandwidth")),
        packet_loss_bound=(units.parse_bound(loss_text.text)
                           if loss_text is not None and loss_text.text
                           else None),
        delay_bound_ms=(units.parse_delay_ms(delay_text.text)
                        if delay_text is not None and delay_text.text
                        else None),
    )


# ----------------------------------------------------------------------
# Table 3: <QoS_Levels>
# ----------------------------------------------------------------------


def encode_qos_levels(sla: ServiceSLA, measured: MeasuredQoS) -> ET.Element:
    """Encode the SLA-conformance-test reply of Table 3."""
    root = element("QoS_Levels")
    subelement(root, "SLA-ID", str(sla.sla_id))
    network = sla.network
    if network is not None:
        node = subelement(root, "Measured_Network_QoS")
        subelement(node, "Source_IP", network.source_ip)
        subelement(node, "Dest_IP", network.dest_ip)
        bandwidth = measured.get(Dimension.BANDWIDTH_MBPS)
        if bandwidth is not None:
            subelement(node, "Bandwidth",
                       units.render_bandwidth_mbps(bandwidth))
        loss = measured.get(Dimension.PACKET_LOSS)
        if loss is not None and network.packet_loss_bound is not None:
            # The paper reports the measured loss against its bound
            # ("LessThan 10%") when the bound holds.
            bound = network.packet_loss_bound
            if bound.satisfied_by(loss):
                subelement(node, "Packet_Loss", units.render_bound(bound))
            else:
                subelement(node, "Packet_Loss",
                           units.render_percentage(loss))
        delay = measured.get(Dimension.DELAY_MS)
        if delay is not None:
            subelement(node, "Delay", units.render_delay_ms(delay))
    compute = subelement(root, "Measured_Computation_QoS")
    cpu = measured.get(Dimension.CPU)
    if cpu is not None:
        subelement(compute, "CPU", units.render_cpu(int(cpu)))
    memory = measured.get(Dimension.MEMORY_MB)
    if memory is not None:
        subelement(compute, "Memory", units.render_memory_mb(memory))
    return root


def render_qos_levels(sla: ServiceSLA, measured: MeasuredQoS) -> str:
    """Render Table 3 XML as a compact string, byte-for-byte equal to
    ``ET.tostring(encode_qos_levels(sla, measured), encoding="unicode")``.

    Conformance replies go out once per verifier poll per session, so
    at scale this is the chattiest message in the system; the string
    builder skips the tree entirely.  A property test pins the
    equality.
    """
    out: List[str] = ["<QoS_Levels>"]
    add = out.append
    add(f"<SLA-ID>{sla.sla_id}</SLA-ID>")
    network = sla.network
    if network is not None:
        add("<Measured_Network_QoS>")
        add(f"<Source_IP>{_escape_text(network.source_ip)}</Source_IP>")
        add(f"<Dest_IP>{_escape_text(network.dest_ip)}</Dest_IP>")
        bandwidth = measured.get(Dimension.BANDWIDTH_MBPS)
        if bandwidth is not None:
            add(f"<Bandwidth>{units.render_bandwidth_mbps(bandwidth)}"
                f"</Bandwidth>")
        loss = measured.get(Dimension.PACKET_LOSS)
        if loss is not None and network.packet_loss_bound is not None:
            bound = network.packet_loss_bound
            if bound.satisfied_by(loss):
                add(f"<Packet_Loss>{units.render_bound(bound)}"
                    f"</Packet_Loss>")
            else:
                add(f"<Packet_Loss>{units.render_percentage(loss)}"
                    f"</Packet_Loss>")
        delay = measured.get(Dimension.DELAY_MS)
        if delay is not None:
            add(f"<Delay>{units.render_delay_ms(delay)}</Delay>")
        add("</Measured_Network_QoS>")
    cpu = measured.get(Dimension.CPU)
    memory = measured.get(Dimension.MEMORY_MB)
    if cpu is None and memory is None:
        add("<Measured_Computation_QoS />")
    else:
        add("<Measured_Computation_QoS>")
        if cpu is not None:
            add(f"<CPU>{units.render_cpu(int(cpu))}</CPU>")
        if memory is not None:
            add(f"<Memory>{units.render_memory_mb(memory)}</Memory>")
        add("</Measured_Computation_QoS>")
    add("</QoS_Levels>")
    return "".join(out)


def decode_qos_levels(node: ET.Element) -> "Tuple[int, Dict[Dimension, float]]":
    """Decode Table 3 XML into ``(sla_id, measured values)``.

    A ``Packet_Loss`` reported in the worded-bound form decodes to the
    bound's value (the tightest claim the message makes).
    """
    if node.tag != "QoS_Levels":
        raise MessageError(f"expected <QoS_Levels>, got <{node.tag}>")
    sla_id = int(child_text(node, "SLA-ID"))
    values: Dict[Dimension, float] = {}
    network = node.find("Measured_Network_QoS")
    if network is not None:
        bandwidth = network.find("Bandwidth")
        if bandwidth is not None and bandwidth.text:
            values[Dimension.BANDWIDTH_MBPS] = units.parse_bandwidth_mbps(
                bandwidth.text)
        loss = network.find("Packet_Loss")
        if loss is not None and loss.text:
            text = loss.text.strip()
            if " " in text:
                values[Dimension.PACKET_LOSS] = units.parse_bound(text).value
            else:
                values[Dimension.PACKET_LOSS] = units.parse_percentage(text)
        delay = network.find("Delay")
        if delay is not None and delay.text:
            values[Dimension.DELAY_MS] = units.parse_delay_ms(delay.text)
    compute = node.find("Measured_Computation_QoS")
    if compute is not None:
        cpu = compute.find("CPU")
        if cpu is not None and cpu.text:
            values[Dimension.CPU] = float(units.parse_cpu(cpu.text))
        memory = compute.find("Memory")
        if memory is not None and memory.text:
            values[Dimension.MEMORY_MB] = units.parse_memory_mb(memory.text)
    return sla_id, values


# ----------------------------------------------------------------------
# Table 4: <Service_SLA>
# ----------------------------------------------------------------------


def encode_service_sla(sla: ServiceSLA) -> ET.Element:
    """Encode a negotiated SLA in the Table 4 shape."""
    root = element("Service_SLA")
    subelement(root, "SLA-ID", str(sla.sla_id))
    subelement(root, "Client", sla.client)
    subelement(root, "Service", sla.service_name)
    root.append(_encode_specification(sla.specification))
    subelement(root, "QoS_Class", sla.service_class.value)
    root.append(_encode_point("Agreed_QoS", sla.agreed_point))
    if sla.delivered_point != sla.agreed_point:
        # Not in the paper's Table 4 (which shows a freshly negotiated
        # SLA); needed so adapted sessions persist faithfully.
        root.append(_encode_point("Delivered_QoS", sla.delivered_point))
    window = subelement(root, "Validity")
    subelement(window, "Start", _number(sla.start))
    subelement(window, "End", _number(sla.end))
    subelement(root, "Price_Rate", _number(sla.price_rate))
    if sla.network is not None:
        root.append(_encode_network_demand(sla.network))
    options = subelement(root, "Adaptation_Options")
    for point in sla.adaptation.alternative_points:
        options.append(_encode_point("Alternative_QoS", point))
    subelement(options, "Promotion_Offer",
               "Accept" if sla.adaptation.accept_promotion else "Decline")
    subelement(options, "Degradation",
               "Accept" if sla.adaptation.accept_degradation else "Decline")
    subelement(options, "Termination",
               "Accept" if sla.adaptation.accept_termination else "Decline")
    return root


def _escape_text(value: str) -> str:
    """Escape element text exactly as ``ElementTree`` serialization
    does (``&``, ``<``, ``>``; quotes stay literal in text)."""
    if "&" in value:
        value = value.replace("&", "&amp;")
    if "<" in value:
        value = value.replace("<", "&lt;")
    if ">" in value:
        value = value.replace(">", "&gt;")
    return value


def render_service_sla(sla: ServiceSLA) -> str:
    """Render Table 4 XML as a compact string, byte-for-byte equal to
    ``ET.tostring(encode_service_sla(sla), encoding="unicode")``.

    This is the journal's hot path: every admission durably writes the
    full document, and building an ElementTree only to flatten it
    again costs ~10x the string assembly.  A property test pins the
    equality against the tree encoder, so the two cannot drift.
    """
    out: List[str] = ["<Service_SLA>"]
    add = out.append
    add(f"<SLA-ID>{sla.sla_id}</SLA-ID>")
    add(f"<Client>{_escape_text(sla.client)}</Client>")
    add(f"<Service>{_escape_text(sla.service_name)}</Service>")
    _render_specification(sla.specification, add)
    add(f"<QoS_Class>{sla.service_class.value}</QoS_Class>")
    _render_point("Agreed_QoS", sla.agreed_point, add)
    if sla.delivered_point != sla.agreed_point:
        _render_point("Delivered_QoS", sla.delivered_point, add)
    add(f"<Validity><Start>{_number(sla.start)}</Start>"
        f"<End>{_number(sla.end)}</End></Validity>")
    add(f"<Price_Rate>{_number(sla.price_rate)}</Price_Rate>")
    if sla.network is not None:
        _render_network_demand(sla.network, add)
    add("<Adaptation_Options>")
    for point in sla.adaptation.alternative_points:
        _render_point("Alternative_QoS", point, add)
    adaptation = sla.adaptation
    add(f"<Promotion_Offer>"
        f"{'Accept' if adaptation.accept_promotion else 'Decline'}"
        f"</Promotion_Offer>")
    add(f"<Degradation>"
        f"{'Accept' if adaptation.accept_degradation else 'Decline'}"
        f"</Degradation>")
    add(f"<Termination>"
        f"{'Accept' if adaptation.accept_termination else 'Decline'}"
        f"</Termination>")
    add("</Adaptation_Options></Service_SLA>")
    return "".join(out)


def _render_specification(spec: QoSSpecification, add) -> None:
    parameters = list(spec)
    if not parameters:
        add("<QoS_Specification />")
        return
    add("<QoS_Specification>")
    for parameter in parameters:
        add(f'<Parameter dimension="{parameter.dimension.value}" '
            f'form="{parameter.form.value}">')
        if parameter.form is Form.RANGE:
            add(f"<Low>{_number(parameter.low)}</Low>"
                f"<High>{_number(parameter.high)}</High>")
        else:
            for value in parameter.values:
                add(f"<Value>{_number(value)}</Value>")
        add("</Parameter>")
    add("</QoS_Specification>")


def _render_point(tag: str, point: OperatingPoint, add) -> None:
    if not point:
        add(f"<{tag} />")
        return
    add(f"<{tag}>")
    for dimension, (child_tag, renderer, _parser) in _POINT_TAGS.items():
        if dimension in point:
            add(f"<{child_tag}>{renderer(point[dimension])}</{child_tag}>")
    add(f"</{tag}>")


def _render_network_demand(network: NetworkDemand, add) -> None:
    add("<Network_QoS>")
    add(f"<Source_IP>{_escape_text(network.source_ip)}</Source_IP>")
    add(f"<Dest_IP>{_escape_text(network.dest_ip)}</Dest_IP>")
    add(f"<Bandwidth>"
        f"{units.render_bandwidth_mbps(network.bandwidth_mbps)}"
        f"</Bandwidth>")
    if network.packet_loss_bound is not None:
        add(f"<Packet_Loss>"
            f"{units.render_bound(network.packet_loss_bound)}"
            f"</Packet_Loss>")
    if network.delay_bound_ms is not None:
        add(f"<Delay>{units.render_delay_ms(network.delay_bound_ms)}"
            f"</Delay>")
    add("</Network_QoS>")


_POINT_TAGS = {
    Dimension.CPU: ("CPU", lambda v: units.render_cpu(int(v)),
                    lambda t: float(units.parse_cpu(t))),
    Dimension.MEMORY_MB: ("Memory", units.render_memory_mb,
                          units.parse_memory_mb),
    Dimension.DISK_MB: ("Disk", units.render_memory_mb,
                        units.parse_memory_mb),
    Dimension.BANDWIDTH_MBPS: ("Bandwidth", units.render_bandwidth_mbps,
                               units.parse_bandwidth_mbps),
    Dimension.PACKET_LOSS: ("Packet_Loss", units.render_percentage,
                            units.parse_percentage),
    Dimension.DELAY_MS: ("Delay", units.render_delay_ms,
                         units.parse_delay_ms),
}


def _encode_point(tag: str, point: OperatingPoint) -> ET.Element:
    node = element(tag)
    for dimension, (child_tag, renderer, _parser) in _POINT_TAGS.items():
        if dimension in point:
            subelement(node, child_tag, renderer(point[dimension]))
    return node


def _decode_point(node: ET.Element) -> OperatingPoint:
    point: OperatingPoint = {}
    for dimension, (child_tag, _renderer, parser) in _POINT_TAGS.items():
        child = node.find(child_tag)
        if child is not None and child.text:
            point[dimension] = parser(child.text)
    return point


def _encode_specification(spec: QoSSpecification) -> ET.Element:
    node = element("QoS_Specification")
    for parameter in spec:
        child = subelement(node, "Parameter",
                           dimension=parameter.dimension.value,
                           form=parameter.form.value)
        if parameter.form is Form.RANGE:
            subelement(child, "Low", _number(parameter.low))
            subelement(child, "High", _number(parameter.high))
        else:
            for value in parameter.values:
                subelement(child, "Value", _number(value))
    return node


def _decode_specification(node: ET.Element) -> QoSSpecification:
    parameters: List[QoSParameter] = []
    for child in node.findall("Parameter"):
        dimension = Dimension(child.get("dimension", ""))
        form = Form(child.get("form", ""))
        if form is Form.RANGE:
            parameters.append(range_parameter(
                dimension,
                float(child_text(child, "Low")),
                float(child_text(child, "High"))))
        else:
            values = [float(v.text) for v in child.findall("Value")
                      if v.text]
            if form is Form.EXACT:
                parameters.append(exact_parameter(dimension, values[0]))
            else:
                parameters.append(discrete_parameter(dimension, values))
    return QoSSpecification.from_iterable(parameters)


def decode_service_sla(node: ET.Element) -> ServiceSLA:
    """Decode a Table 4 ``<Service_SLA>`` back into a document."""
    if node.tag != "Service_SLA":
        raise MessageError(f"expected <Service_SLA>, got <{node.tag}>")
    options_node = require_child(node, "Adaptation_Options")
    alternatives = tuple(_decode_point(child)
                         for child in options_node.findall("Alternative_QoS"))
    adaptation = AdaptationOptions(
        alternative_points=alternatives,
        accept_promotion=child_text(
            options_node, "Promotion_Offer", default="Decline") == "Accept",
        accept_degradation=child_text(
            options_node, "Degradation", default="Decline") == "Accept",
        accept_termination=child_text(
            options_node, "Termination", default="Decline") == "Accept",
    )
    network_node = node.find("Network_QoS")
    window = require_child(node, "Validity")
    sla = ServiceSLA(
        sla_id=int(child_text(node, "SLA-ID")),
        client=child_text(node, "Client"),
        service_name=child_text(node, "Service"),
        service_class=ServiceClass.from_label(child_text(node, "QoS_Class")),
        specification=_decode_specification(
            require_child(node, "QoS_Specification")),
        agreed_point=_decode_point(require_child(node, "Agreed_QoS")),
        start=float(child_text(window, "Start")),
        end=float(child_text(window, "End")),
        price_rate=float(child_text(node, "Price_Rate", default="0")),
        network=(_decode_network_demand(network_node)
                 if network_node is not None else None),
        adaptation=adaptation,
    )
    delivered_node = node.find("Delivered_QoS")
    if delivered_node is not None:
        sla.delivered_point = _decode_point(delivered_node)
    return sla


# ----------------------------------------------------------------------
# Service requests and offers (the Figure 7 client messages)
# ----------------------------------------------------------------------


def encode_service_request(request) -> ET.Element:
    """Encode a client ``service_request`` message (Figure 7)."""
    from ..sla.negotiation import ServiceRequest
    assert isinstance(request, ServiceRequest)
    root = element("Service_Request")
    subelement(root, "Client", request.client)
    subelement(root, "Service", request.service_name)
    subelement(root, "QoS_Class", request.service_class.value)
    root.append(_encode_specification(request.specification))
    window = subelement(root, "Validity")
    subelement(window, "Start", _number(request.start))
    subelement(window, "End", _number(request.end))
    if request.budget_rate is not None:
        subelement(root, "Budget_Rate", _number(request.budget_rate))
    if request.network is not None:
        root.append(_encode_network_demand(request.network))
    options = subelement(root, "Adaptation_Options")
    for point in request.adaptation.alternative_points:
        options.append(_encode_point("Alternative_QoS", point))
    subelement(options, "Promotion_Offer",
               "Accept" if request.adaptation.accept_promotion
               else "Decline")
    subelement(options, "Degradation",
               "Accept" if request.adaptation.accept_degradation
               else "Decline")
    subelement(options, "Termination",
               "Accept" if request.adaptation.accept_termination
               else "Decline")
    return root


def decode_service_request(node: ET.Element):
    """Decode a ``service_request`` message into a ServiceRequest."""
    from ..sla.negotiation import ServiceRequest
    if node.tag != "Service_Request":
        raise MessageError(f"expected <Service_Request>, got <{node.tag}>")
    options_node = node.find("Adaptation_Options")
    adaptation = AdaptationOptions()
    if options_node is not None:
        adaptation = AdaptationOptions(
            alternative_points=tuple(
                _decode_point(child)
                for child in options_node.findall("Alternative_QoS")),
            accept_promotion=child_text(
                options_node, "Promotion_Offer", default="Decline")
            == "Accept",
            accept_degradation=child_text(
                options_node, "Degradation", default="Decline") == "Accept",
            accept_termination=child_text(
                options_node, "Termination", default="Decline") == "Accept",
        )
    network_node = node.find("Network_QoS")
    window = require_child(node, "Validity")
    budget_text = child_text(node, "Budget_Rate", default="")
    return ServiceRequest(
        client=child_text(node, "Client"),
        service_name=child_text(node, "Service"),
        service_class=ServiceClass.from_label(child_text(node, "QoS_Class")),
        specification=_decode_specification(
            require_child(node, "QoS_Specification")),
        start=float(child_text(window, "Start")),
        end=float(child_text(window, "End")),
        budget_rate=float(budget_text) if budget_text else None,
        network=(_decode_network_demand(network_node)
                 if network_node is not None else None),
        adaptation=adaptation,
    )


def encode_offers(negotiation_id: int, offers) -> ET.Element:
    """Encode the broker's ``service_offer`` reply (Figure 7)."""
    root = element("Service_Offer")
    subelement(root, "Negotiation-ID", str(negotiation_id))
    for index, offer in enumerate(offers):
        node = subelement(root, "Offer", index=str(index))
        node.append(_encode_point("QoS", offer.point))
        subelement(node, "Price_Rate", _number(offer.price_rate))
        if offer.note:
            subelement(node, "Note", offer.note)
    return root


def decode_offers(node: ET.Element):
    """Decode a ``service_offer`` reply into ``(negotiation_id, offers)``."""
    from ..sla.negotiation import Offer
    if node.tag != "Service_Offer":
        raise MessageError(f"expected <Service_Offer>, got <{node.tag}>")
    negotiation_id = int(child_text(node, "Negotiation-ID"))
    offers = []
    for child in node.findall("Offer"):
        offers.append(Offer(
            point=_decode_point(require_child(child, "QoS")),
            price_rate=float(child_text(child, "Price_Rate")),
            note=child_text(child, "Note", default="")))
    return negotiation_id, offers


def render(node: ET.Element) -> str:
    """Pretty-print any codec output (paper-table style)."""
    return pretty_xml(node)
