"""Bounded idempotency caches for at-least-once delivery.

With fault injection (or plain client retries) an endpoint can see the
same logical request more than once: a duplicated delivery reuses the
envelope's ``message_id``; a retry carries ``retry_of``. Either way the
:attr:`~repro.xmlmsg.envelope.Envelope.dedup_key` identifies the one
logical operation, and a :class:`DedupCache` remembers its outcome so
re-deliveries are answered without re-executing the handler — a
duplicated ``create`` must never double-reserve capacity.

The cache is bounded (FIFO eviction) so a long-lived endpoint cannot
grow without limit; the capacity only needs to cover the retry window,
not the session's lifetime.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, Tuple, TypeVar

from ..errors import ValidationError
from ..telemetry.metrics import MetricsRegistry

V = TypeVar("V")

#: Default number of remembered operations per endpoint.
DEFAULT_CAPACITY = 256


class DedupCache(Generic[V]):
    """A bounded mapping from idempotency key to cached outcome.

    Hit and eviction counts live in a :class:`MetricsRegistry` — a
    private one by default, or the control plane's shared registry
    after :meth:`bind_metrics` — so they show up in the telemetry
    snapshot instead of as shadow attributes.

    Args:
        capacity: Maximum number of remembered keys; the oldest entry
            is evicted first (insertion order, deterministic).
        metrics: Registry for the counters (private when omitted).
        **labels: Labels for the counters (e.g. ``endpoint="aqos"``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 metrics: Optional[MetricsRegistry] = None,
                 **labels: str) -> None:
        if capacity < 1:
            raise ValidationError(
                f"dedup capacity must be at least 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, V]" = OrderedDict()
        self.bind_metrics(metrics if metrics is not None
                          else MetricsRegistry(), **labels)

    def bind_metrics(self, metrics: MetricsRegistry,
                     **labels: str) -> None:
        """Re-point the counters at a shared registry, carrying the
        counts accrued so far into the new home."""
        hits, evictions = getattr(self, "_hits", None), \
            getattr(self, "_evictions", None)
        self._hits = metrics.counter("repro_dedup_hits_total", **labels)
        self._evictions = metrics.counter("repro_dedup_evictions_total",
                                          **labels)
        if hits is not None and hits.value:
            self._hits.inc(hits.value)
        if evictions is not None and evictions.value:
            self._evictions.inc(evictions.value)

    @property
    def hits(self) -> int:
        """Re-deliveries answered from the cache so far."""
        return int(self._hits.value)

    @property
    def evictions(self) -> int:
        """Entries evicted to stay within capacity so far."""
        return int(self._evictions.value)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def seen(self, key: str) -> bool:
        """Whether ``key`` was already executed (counts as a hit)."""
        if key in self._entries:
            self._hits.inc()
            return True
        return False

    def get(self, key: str) -> Optional[V]:
        """The cached outcome for ``key`` (``None`` when unknown)."""
        return self._entries.get(key)

    def put(self, key: str, value: V) -> V:
        """Remember the outcome of one executed operation."""
        if key not in self._entries and len(self._entries) >= self.capacity:
            evicted_key = next(iter(self._entries))
            del self._entries[evicted_key]
            self._evictions.inc()
        self._entries[key] = value
        return value

    def items(self) -> "Iterator[Tuple[str, V]]":
        """Remembered (key, outcome) pairs, oldest first."""
        return iter(list(self._entries.items()))

    def clear(self) -> None:
        """Forget everything (counters are kept)."""
        self._entries.clear()
