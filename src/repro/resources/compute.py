"""The compute resource manager (GRAM-like).

"A RM, in this context, is considered as a combination of the Globus
Resource Allocation Manager (GRAM) and a UDDI registry" (Section 2.1).
The registry half lives in :mod:`repro.registry`; this module is the
GRAM half: it owns a machine, exposes its sellable capacity through a
GARA instance, launches jobs that bind their reservations by PID, and
propagates node failures into the slot table so the broker's adaptation
can react.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..errors import ResourceError
from ..gara.api import GaraApi
from ..gara.reservation import ReservationHandle
from ..gara.slot_table import SlotTable
from ..qos.vector import ResourceVector
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from .dsrt import CpuServiceClass, DsrtScheduler
from .machine import Machine

_job_counter = itertools.count(1)


class JobState(Enum):
    """Lifecycle of a launched Grid service process."""

    RUNNING = "running"
    COMPLETED = "completed"
    KILLED = "killed"


@dataclass
class Job:
    """A launched service process bound to a reservation."""

    job_id: int
    pid: int
    service_name: str
    handle: ReservationHandle
    state: JobState = JobState.RUNNING
    started_at: float = 0.0
    finished_at: Optional[float] = None


#: Listener called with the node delta on machine capacity changes.
CapacityChangeListener = Callable[[int], None]

#: Listener called with the job when it completes or is killed.
JobEndListener = Callable[[Job], None]


class ComputeResourceManager:
    """GRAM-like manager for one machine.

    Args:
        sim: Simulation engine.
        machine: The managed machine.
        trace: Optional activity recorder.
        confirm_timeout: GARA temporary-reservation confirmation window.
    """

    def __init__(self, sim: Simulator, machine: Machine, *,
                 trace: Optional[TraceRecorder] = None,
                 confirm_timeout: float = 30.0) -> None:
        self._sim = sim
        self.machine = machine
        self._trace = trace
        self._table = SlotTable(machine.grid_capacity())
        self.gara = GaraApi(sim, self._table,
                            name=f"gara.{machine.name}",
                            confirm_timeout=confirm_timeout, trace=trace)
        self.dsrt = DsrtScheduler(node_count=machine.grid_nodes)
        self._jobs: Dict[int, Job] = {}
        #: handle.value -> job_id for RUNNING jobs; reservation_bind
        #: rejects double-binding, so at most one job runs per handle
        #: and ``running_job_for`` stays O(1) at any fleet size.
        self._running_by_handle: Dict[int, int] = {}
        self._pid_counter = itertools.count(10_000)
        self._capacity_listeners: List[CapacityChangeListener] = []
        self._job_end_listeners: List[JobEndListener] = []
        machine.subscribe(self._on_machine_change)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def slot_table(self) -> SlotTable:
        """The advance-reservation table over this machine."""
        return self._table

    def capacity(self) -> ResourceVector:
        """Currently sellable capacity (tracks node failures)."""
        return self._table.capacity

    def available(self, start: float, end: float) -> ResourceVector:
        """Free capacity over a window (the Figure 2
        ``QueryComputationResources`` call)."""
        return self._table.available(start, end)

    def available_at(self, time: float) -> ResourceVector:
        """Instantaneous free capacity (O(log n) slot-table fast path).

        Replaces the ``available(now, now + 1e-9)`` pinhole-window
        idiom the sensors, optimizer and Scenario 1 retry loop used.
        """
        return self._table.available_at(time)

    def utilization(self) -> float:
        """Instantaneous CPU utilization in ``[0, 1]``."""
        return self._table.utilization_at(self._sim.now)

    def subscribe_capacity(self, listener: CapacityChangeListener) -> None:
        """Be notified (with the node delta) when capacity changes."""
        self._capacity_listeners.append(listener)

    def subscribe_job_end(self, listener: JobEndListener) -> None:
        """Be notified when a job completes or is killed."""
        self._job_end_listeners.append(listener)

    def _on_machine_change(self, machine: Machine, delta_nodes: int) -> None:
        self._table.set_capacity(machine.grid_capacity())
        if self._trace is not None:
            verb = "failed" if delta_nodes < 0 else "recovered"
            self._trace.record(
                self._sim.now, "compute",
                f"{machine.name}: {abs(delta_nodes)} node(s) {verb}; "
                f"grid capacity now {machine.available_grid_nodes()} nodes")
        for listener in list(self._capacity_listeners):
            listener(delta_nodes)

    # ------------------------------------------------------------------
    # Job launch (GRAM invokes the service; the process claims its
    # reservation with a GARA bind call — Section 3.1)
    # ------------------------------------------------------------------

    def launch(self, service_name: str, handle: ReservationHandle, *,
               duration: Optional[float] = None,
               dsrt_fraction: Optional[float] = None) -> Job:
        """Launch a service process against a committed reservation.

        The new process's PID is bound to the reservation. When
        ``duration`` is given the job self-completes after it; when
        ``dsrt_fraction`` is given a DSRT contract is opened so the
        CPU-level adaptation has something to adjust.
        """
        pid = next(self._pid_counter)
        self.gara.reservation_bind(handle, pid)
        reservation = self.gara.reservation_status(handle)
        job = Job(job_id=next(_job_counter), pid=pid,
                  service_name=service_name, handle=handle,
                  started_at=self._sim.now)
        self._jobs[job.job_id] = job
        self._running_by_handle[handle.value] = job.job_id
        if dsrt_fraction is not None:
            nodes = max(1, int(reservation.demand.cpu))
            self.dsrt.reserve(dsrt_fraction, nodes=nodes,
                              service_class=CpuServiceClass.ADAPTIVE, pid=pid)
        if duration is not None:
            self._sim.schedule(duration, lambda: self._complete(job.job_id),
                               label=f"job:{job.job_id}:complete")
        self._record(f"launched {service_name!r} as pid {pid} "
                     f"(job {job.job_id}, reservation {handle})")
        return job

    def resize_job_contract(self, job: Job, cpu_nodes: float) -> None:
        """Align a running job's DSRT contract with a resized booking.

        Called when broker-level adaptation moves a session's
        delivered point: the GARA reservation was already resized, and
        without this the CPU scheduler keeps the launch-time contract
        forever — squeezed sessions then strand DSRT capacity that the
        slot table shows as free, until a later launch dies on a
        phantom :class:`~repro.errors.CapacityError`.
        """
        if job.state is not JobState.RUNNING:
            return
        try:
            self.dsrt.resize(job.pid, nodes=max(1, int(cpu_nodes)))
        except ResourceError:
            pass  # job runs without a DSRT contract

    def _complete(self, job_id: int) -> None:
        job = self._jobs.get(job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        job.state = JobState.COMPLETED
        job.finished_at = self._sim.now
        self._teardown(job)
        self._record(f"job {job.job_id} ({job.service_name!r}) completed")
        for listener in list(self._job_end_listeners):
            listener(job)

    def kill(self, job_id: int) -> None:
        """Terminate a running job (Scenario 1's last-resort squeeze)."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ResourceError(f"unknown job {job_id}")
        if job.state is not JobState.RUNNING:
            return
        job.state = JobState.KILLED
        job.finished_at = self._sim.now
        self._teardown(job)
        self._record(f"job {job.job_id} ({job.service_name!r}) killed")
        for listener in list(self._job_end_listeners):
            listener(job)

    def _teardown(self, job: Job) -> None:
        if self._running_by_handle.get(job.handle.value) == job.job_id:
            del self._running_by_handle[job.handle.value]
        reservation = self.gara.reservation_status(job.handle)
        if reservation.state.is_live:
            self.gara.reservation_cancel(job.handle)
        try:
            self.dsrt.release(job.pid)
        except ResourceError:
            pass  # job ran without a DSRT contract

    def job(self, job_id: int) -> Job:
        """Look up a job by id."""
        found = self._jobs.get(job_id)
        if found is None:
            raise ResourceError(f"unknown job {job_id}")
        return found

    # ------------------------------------------------------------------
    # DSRT usage sampling (the resource-management-level adaptation of
    # Section 3.2: contracts shrink toward observed usage)
    # ------------------------------------------------------------------

    def start_usage_sampling(self, interval: float, rng, *,
                             mean_usage: float = 0.5,
                             burstiness: float = 0.25) -> None:
        """Periodically sample synthetic CPU usage for running jobs.

        Each job gets a stable per-job mean (drawn once around
        ``mean_usage``); every ``interval`` the scheduler records a
        noisy sample per running job and runs one DSRT adjustment
        round, so over-reserved contracts shrink toward actual usage
        exactly as Chu & Nahrstedt's system-initiated adaptation does.

        Args:
            interval: Sampling period (simulation time).
            rng: A :class:`~repro.sim.random.RandomSource` stream.
            mean_usage: Fleet-wide mean usage fraction.
            burstiness: Std-dev of both the per-job mean draw and the
                per-sample noise.
        """
        if interval <= 0:
            raise ResourceError(f"interval must be positive: {interval}")
        job_means: Dict[int, float] = {}

        def sample() -> None:
            for job in self.running_jobs():
                try:
                    self.dsrt.contract(job.pid)
                except ResourceError:
                    continue  # job runs without a DSRT contract
                if job.pid not in job_means:
                    job_means[job.pid] = min(1.0, max(0.05, rng.normal(
                        mean_usage, burstiness)))
                usage = min(1.0, max(0.0, rng.normal(
                    job_means[job.pid], burstiness / 2)))
                self.dsrt.record_usage(job.pid, usage)
            changes = self.dsrt.adjust_contracts()
            if changes and self._trace is not None:
                self._trace.record(
                    self._sim.now, "dsrt",
                    f"{self.machine.name}: adjusted "
                    f"{len(changes)} contract(s); reserved total "
                    f"{self.dsrt.reserved_total():.2f} node-eq")
            self._sim.schedule(interval, sample,
                               label=f"dsrt:{self.machine.name}:sample")

        self._sim.schedule(interval, sample,
                           label=f"dsrt:{self.machine.name}:sample")

    def running_jobs(self) -> List[Job]:
        """All jobs currently running."""
        return [job for job in self._jobs.values()
                if job.state is JobState.RUNNING]

    def running_job_for(self, handle: ReservationHandle) -> Optional[Job]:
        """The running job bound to a reservation, if any.

        Crash recovery adopts surviving jobs through this lookup
        instead of double-launching a second process against the same
        reservation.
        """
        job_id = self._running_by_handle.get(handle.value)
        if job_id is None:
            return None
        job = self._jobs[job_id]
        return job if job.state is JobState.RUNNING else None

    def _record(self, message: str) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, "compute",
                               f"{self.machine.name}: {message}")
