"""A multiprocessor machine with failable nodes.

The Section 5.6 example runs on "an SGI multiprocessor machine with 64
CPU/processor nodes and 10 GB of memory", 26 of which are exposed to
Grid users; at ``t3`` "three processors ... become inaccessible" and
later recover. :class:`Machine` models exactly that: a set of
:class:`Node` objects whose up/down state determines the capacity the
resource manager can sell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..errors import ResourceError
from ..qos.vector import ResourceVector


class NodeState(Enum):
    """Up/down state of one processor node."""

    UP = "up"
    DOWN = "down"


@dataclass
class Node:
    """One processor node."""

    node_id: int
    state: NodeState = NodeState.UP

    @property
    def is_up(self) -> bool:
        return self.state is NodeState.UP


#: Callback signature for capacity-change listeners:
#: ``listener(machine, delta_nodes)`` with ``delta_nodes`` negative on
#: failure, positive on recovery.
CapacityListener = Callable[["Machine", int], None]


class Machine:
    """A named machine exposing ``grid_nodes`` of its processors.

    Args:
        name: Machine name (e.g. ``"sgi-siteA"``).
        total_nodes: Physical processor count.
        grid_nodes: How many nodes are exposed to Grid users; the rest
            are "dedicated for local processing" (Section 5.6).
        memory_mb: Primary memory exposed to Grid users.
        disk_mb: Disk exposed to Grid users.
    """

    def __init__(self, name: str, total_nodes: int, *,
                 grid_nodes: Optional[int] = None,
                 memory_mb: float = 0.0, disk_mb: float = 0.0) -> None:
        if total_nodes <= 0:
            raise ResourceError(f"machine needs at least one node: {total_nodes}")
        self.name = name
        self.grid_nodes = total_nodes if grid_nodes is None else grid_nodes
        if not 0 < self.grid_nodes <= total_nodes:
            raise ResourceError(
                f"grid_nodes={self.grid_nodes} out of (0, {total_nodes}]")
        self.memory_mb = memory_mb
        self.disk_mb = disk_mb
        self._nodes: Dict[int, Node] = {
            i: Node(node_id=i) for i in range(total_nodes)}
        self._listeners: List[CapacityListener] = []

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def total_nodes(self) -> int:
        """Physical processor count."""
        return len(self._nodes)

    def up_nodes(self) -> int:
        """Number of nodes currently up."""
        return sum(1 for node in self._nodes.values() if node.is_up)

    def available_grid_nodes(self) -> int:
        """Grid-exposed nodes currently up.

        Failures hit the grid partition first in this model (the
        conservative reading of the Section 5.6 example, where the
        3-node failure directly shrinks the guaranteed pool).
        """
        failed = self.total_nodes - self.up_nodes()
        return max(0, self.grid_nodes - failed)

    def grid_capacity(self) -> ResourceVector:
        """The capacity vector the resource manager can sell now."""
        return ResourceVector(cpu=float(self.available_grid_nodes()),
                              memory_mb=self.memory_mb,
                              disk_mb=self.disk_mb)

    # ------------------------------------------------------------------
    # Failure / recovery
    # ------------------------------------------------------------------

    def subscribe(self, listener: CapacityListener) -> None:
        """Register a capacity-change listener."""
        self._listeners.append(listener)

    def fail_nodes(self, count: int) -> List[int]:
        """Mark ``count`` up nodes as down; returns their ids.

        Raises:
            ResourceError: When fewer than ``count`` nodes are up.
        """
        victims = [node for node in self._nodes.values() if node.is_up]
        if len(victims) < count:
            raise ResourceError(
                f"cannot fail {count} nodes; only {len(victims)} are up")
        failed_ids: List[int] = []
        for node in victims[:count]:
            node.state = NodeState.DOWN
            failed_ids.append(node.node_id)
        self._notify(-count)
        return failed_ids

    def repair_nodes(self, node_ids: Optional[List[int]] = None) -> int:
        """Bring nodes back up (all down nodes when ids omitted)."""
        repaired = 0
        for node in self._nodes.values():
            if node.state is NodeState.DOWN and (
                    node_ids is None or node.node_id in node_ids):
                node.state = NodeState.UP
                repaired += 1
        if repaired:
            self._notify(repaired)
        return repaired

    def _notify(self, delta_nodes: int) -> None:
        for listener in list(self._listeners):
            listener(self, delta_nodes)
