"""Failure and congestion injection.

Algorithm 1 sizes the adaptive capacity ``Ca`` "based on the specified
rate of resource failure or congestion provided by the system
administrator". The injector provides that failure process for the
synthetic experiments: node failures with exponential inter-arrival and
repair times, and link-congestion episodes that temporarily scale a
link's usable bandwidth.

Deterministic one-shot schedules (:class:`FailureSchedule`) drive the
Section 5.6 replay, where exactly three nodes fail at ``t3`` and
recover at ``t4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Simulator
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from .machine import Machine
from ..errors import ValidationError


@dataclass(frozen=True)
class FailureSchedule:
    """A deterministic list of ``(time, node_delta)`` events.

    Negative deltas fail nodes; positive deltas repair them.
    """

    events: "Tuple[Tuple[float, int], ...]"

    @classmethod
    def of(cls, *events: "Tuple[float, int]") -> "FailureSchedule":
        """Build a schedule from ``(time, delta)`` pairs."""
        return cls(events=tuple(sorted(events)))

    def apply(self, sim: Simulator, machine: Machine) -> None:
        """Schedule every event against ``machine`` on ``sim``."""
        for time, delta in self.events:
            if delta < 0:
                count = -delta
                sim.schedule_at(time, lambda c=count: machine.fail_nodes(c),
                                label=f"fail:{machine.name}:{count}")
            elif delta > 0:
                sim.schedule_at(time, lambda: machine.repair_nodes(),
                                label=f"repair:{machine.name}")


class FailureInjector:
    """Stochastic node-failure process for one machine.

    Args:
        sim: Simulation engine.
        machine: Target machine.
        rng: Seeded random source (use a dedicated stream).
        mtbf: Mean time between failures (of any node).
        mttr: Mean time to repair a failed node.
        max_concurrent_failures: Cap on simultaneously-down nodes, so
            the process cannot sink the whole machine.
        trace: Optional activity recorder.
    """

    def __init__(self, sim: Simulator, machine: Machine,
                 rng: RandomSource, *, mtbf: float, mttr: float,
                 max_concurrent_failures: Optional[int] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        if mtbf <= 0 or mttr <= 0:
            raise ValidationError("mtbf and mttr must be positive")
        self._sim = sim
        self._machine = machine
        self._rng = rng
        self.mtbf = mtbf
        self.mttr = mttr
        self.max_concurrent_failures = (
            machine.total_nodes - 1 if max_concurrent_failures is None
            else max_concurrent_failures)
        self._trace = trace
        self._down_ids: List[int] = []
        self.failures_injected = 0
        self._running = False

    def start(self) -> None:
        """Begin injecting failures."""
        if self._running:
            return
        self._running = True
        self._schedule_next_failure()

    def stop(self) -> None:
        """Stop injecting further failures (repairs still complete)."""
        self._running = False

    def _schedule_next_failure(self) -> None:
        delay = self._rng.exponential(self.mtbf)
        self._sim.schedule(delay, self._fail_one,
                           label=f"injector:{self._machine.name}:failure")

    def _fail_one(self) -> None:
        if not self._running:
            return
        if (len(self._down_ids) < self.max_concurrent_failures
                and self._machine.up_nodes() > 1):
            failed_ids = self._machine.fail_nodes(1)
            self._down_ids.extend(failed_ids)
            self.failures_injected += 1
            if self._trace is not None:
                self._trace.record(self._sim.now, "failure",
                                   f"{self._machine.name}: node failed "
                                   f"({len(self._down_ids)} down)")
            repair_delay = self._rng.exponential(self.mttr)
            self._sim.schedule(repair_delay, self._repair_one,
                               label=f"injector:{self._machine.name}:repair")
        self._schedule_next_failure()

    def _repair_one(self) -> None:
        if not self._down_ids:
            return
        node_id = self._down_ids.pop(0)
        repaired = self._machine.repair_nodes([node_id])
        if repaired and self._trace is not None:
            self._trace.record(self._sim.now, "failure",
                               f"{self._machine.name}: node {node_id} "
                               f"repaired ({len(self._down_ids)} down)")
