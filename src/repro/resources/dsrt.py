"""DSRT — the Dynamic Soft Real-Time CPU scheduler (simulated).

The paper integrates its broker "with the Dynamic Soft Real-Time (DSRT)
scheduler [Chu & Nahrstedt] as the computation (CPU) scheduler". DSRT's
distinguishing feature is *system-initiated adaptation*: processes hold
CPU-time contracts, the scheduler observes their actual usage, and it
adjusts contract parameters "to reserve just enough CPU time".

The simulation keeps that contract model: processes register with a
service class and a reserved CPU fraction; the scheduler records usage
samples and, on each adjustment round, shrinks or grows contracts
toward observed usage within the class's bounds. The compute RM calls
the adjustment round periodically and treats the reclaimed fraction as
locally-freed capacity (the paper's "resource management level"
adaptation that runs *before* broker-level adaptation, Section 3.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..errors import CapacityError, ResourceError

_pid_counter = itertools.count(5000)


class CpuServiceClass(Enum):
    """DSRT CPU service classes (after Chu & Nahrstedt)."""

    PERIODIC = "periodic"          # strict periodic real-time
    ADAPTIVE = "adaptive"          # usage-adjusted reservation
    EVENT = "event"                # aperiodic with burst budget
    BEST_EFFORT = "best-effort"    # no reservation


@dataclass
class DsrtContract:
    """One process's CPU contract.

    Attributes:
        pid: Process ID.
        service_class: DSRT CPU service class.
        reserved_fraction: CPU fraction currently reserved (0..1 of one
            node, scaled by ``nodes``).
        nodes: How many nodes the process spans.
        usage_samples: Recent observed usage fractions.
    """

    pid: int
    service_class: CpuServiceClass
    reserved_fraction: float
    nodes: int = 1
    usage_samples: List[float] = field(default_factory=list)

    @property
    def reserved_capacity(self) -> float:
        """Reserved node-equivalents (fraction × nodes)."""
        return self.reserved_fraction * self.nodes

    def observed_usage(self) -> Optional[float]:
        """Mean of the recent usage samples, or ``None`` when unsampled."""
        if not self.usage_samples:
            return None
        return sum(self.usage_samples) / len(self.usage_samples)


class DsrtScheduler:
    """A DSRT instance scheduling one machine's CPU capacity.

    Args:
        node_count: Nodes available to the scheduler.
        headroom: Safety margin kept above observed usage when the
            adjustment round shrinks a contract (Chu et al. reserve
            "just enough" — plus a small guard band).
        min_fraction: Floor below which no contract is shrunk.
        window: How many usage samples are retained per contract.
    """

    def __init__(self, node_count: int, *, headroom: float = 0.1,
                 min_fraction: float = 0.05, window: int = 8) -> None:
        if node_count <= 0:
            raise ResourceError(f"node_count must be positive: {node_count}")
        self.node_count = node_count
        self.headroom = headroom
        self.min_fraction = min_fraction
        self.window = window
        self._contracts: Dict[int, DsrtContract] = {}
        # Running sum of reserved node-equivalents: admission-rate
        # callers probe free_capacity() per reserve, so a fresh
        # sum() here would be O(live contracts) on the hot path.
        self._reserved = 0.0

    # ------------------------------------------------------------------
    # Contract management
    # ------------------------------------------------------------------

    def reserved_total(self) -> float:
        """Total reserved node-equivalents across live contracts."""
        return self._reserved

    def free_capacity(self) -> float:
        """Unreserved node-equivalents."""
        return self.node_count - self.reserved_total()

    def reserve(self, fraction: float, *, nodes: int = 1,
                service_class: CpuServiceClass = CpuServiceClass.ADAPTIVE,
                pid: Optional[int] = None) -> DsrtContract:
        """Create a contract reserving ``fraction`` of each of ``nodes``.

        Raises:
            CapacityError: When the reservation exceeds free capacity.
            ResourceError: On malformed arguments or duplicate pid.
        """
        if not 0.0 < fraction <= 1.0:
            raise ResourceError(f"fraction must be in (0, 1]: {fraction}")
        if nodes < 1:
            raise ResourceError(f"nodes must be >= 1: {nodes}")
        demand = fraction * nodes
        if demand > self.free_capacity() + 1e-9:
            raise CapacityError(
                f"DSRT reservation of {demand:g} node-equivalents exceeds "
                f"free capacity {self.free_capacity():g}")
        if pid is None:
            pid = next(_pid_counter)
        if pid in self._contracts:
            raise ResourceError(f"pid {pid} already holds a DSRT contract")
        contract = DsrtContract(pid=pid, service_class=service_class,
                                reserved_fraction=fraction, nodes=nodes)
        self._contracts[pid] = contract
        self._reserved += contract.reserved_capacity
        return contract

    def release(self, pid: int) -> None:
        """Tear down a contract.

        Raises:
            ResourceError: When the pid holds no contract.
        """
        contract = self._contracts.pop(pid, None)
        if contract is None:
            raise ResourceError(f"pid {pid} holds no DSRT contract")
        self._reserved -= contract.reserved_capacity
        if not self._contracts:
            # Pin the running sum back to exactly zero so float dust
            # from release order can never accumulate across epochs.
            self._reserved = 0.0

    def resize(self, pid: int, *, nodes: Optional[int] = None,
               fraction: Optional[float] = None) -> DsrtContract:
        """Resize a live contract in place.

        Keeps the scheduler's running reserved sum aligned when the
        broker moves a session's delivered operating point (the GARA
        booking is resized there; this is the CPU-scheduler side of
        the same move). Shrinking always succeeds; growth is clamped
        to free capacity — a partially grown soft-real-time contract
        still schedules, and the slot table stays authoritative for
        what was sold.

        Raises:
            ResourceError: When the pid holds no contract or the
                arguments are malformed.
        """
        contract = self.contract(pid)
        new_nodes = contract.nodes if nodes is None else nodes
        new_fraction = (contract.reserved_fraction if fraction is None
                        else fraction)
        if new_nodes < 1:
            raise ResourceError(f"nodes must be >= 1: {new_nodes}")
        if not 0.0 < new_fraction <= 1.0:
            raise ResourceError(
                f"fraction must be in (0, 1]: {new_fraction}")
        ceiling = contract.reserved_capacity + self.free_capacity()
        target = min(new_fraction * new_nodes, ceiling)
        self._reserved += target - contract.reserved_capacity
        contract.nodes = new_nodes
        contract.reserved_fraction = target / new_nodes
        return contract

    def contract(self, pid: int) -> DsrtContract:
        """The live contract for ``pid``."""
        found = self._contracts.get(pid)
        if found is None:
            raise ResourceError(f"pid {pid} holds no DSRT contract")
        return found

    def contracts(self) -> List[DsrtContract]:
        """All live contracts (a copy)."""
        return list(self._contracts.values())

    # ------------------------------------------------------------------
    # Usage-driven adjustment (DSRT's system-initiated adaptation)
    # ------------------------------------------------------------------

    def record_usage(self, pid: int, fraction: float) -> None:
        """Record one observed usage sample for a process."""
        if not 0.0 <= fraction <= 1.0:
            raise ResourceError(f"usage fraction out of [0, 1]: {fraction}")
        contract = self.contract(pid)
        contract.usage_samples.append(fraction)
        del contract.usage_samples[:-self.window]

    def adjust_contracts(self) -> Dict[int, float]:
        """One adjustment round: move reservations toward observed usage.

        Only ``ADAPTIVE`` contracts move. Shrinking is bounded below by
        ``min_fraction``; growing is bounded by free capacity (greedy,
        in pid order, so rounds are deterministic).

        Returns:
            ``pid -> new reserved_fraction`` for every contract changed.
        """
        changes: Dict[int, float] = {}
        for pid in sorted(self._contracts):
            contract = self._contracts[pid]
            if contract.service_class is not CpuServiceClass.ADAPTIVE:
                continue
            usage = contract.observed_usage()
            if usage is None:
                continue
            target = min(1.0, max(self.min_fraction,
                                  usage * (1.0 + self.headroom)))
            if abs(target - contract.reserved_fraction) < 1e-6:
                continue
            if target > contract.reserved_fraction:
                grow = (target - contract.reserved_fraction) * contract.nodes
                slack = self.free_capacity()
                if slack <= 1e-9:
                    continue
                allowed = min(grow, slack) / contract.nodes
                target = contract.reserved_fraction + allowed
            self._reserved += (target
                               - contract.reserved_fraction) * contract.nodes
            contract.reserved_fraction = target
            changes[pid] = target
        return changes
