"""Computation resources: machines, the DSRT scheduler, the compute RM.

The paper's compute substrate is Globus GRAM over the DSRT soft
real-time CPU scheduler, with GARA as the reservation interface. Here:

* :mod:`repro.resources.machine` — a multiprocessor machine whose nodes
  can fail and recover (the SGI machine of Section 5.6).
* :mod:`repro.resources.dsrt` — the Dynamic Soft Real-Time scheduler:
  per-process CPU reservations with usage-driven contract adjustment.
* :mod:`repro.resources.compute` — the GRAM-like resource manager tying
  machine, slot table, GARA and DSRT together.
* :mod:`repro.resources.failures` — stochastic failure/repair injection.
"""

from .compute import ComputeResourceManager, Job, JobState
from .dsrt import DsrtContract, DsrtScheduler
from .failures import FailureInjector, FailureSchedule
from .machine import Machine, Node, NodeState

__all__ = [
    "ComputeResourceManager",
    "DsrtContract",
    "DsrtScheduler",
    "FailureInjector",
    "FailureSchedule",
    "Job",
    "JobState",
    "Machine",
    "Node",
    "NodeState",
]
