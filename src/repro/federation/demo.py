"""The ``repro federate`` episode: a seeded federation under one crash.

:func:`run_federate_demo` is both the CLI's demonstration and the PR's
acceptance episode: N domains admit a staggered tenant workload with
homes assigned round-robin, one broker (picked by the crash seed) is
killed at ``t=30`` and rejoined at ``t=60``, and the run must end with
zero guaranteed-SLA violations in the surviving domains, every
rerouted admission explained by the per-domain decision provenance
(``repro obs why``-style), and the federation invariants intact.

Everything derives from ``(domains, crash_seed)``, so the rendered
report is byte-deterministic for fixed arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set

from ..errors import SLAError
from ..obs.flight import FlightRecorder
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter, range_parameter
from ..qos.specification import QoSSpecification
from ..sim.random import RandomSource
from ..sla.negotiation import ServiceRequest
from .plane import FederatedControlPlane, FederatedOutcome
from .recovery import federation_invariants

__all__ = [
    "FederateDemoResult",
    "run_federate_demo",
]

CRASH_AT = 30.0
RECOVER_AT = 60.0


@dataclass
class FederateDemoResult:
    """The episode's rendered report plus everything a test asserts."""

    text: str
    plane: FederatedControlPlane
    crash_domain: str
    outcomes: "List[FederatedOutcome]"
    problems: "List[str]"
    surviving_guaranteed_violations: int
    unexplained_reroutes: "List[str]"


def _tenant_request(client: str, cpu: int, guaranteed: bool,
                    start: float, duration: float) -> ServiceRequest:
    if guaranteed:
        service_class = ServiceClass.GUARANTEED
        cpu_parameter = exact_parameter(Dimension.CPU, cpu)
    else:
        service_class = ServiceClass.CONTROLLED_LOAD
        cpu_parameter = range_parameter(Dimension.CPU,
                                        max(1, cpu // 2), cpu)
    spec = QoSSpecification.of(
        cpu_parameter, exact_parameter(Dimension.MEMORY_MB, 512))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=service_class, specification=spec,
        start=start, end=start + duration)


def run_federate_demo(*, domains: int = 3, crash_seed: int = 7,
                      horizon: float = 120.0) -> FederateDemoResult:
    """Run the acceptance episode and render its report."""
    rng = RandomSource(crash_seed)
    plane = FederatedControlPlane(domains=domains, seed=crash_seed)
    names = plane.names
    crash_domain = rng.stream("crash").choice(names)

    # Guaranteed-class violation attribution per domain, via each
    # domain's own notification hub.
    violating: "Dict[str, Set[int]]" = {name: set() for name in names}

    def subscribe(name: str) -> None:
        testbed = plane.domains[name].testbed

        def on_notice(notice, name=name, testbed=testbed) -> None:
            if notice.report is None or notice.report.conformant:
                return
            try:
                sla = testbed.repository.get(notice.sla_id)
            except SLAError:
                return
            if sla.service_class is ServiceClass.GUARANTEED:
                violating[name].add(notice.sla_id)

        testbed.broker.hub.subscribe(on_notice)
        testbed.broker.verifier.start_polling(5.0)

    for name in names:
        subscribe(name)

    workload_rng = rng.stream("workload")
    outcomes: "List[FederatedOutcome]" = []
    at = 2.0
    index = 0
    while at < 0.75 * horizon:
        client = f"tenant-{index:02d}"
        cpu = workload_rng.randint(2, 8)
        guaranteed = workload_rng.probability(0.7)
        duration = 30.0 + workload_rng.uniform(0.0, 40.0)
        home = names[index % len(names)]

        def admit(client=client, cpu=cpu, guaranteed=guaranteed,
                  duration=duration, home=home) -> None:
            outcomes.append(plane.request_service(
                _tenant_request(client, cpu, guaranteed,
                                plane.sim.now, duration), home=home))

        plane.sim.schedule_at(at, admit, label=f"federate:{client}")
        at += 4.0
        index += 1

    plane.crash_broker(crash_domain, at=CRASH_AT)
    plane.recover_broker(crash_domain, at=RECOVER_AT)
    plane.start_heartbeats(until=horizon)
    plane.sim.run(until=horizon)

    for name in names:
        testbed = plane.domains[name].testbed
        testbed.broker.verifier.stop_polling()
        if not plane.chaos.is_crashed(name) \
                and testbed.gateway is not None:
            testbed.gateway.sweep_stale(0.0)

    problems = federation_invariants(plane)
    surviving = [name for name in names if name != crash_domain]
    surviving_violations = sum(len(violating[name]) for name in surviving)

    rerouted = [outcome for outcome in outcomes if outcome.rerouted]
    explained: "Dict[str, str]" = {}
    unexplained: "List[str]" = []
    for outcome in rerouted:
        client = outcome.request.client
        text = _explain_reroute(plane, client)
        if text is None:
            unexplained.append(client)
        else:
            explained[client] = text

    text = _render(plane, crash_domain=crash_domain, outcomes=outcomes,
                   violating=violating, problems=problems,
                   surviving_violations=surviving_violations,
                   rerouted=rerouted, explained=explained,
                   unexplained=unexplained, horizon=horizon)
    return FederateDemoResult(
        text=text, plane=plane, crash_domain=crash_domain,
        outcomes=outcomes, problems=problems,
        surviving_guaranteed_violations=surviving_violations,
        unexplained_reroutes=unexplained)


def _explain_reroute(plane: FederatedControlPlane,
                     client: str) -> "str | None":
    """The ``repro obs why`` story for one rerouted client, from the
    domain whose decision log carries the federation verdicts."""
    for name in plane.names:
        testbed = plane.domains[name].testbed
        decisions = testbed.decisions
        if decisions is None:
            continue
        federation_records = [record for record
                              in decisions.for_subject(client)
                              if record.action == "federation"]
        if not any(record.outcome == "reroute"
                   for record in federation_records):
            continue
        recorder = FlightRecorder(decisions=decisions,
                                  journal=testbed.journal,
                                  slo=testbed.slo)
        return f"[decision log of {name}]\n" + recorder.why(client)
    return None


def _render(plane: FederatedControlPlane, *, crash_domain: str,
            outcomes, violating, problems, surviving_violations: int,
            rerouted, explained, unexplained,
            horizon: float) -> str:
    lines: "List[str]" = []
    names = plane.names
    lines.append(f"# repro federate — {len(names)} domains, horizon "
                 f"{horizon:g}")
    lines.append(f"crash: {crash_domain} down at t={CRASH_AT:g}, "
                 f"rejoined at t={RECOVER_AT:g}")
    lines.append("")
    lines.append("## outcomes")
    stats = plane.stats
    accepted = sum(1 for outcome in outcomes if outcome.accepted)
    lines.append(
        f"requests={len(outcomes)} accepted={accepted} "
        f"local={stats['local']} delegated={stats['delegated']} "
        f"rerouted={stats['rerouted']} rejected={stats['rejected']}")
    lines.append(f"heartbeat rounds: {stats['heartbeat_rounds']}; "
                 f"reconciled cancellations: "
                 f"{stats['reconciled_cancellations']}")
    lines.append("")
    lines.append("## per-domain")
    for name in names:
        testbed = plane.domains[name].testbed
        slo = testbed.slo
        availability = 1.0
        if slo is not None:
            snapshot = slo.snapshot(plane.sim.now)
            entry = snapshot.get(ServiceClass.GUARANTEED.value, {})
            availability = float(entry.get("availability", 1.0))
        tag = " (crashed during the run)" if name == crash_domain else ""
        lines.append(
            f"{name}{tag}: live={len(testbed.repository.live())} "
            f"total={len(testbed.repository.all())} "
            f"guaranteed_violations={len(violating[name])} "
            f"guaranteed_availability={availability:g}")
    lines.append("")
    lines.append(f"## rerouted admissions ({len(rerouted)})")
    for outcome in rerouted:
        client = outcome.request.client
        landing = outcome.domain if outcome.accepted else "nowhere"
        lines.append(f"- {client}: home {outcome.home} -> {landing}"
                     f"{' (delegated)' if outcome.delegated else ''}")
    for client in sorted(explained):
        lines.append("")
        lines.append(explained[client].rstrip())
    if unexplained:
        lines.append(f"UNEXPLAINED reroutes: {sorted(unexplained)}")
    lines.append("")
    lines.append("## verdict")
    lines.append(f"federation invariants: "
                 f"{'OK' if not problems else 'VIOLATED'} "
                 f"({len(problems)} problem(s))")
    for problem in problems:
        lines.append(f"   - {problem}")
    lines.append(f"guaranteed violations in surviving domains: "
                 f"{surviving_violations}")
    return "\n".join(lines) + "\n"
