"""Crash-point sweep over the delegation protocol's write points.

The PR-5 sweep proved single-broker recovery correct by crashing at
every journal write of a canonical episode; this module extends the
technique across the *federation*: a scripted three-domain episode in
which an under-provisioned ``d1`` must delegate its big requests to
``d2``/``d3``, swept by arming one domain's journal store with a
:class:`~repro.recovery.crashpoints.CrashingJournalStore` at each LSN
(before and after the byte append). Whatever write the crash lands on
— a peer's ``delegation_begin`` intent, the admission commit, the
``accepted`` link, the home's ``confirmed`` seal — the rejoined
federation must satisfy :func:`~repro.federation.recovery.federation_invariants`:
capacity conserved per domain, no delegation live in two domains, no
booking the home side disowned.

Everything is seeded and scripted; a sweep cell is reproducible by
``(domain, lsn, mode, seed)`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import BrokerCrash
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter
from ..qos.specification import QoSSpecification
from ..recovery.crashpoints import CrashingJournalStore
from ..recovery.journal import MemoryJournalStore
from ..sla.negotiation import ServiceRequest
from .plane import FederatedControlPlane, FederatedOutcome
from .recovery import federation_invariants

__all__ = [
    "EpisodeResult",
    "SweepCell",
    "SweepResult",
    "count_delegation_write_points",
    "run_delegation_episode",
    "sweep_delegation_crash_points",
]

#: The under-provisioned home domain's capacity (Cg=3 cannot hold the
#: episode's cpu-10 requests, forcing cross-domain delegation).
SMALL_DOMAIN = {"total_cpu": 6, "guaranteed_cpu": 3, "adaptive_cpu": 2,
                "best_effort_cpu": 1, "best_effort_min": 1}

#: The scripted workload: (time, client, cpu, duration). Big requests
#: overflow d1 and delegate; the small one stays home.
EPISODE_WORKLOAD: "Tuple[Tuple[float, str, int, float], ...]" = (
    (1.0, "fed-big-1", 10, 70.0),
    (2.0, "fed-small-1", 2, 60.0),
    (5.0, "fed-big-2", 8, 70.0),
    (12.0, "fed-big-3", 6, 60.0),
)

EPISODE_HORIZON = 90.0
EPISODE_RECOVER_AT = 60.0


def _guaranteed_request(client: str, cpu: int, start: float,
                        duration: float) -> ServiceRequest:
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, cpu),
        exact_parameter(Dimension.MEMORY_MB, 1024))
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=start, end=start + duration)


@dataclass
class EpisodeResult:
    """One scripted episode's outcome (clean or crashed)."""

    plane: FederatedControlPlane
    outcomes: "List[FederatedOutcome]"
    problems: "List[str]"
    crashed: "List[str]" = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every federation invariant held at the end."""
        return not self.problems


@dataclass(frozen=True)
class SweepCell:
    """One (domain, lsn, mode) cell of the sweep."""

    domain: str
    crash_lsn: int
    mode: str
    fired: bool
    problems: "Tuple[str, ...]"

    @property
    def ok(self) -> bool:
        return not self.problems


@dataclass(frozen=True)
class SweepResult:
    """The full sweep: every cell, plus the failures for reporting."""

    cells: "Tuple[SweepCell, ...]"

    @property
    def failures(self) -> "Tuple[SweepCell, ...]":
        return tuple(cell for cell in self.cells if not cell.ok)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_delegation_episode(*, crash_domain: Optional[str] = None,
                           crash_lsn: Optional[int] = None,
                           mode: str = "before", seed: int = 0,
                           recover_at: float = EPISODE_RECOVER_AT,
                           horizon: float = EPISODE_HORIZON
                           ) -> EpisodeResult:
    """Run the scripted episode, optionally crashing one domain's
    journal at its ``crash_lsn``-th write, and check the invariants.

    The crashed domain is recovered at ``recover_at`` — after the
    delegation traffic, before the horizon — so reconciliation and the
    post-rejoin heartbeats are part of every swept cell.
    """
    stores: "Dict[str, object]" = {}
    armed: Optional[CrashingJournalStore] = None
    if crash_domain is not None and crash_lsn is not None:
        armed = CrashingJournalStore(crash_lsn=crash_lsn, mode=mode,
                                     inner=MemoryJournalStore())
        stores[crash_domain] = armed
    plane = FederatedControlPlane(
        domains=3, seed=seed, capacity={"d1": dict(SMALL_DOMAIN)},
        journal_stores=stores)
    plane.start_heartbeats(until=horizon)
    outcomes: "List[FederatedOutcome]" = []
    for at, client, cpu, duration in EPISODE_WORKLOAD:
        def admit(client=client, cpu=cpu, duration=duration) -> None:
            outcomes.append(plane.request_service(_guaranteed_request(
                client, cpu, plane.sim.now, duration)))
        plane.sim.schedule_at(at, admit, label=f"workload:{client}")
    if crash_domain is not None:
        plane.recover_broker(crash_domain, at=recover_at)
    remaining = 3  # one armed store fires once; bound the loop anyway
    while remaining:
        remaining -= 1
        try:
            plane.sim.run(until=horizon)
            break
        except BrokerCrash:
            # The armed journal died inside one of the broker's *own*
            # simulator events (job completion, expiry sweep) rather
            # than under a plane call; attribute it and keep running —
            # exactly the PR-5 harness shape, minus the instant
            # recovery (the federation recovers on its own schedule).
            assert crash_domain is not None
            plane.crash_broker(
                crash_domain,
                cause="journal died inside a broker-internal event")
    problems = list(federation_invariants(plane))
    if armed is not None and armed.fired \
            and not any(name == crash_domain
                        for _, name, _ in plane.crashes):
        problems.append(f"armed store fired but {crash_domain} was "
                        f"never marked crashed")
    return EpisodeResult(plane=plane, outcomes=outcomes,
                         problems=problems,
                         crashed=[name for _, name, _ in plane.crashes])


def count_delegation_write_points(domain: str, *, seed: int = 0) -> int:
    """Journal write points one domain sees in a clean episode."""
    baseline = run_delegation_episode(seed=seed)
    journal = baseline.plane.domains[domain].testbed.journal
    assert journal is not None
    return journal.last_lsn


def sweep_delegation_crash_points(
        *, domains: "Sequence[str]" = ("d1", "d2"),
        modes: "Sequence[str]" = ("before", "after"),
        seed: int = 0,
        lsns: "Optional[Sequence[int]]" = None) -> SweepResult:
    """Crash every swept domain at every write point, both sides of
    the append; ``lsns`` restricts the sweep (1-based) for quick runs.
    """
    cells: "List[SweepCell]" = []
    for domain in domains:
        total = count_delegation_write_points(domain, seed=seed)
        targets = [lsn for lsn in (lsns if lsns is not None
                                   else range(1, total + 1))
                   if 1 <= lsn <= total]
        for lsn in targets:
            for mode in modes:
                episode = run_delegation_episode(
                    crash_domain=domain, crash_lsn=lsn, mode=mode,
                    seed=seed)
                cells.append(SweepCell(
                    domain=domain, crash_lsn=lsn, mode=mode,
                    fired=domain in episode.crashed,
                    problems=tuple(episode.problems)))
    return SweepResult(cells=tuple(cells))
