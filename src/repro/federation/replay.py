"""Multi-domain atlas replay: one workload, N failure domains.

:func:`replay_federated` drives a compiled atlas scenario through a
:class:`~repro.federation.plane.FederatedControlPlane` instead of a
single testbed. The workload compiles from the same seed as the
single-domain replay (identical sessions, arrivals and durations);
sessions are assigned home domains round-robin, admitted through the
plane's batched path per PR-6 epoch, and every scenario failure track
lands on one domain's machine (track index modulo domain count) — so a
rack cascade that would hollow out a single-domain deployment only
degrades one failure domain here, and the federation's job is to
reroute around it.

A broker crash can be injected on top (``crash_domain``/``crash_at``)
with a scheduled rejoin, which is the satellite scenario the atlas
regression pins: three domains, one crashed broker, byte-identical
reports per ``(scenario, seed, domains, crash)``, and guaranteed-class
availability in the *surviving* domains read from each domain's PR-8
SLO engine.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass
import math
from typing import Dict, List, Optional

from ..errors import GQoSMError
from ..qos.classes import ServiceClass
from ..sim.random import RandomSource
from ..workloads.replay import batch_schedule, request_for_session
from ..workloads.scenarios import CompiledScenario, ScenarioSpec
from .plane import FederatedControlPlane, FederatedOutcome

__all__ = [
    "FederatedReplayResult",
    "replay_federated",
]

_CLASS_KEYS = ((ServiceClass.GUARANTEED, "guaranteed"),
               (ServiceClass.CONTROLLED_LOAD, "controlled"),
               (ServiceClass.BEST_EFFORT, "best_effort"))


@dataclass
class FederatedReplayResult:
    """One federated replay: canonical report plus the live plane."""

    report: "Dict[str, object]"
    plane: FederatedControlPlane
    compiled: CompiledScenario
    outcomes: "List[FederatedOutcome]"

    def report_json(self) -> str:
        """Canonical JSON (sorted keys — byte-stable per
        (scenario, seed, domains, crash schedule))."""
        return json.dumps(self.report, sort_keys=True,
                          separators=(",", ":"))

    def surviving_guaranteed_availability(self) -> float:
        """Worst guaranteed-class availability across domains that
        were up at the end of the run."""
        values = [entry["slo_guaranteed_availability"]
                  for name, entry in self.report["per_domain"].items()
                  if name not in self.report["crashed_at_end"]]
        return min(values) if values else 1.0


def replay_federated(spec: "ScenarioSpec | str", *, domains: int = 3,
                     seed: int = 0, batch_window: float = 5.0,
                     sample_interval: float = 5.0,
                     heartbeat_interval: float = 5.0,
                     crash_domain: Optional[str] = None,
                     crash_at: Optional[float] = None,
                     recover_at: Optional[float] = None
                     ) -> FederatedReplayResult:
    """Replay one scenario across ``domains`` failure domains.

    Args:
        spec: A :class:`ScenarioSpec` or registered scenario name.
        seed: Drives workload compilation and every domain's streams —
            the compiled workload is identical to the single-domain
            replay's at the same seed.
        crash_domain: When set, that broker is crashed at ``crash_at``
            (default 30% of the horizon) and rejoined at ``recover_at``
            (default 60%; pass ``float('inf')`` to never rejoin).
    """
    if isinstance(spec, str):
        from ..workloads.atlas import get_scenario
        spec = get_scenario(spec)
    compiled = spec.compile(RandomSource(seed))
    guaranteed, adaptive, best_effort, minimum = spec.partition
    total = guaranteed + adaptive + best_effort
    plane = FederatedControlPlane(
        domains=domains, seed=seed,
        heartbeat_interval=heartbeat_interval,
        testbed_defaults={
            "total_cpu": total, "guaranteed_cpu": guaranteed,
            "adaptive_cpu": adaptive, "best_effort_cpu": best_effort,
            "best_effort_min": minimum,
            "machine_nodes": max(64, 2 * total),
        })
    names = plane.names
    sim = plane.sim
    horizon = spec.horizon

    if crash_domain is not None:
        crash_time = (crash_at if crash_at is not None
                      else round(0.3 * horizon, 6))
        rejoin_time = (recover_at if recover_at is not None
                       else round(0.6 * horizon, 6))
        plane.crash_broker(crash_domain, at=crash_time)
        if not math.isinf(rejoin_time):
            plane.recover_broker(crash_domain, at=rejoin_time)
    else:
        crash_time = rejoin_time = None

    for name in names:
        plane.domains[name].testbed.broker.verifier.start_polling(
            sample_interval)
    plane.start_heartbeats(until=horizon)

    # Failure tracks land on one domain each: track k hits the machine
    # of domain k mod N, with domain-scoped repairs (the repair brings
    # back exactly the nodes that track took down).
    for index, track in enumerate(spec.failures):
        machine = plane.domains[names[index % len(names)]].testbed.machine
        downed: "List[int]" = []

        def fail(count: int, machine=machine,
                 down: "List[int]" = downed) -> None:
            down.extend(machine.fail_nodes(count))

        def repair(count: int, machine=machine,
                   down: "List[int]" = downed) -> None:
            victims = down[:count]
            del down[:count]
            machine.repair_nodes(victims)

        for time, delta in track.events:
            if delta < 0:
                sim.schedule_at(time, functools.partial(fail, -delta),
                                label=f"fed:fail:{track.domain}")
            else:
                sim.schedule_at(time, functools.partial(repair, delta),
                                label=f"fed:repair:{track.domain}")

    # Round-robin home assignment by position in the compiled session
    # order (deterministic; batches reference the same objects).
    home_of = {id(session): names[index % len(names)]
               for index, session in
               enumerate(compiled.workload.sessions)}

    outcomes: "List[FederatedOutcome]" = []
    requested = {cls: 0 for cls, _ in _CLASS_KEYS}
    accepted = dict(requested)
    abandoned = [0]

    def admit(batch) -> None:
        admit_at = sim.now
        requests = [request_for_session(session, admit_at)
                    for session in batch]
        homes = [home_of[id(session)] for session in batch]
        try:
            results = plane.request_services(requests, homes=homes)
        except GQoSMError:
            # A batch-level fault: fall back to one admission per
            # session so a single bad request cannot abandon an epoch.
            results = []
            for request, home in zip(requests, homes):
                try:
                    results.append(plane.request_service(request,
                                                         home=home))
                except GQoSMError:
                    abandoned[0] += 1
        outcomes.extend(results)
        for session, outcome in zip(batch, results):
            requested[session.service_class] += 1
            if outcome is not None and outcome.accepted:
                accepted[session.service_class] += 1

    batches = batch_schedule(compiled, batch_window)
    for admit_at, batch in batches:
        sim.schedule_at(admit_at, functools.partial(admit, list(batch)),
                        label=f"fed:admit:{admit_at:g}")

    def sample() -> None:
        for name in names:
            testbed = plane.domains[name].testbed
            if testbed.slo is not None:
                testbed.slo.evaluate(sim.now)
        if sim.now + sample_interval <= horizon + 1e-9:
            sim.schedule(sample_interval, sample, label="fed:sample")

    sim.schedule(sample_interval, sample, label="fed:sample")
    sim.run(until=horizon)

    for name in names:
        testbed = plane.domains[name].testbed
        testbed.broker.verifier.stop_polling()
        if name not in plane.chaos.crashed and testbed.gateway is not None:
            testbed.gateway.sweep_stale(0.0)
        if testbed.slo is not None:
            testbed.slo.evaluate(sim.now)

    report = _build_report(plane, compiled, spec, domains=domains,
                           batch_window=batch_window,
                           batches=len(batches), requested=requested,
                           accepted=accepted, abandoned=abandoned[0],
                           crash_domain=crash_domain,
                           crash_time=crash_time,
                           rejoin_time=rejoin_time)
    return FederatedReplayResult(report=report, plane=plane,
                                 compiled=compiled, outcomes=outcomes)


def _domain_entry(plane: FederatedControlPlane,
                  name: str) -> "Dict[str, object]":
    testbed = plane.domains[name].testbed
    slo = testbed.slo
    snapshot = slo.snapshot(testbed.sim.now) if slo is not None else {}
    guaranteed = snapshot.get(ServiceClass.GUARANTEED.value, {})
    partition = testbed.partition
    return {
        "live_slas": len(testbed.repository.live()),
        "total_slas": len(testbed.repository.all()),
        "terminated": testbed.broker.stats.terminated,
        "violations_detected": testbed.broker.metrics.counter_value(
            "repro_sla_violations_detected_total"),
        "committed": round(partition.committed_total(), 9),
        "failed_capacity": round(partition.failed, 9),
        "slo_guaranteed_availability": round(
            float(guaranteed.get("availability", 1.0)), 9),
        "slo_guaranteed_bad_time": round(
            float(guaranteed.get("bad_time", 0.0)), 9),
        "incoming_delegations": len(plane.domains[name].incoming),
    }


def _build_report(plane: FederatedControlPlane,
                  compiled: CompiledScenario, spec: ScenarioSpec, *,
                  domains: int, batch_window: float, batches: int,
                  requested, accepted, abandoned: int,
                  crash_domain: Optional[str],
                  crash_time: Optional[float],
                  rejoin_time: Optional[float]) -> "Dict[str, object]":
    report: "Dict[str, object]" = {
        "scenario": spec.name,
        "family": spec.family,
        "seed": compiled.seed,
        "domains": domains,
        "horizon": spec.horizon,
        "partition_per_domain": list(spec.partition),
        "sessions": len(compiled.workload),
        "workload_fingerprint": compiled.workload.fingerprint(),
        "batch_window": batch_window,
        "batches": batches,
        "abandoned": abandoned,
        "crash": (None if crash_domain is None else {
            "domain": crash_domain,
            "at": crash_time,
            "recover_at": (None if math.isinf(rejoin_time)
                           else rejoin_time),
        }),
        "crashed_at_end": plane.chaos.crashed,
        "crash_events": len(plane.crashes),
        "federation": {key: plane.stats[key]
                       for key in sorted(plane.stats)},
        "reroute_events": len(plane.reroutes),
        "per_domain": {name: _domain_entry(plane, name)
                       for name in plane.names},
    }
    for service_class, key in _CLASS_KEYS:
        report[f"{key}_requests"] = requested[service_class]
        report[f"{key}_accepted"] = accepted[service_class]
    return report
