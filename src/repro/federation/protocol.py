"""The bid/offer/delegate superscheduling protocol on the XML bus.

Cross-domain coordination speaks five actions, all addressed to a
domain's ``fed:<name>`` endpoint:

* ``fed_bid`` — a home domain asks a peer whether it could admit a
  request; the peer answers with a **penalty-aware** bid: its free
  guaranteed headroom after the admission, discounted by the risk that
  an overloaded or degraded domain later violates the SLA and pays the
  Section 4 penalty. No state changes hands — bids are estimates and
  the delegate step re-admits for real.
* ``fed_delegate`` — the home asks the winning bidder to admit. The
  peer journals a :data:`~repro.recovery.journal.DELEGATION_BEGIN`
  intent *before* touching broker state, runs the ordinary admission
  pipeline, and links the resulting SLA with
  :data:`~repro.recovery.journal.DELEGATION_ACCEPTED` — so a crash at
  any write point leaves a booking reconciliation can classify.
* ``fed_confirm`` — the home seals the delegation end-to-end; a
  booking whose peer never saw the confirm is *half-delegated* and
  gets cancelled when the peer rejoins.
* ``fed_cancel`` — the home abandons a delegation (reroute, or its
  own recovery found the delegation in flight); idempotent.
* ``fed_heartbeat`` — liveness probe for :class:`~repro.federation.health.PeerHealth`.

Replies ride the bus's synchronous reply leg; every *send* in this
package goes through a :class:`~repro.xmlmsg.resilient.ResilientCaller`
(rule QLNT117 enforces it), so retries, dedup and circuit breakers
come for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional
from xml.etree import ElementTree as ET

from ..errors import MessageError
from ..qos.classes import ServiceClass
from ..qos.specification import QoSSpecification
from ..recovery.journal import (DELEGATION_ACCEPTED, DELEGATION_BEGIN,
                                DELEGATION_CONFIRMED)
from ..sla.negotiation import ServiceRequest
from ..xmlmsg import codec
from ..xmlmsg.document import child_text, element, subelement
from ..xmlmsg.envelope import Envelope

__all__ = [
    "FederationBid",
    "FederationEndpoint",
    "IncomingDelegation",
    "compute_bid",
    "decode_bid",
    "decode_delegated",
    "encode_bid_request",
    "encode_cancel",
    "encode_confirm",
    "encode_delegate",
    "encode_heartbeat",
]

#: Utility floor under which a peer declines to bid at all.
_MIN_SCORE = 0.0


@dataclass
class IncomingDelegation:
    """Peer-side tracking for one delegation admitted on a home's
    behalf (volatile; rebuilt from the journal on rejoin)."""

    sla_id: int
    home: str
    opened_at: float


class FederationBid(NamedTuple):
    """A peer's answer to a bid solicitation."""

    domain: str
    accept: bool
    score: float
    price_rate: float
    headroom_after: float
    risk: float
    reason: str


def compute_bid(testbed, request: ServiceRequest,
                domain: str) -> FederationBid:
    """A penalty-aware bid from one domain's current capacity state.

    The bid's utility is ``(1 - risk) * headroom_after``: free
    guaranteed capacity *after* this admission, discounted by the
    domain's violation risk (utilization plus the failed fraction of
    its pool). A hot or degraded domain therefore bids low even when
    the request nominally fits — the expected Section 4 penalty eats
    its margin — which is what steers rerouted load toward healthy
    domains. Reads are non-mutating; the real admission happens at
    ``fed_delegate``.
    """
    partition = testbed.partition
    eff_b = partition.effective_sizes()[2]
    committed = partition.committed_total()
    demand = QoSSpecification.point_demand(
        request.specification.best_point())
    if request.service_class is ServiceClass.BEST_EFFORT:
        free = eff_b
    else:
        free = max(partition.cg - committed - partition.failed, 0.0)
    cg = max(partition.cg, 1e-9)
    utilization = min(max(committed / cg, 0.0), 1.0)
    risk = min(1.0, 0.5 * utilization + partition.failed / cg)
    accept = demand.cpu <= free + 1e-9
    headroom_after = max(free - demand.cpu, 0.0)
    price_rate = testbed.broker.pricing.point_rate(
        request.specification.best_point(), request.service_class)
    score = (1.0 - risk) * headroom_after
    if accept and score < _MIN_SCORE:
        accept = False
    return FederationBid(
        domain=domain, accept=accept, score=score, price_rate=price_rate,
        headroom_after=headroom_after, risk=risk,
        reason="" if accept else "insufficient headroom")


# ----------------------------------------------------------------------
# Wire encoding
# ----------------------------------------------------------------------

def _number(value: float) -> str:
    return f"{value:.12g}"


def _request_body(tag: str, delegation_id: str, home: str,
                  request: ServiceRequest) -> ET.Element:
    root = element(tag)
    subelement(root, "Delegation-ID", delegation_id)
    subelement(root, "Home", home)
    root.append(codec.encode_service_request(request))
    return root


def _decode_request_body(node: ET.Element
                         ) -> "tuple[str, str, ServiceRequest]":
    request_node = node.find("Service_Request")
    if request_node is None:
        raise MessageError(f"<{node.tag}> carries no <Service_Request>")
    return (child_text(node, "Delegation-ID"),
            child_text(node, "Home"),
            codec.decode_service_request(request_node))


def encode_bid_request(sender: str, recipient: str, delegation_id: str,
                       home: str, request: ServiceRequest) -> Envelope:
    """The ``fed_bid`` solicitation envelope."""
    return Envelope(sender=sender, recipient=recipient, action="fed_bid",
                    body=_request_body("Federation_Bid_Request",
                                       delegation_id, home, request))


def encode_delegate(sender: str, recipient: str, delegation_id: str,
                    home: str, request: ServiceRequest) -> Envelope:
    """The ``fed_delegate`` admission envelope."""
    return Envelope(sender=sender, recipient=recipient,
                    action="fed_delegate",
                    body=_request_body("Federation_Delegate",
                                       delegation_id, home, request))


def encode_confirm(sender: str, recipient: str, delegation_id: str,
                   sla_id: int) -> Envelope:
    """The ``fed_confirm`` envelope sealing a delegation."""
    root = element("Federation_Confirm")
    subelement(root, "Delegation-ID", delegation_id)
    subelement(root, "SLA-ID", str(sla_id))
    return Envelope(sender=sender, recipient=recipient,
                    action="fed_confirm", body=root)


def encode_cancel(sender: str, recipient: str,
                  delegation_id: str) -> Envelope:
    """The ``fed_cancel`` envelope abandoning a delegation."""
    root = element("Federation_Cancel")
    subelement(root, "Delegation-ID", delegation_id)
    return Envelope(sender=sender, recipient=recipient,
                    action="fed_cancel", body=root)


def encode_heartbeat(sender: str, recipient: str, observer: str) -> Envelope:
    """The ``fed_heartbeat`` probe envelope."""
    root = element("Federation_Heartbeat")
    subelement(root, "Observer", observer)
    return Envelope(sender=sender, recipient=recipient,
                    action="fed_heartbeat", body=root)


def decode_bid(node: ET.Element) -> FederationBid:
    """Parse a ``<Federation_Bid>`` reply."""
    return FederationBid(
        domain=child_text(node, "Domain"),
        accept=child_text(node, "Accept") == "yes",
        score=float(child_text(node, "Score", default="0")),
        price_rate=float(child_text(node, "Price_Rate", default="0")),
        headroom_after=float(child_text(node, "Headroom", default="0")),
        risk=float(child_text(node, "Risk", default="0")),
        reason=child_text(node, "Reason", default=""))


class DelegationReply(NamedTuple):
    """Parsed ``<Federation_Delegated>`` reply."""

    domain: str
    accepted: bool
    sla_id: Optional[int]
    reason: str


def decode_delegated(node: ET.Element) -> DelegationReply:
    """Parse a ``<Federation_Delegated>`` reply."""
    sla_text = child_text(node, "SLA-ID", default="")
    return DelegationReply(
        domain=child_text(node, "Domain"),
        accepted=child_text(node, "Accepted") == "yes",
        sla_id=int(sla_text) if sla_text else None,
        reason=child_text(node, "Reason", default=""))


# ----------------------------------------------------------------------
# The per-domain endpoint (peer side of the protocol)
# ----------------------------------------------------------------------

class FederationEndpoint:
    """One domain's superscheduling service on the shared bus.

    Registered as ``fed:<domain>``; every handler runs against the
    domain's own broker/journal, so the peer side of a delegation is
    as crash-consistent as a local admission.
    """

    def __init__(self, plane, domain) -> None:
        self.plane = plane
        self.domain = domain
        self.endpoint_name = f"fed:{domain.name}"
        endpoint = plane.bus.endpoint(self.endpoint_name)
        endpoint.on("fed_bid", self._on_bid)
        endpoint.on("fed_delegate", self._on_delegate)
        endpoint.on("fed_confirm", self._on_confirm)
        endpoint.on("fed_cancel", self._on_cancel)
        endpoint.on("fed_heartbeat", self._on_heartbeat)

    # -- handlers ------------------------------------------------------

    def _on_bid(self, envelope: Envelope) -> Envelope:
        delegation_id, home, request = _decode_request_body(envelope.body)
        bid = compute_bid(self.domain.testbed, request, self.domain.name)
        decisions = self.domain.testbed.decisions
        if decisions is not None:
            decisions.decide(
                "federation", "bid" if bid.accept else "bid_declined",
                subject=request.client,
                constraint=f"delegation {delegation_id} from {home}",
                reason=bid.reason,
                chosen={"score": bid.score, "risk": bid.risk,
                        "headroom_after": bid.headroom_after})
        root = element("Federation_Bid")
        subelement(root, "Domain", self.domain.name)
        subelement(root, "Accept", "yes" if bid.accept else "no")
        subelement(root, "Score", _number(bid.score))
        subelement(root, "Price_Rate", _number(bid.price_rate))
        subelement(root, "Headroom", _number(bid.headroom_after))
        subelement(root, "Risk", _number(bid.risk))
        if bid.reason:
            subelement(root, "Reason", bid.reason)
        return envelope.reply("fed_bid_offer", root)

    def _on_delegate(self, envelope: Envelope) -> Envelope:
        delegation_id, home, request = _decode_request_body(envelope.body)
        testbed = self.domain.testbed
        journal = testbed.journal
        # Durable intent first: whatever admission writes follow, a
        # rejoining broker can tell this booking was on a home's
        # behalf and roll it back unless the confirm also landed.
        if journal is not None:
            journal.append(DELEGATION_BEGIN, role="peer",
                           delegation_id=delegation_id, home=home,
                           client=request.client)
        outcome = testbed.broker.request_service(request)
        sla_id = outcome.sla.sla_id if outcome.sla is not None else None
        if outcome.accepted and sla_id is not None:
            if journal is not None:
                journal.append(DELEGATION_ACCEPTED, role="peer",
                               delegation_id=delegation_id, home=home,
                               sla_id=sla_id)
            self.domain.incoming[delegation_id] = IncomingDelegation(
                sla_id=sla_id, home=home, opened_at=testbed.sim.now)
        decisions = testbed.decisions
        if decisions is not None:
            decisions.decide(
                "federation",
                "delegate_in" if outcome.accepted else "delegate_in_reject",
                subject=request.client, sla_id=sla_id,
                constraint=f"delegation {delegation_id} from {home}",
                reason=outcome.reason)
        root = element("Federation_Delegated")
        subelement(root, "Domain", self.domain.name)
        subelement(root, "Accepted", "yes" if outcome.accepted else "no")
        if sla_id is not None:
            subelement(root, "SLA-ID", str(sla_id))
        if outcome.reason:
            subelement(root, "Reason", outcome.reason)
        return envelope.reply("fed_delegated", root)

    def _on_confirm(self, envelope: Envelope) -> Envelope:
        delegation_id = child_text(envelope.body, "Delegation-ID")
        testbed = self.domain.testbed
        entry = self.domain.incoming.get(delegation_id)
        root = element("Federation_Confirmed")
        subelement(root, "Delegation-ID", delegation_id)
        if entry is None:
            # Crashed and reconciled (or never admitted): the booking
            # is gone, tell the home so it reroutes.
            subelement(root, "Status", "unknown")
            return envelope.reply("fed_confirmed", root)
        if testbed.journal is not None:
            testbed.journal.append(DELEGATION_CONFIRMED, role="peer",
                                   delegation_id=delegation_id,
                                   sla_id=entry.sla_id)
        self.domain.confirmed.add(delegation_id)
        subelement(root, "Status", "ok")
        return envelope.reply("fed_confirmed", root)

    def _on_cancel(self, envelope: Envelope) -> Envelope:
        delegation_id = child_text(envelope.body, "Delegation-ID")
        cancelled = self.plane.cancel_incoming(
            self.domain, delegation_id, reason="home cancelled")
        root = element("Federation_Cancelled")
        subelement(root, "Delegation-ID", delegation_id)
        subelement(root, "Status", "ok" if cancelled else "gone")
        return envelope.reply("fed_cancelled", root)

    def _on_heartbeat(self, envelope: Envelope) -> Envelope:
        root = element("Federation_Alive")
        subelement(root, "Domain", self.domain.name)
        subelement(root, "Time",
                   _number(self.domain.testbed.sim.now))
        return envelope.reply("fed_alive", root)
