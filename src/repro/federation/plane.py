"""The federated control plane: N brokers, one wire, no single point
of failure.

:class:`FederatedControlPlane` stands up one fully-wired
:class:`~repro.core.testbed.Testbed` per administrative domain — its
own :class:`~repro.core.capacity.CapacityPartition`, journal, UDDIe
registry slice and resource set — over a *shared* simulator, trace
recorder and message bus, with per-domain endpoint names
(``aqos:d1``, ``uddie:d1``, ``fed:d1``, ...). Requests enter through
:meth:`FederatedControlPlane.request_service`: the home domain admits
locally when it can; when it rejects — or is unreachable — the acting
home solicits penalty-aware bids from live peers and delegates to the
best one (Ranjan et al.'s SLA-based coordinated superscheduling,
adapted to the paper's AQoS broker).

Robustness is the point: :meth:`crash_broker` and :meth:`partition`
inject domain-level faults (seeded, deterministic, layered on the
PR-3 message chaos), heartbeats feed :class:`~repro.federation.health.PeerHealth`,
in-flight delegations that lose their peer are cancelled home-side and
rerouted to survivors, and a crashed broker rejoins via the PR-5
``recover()`` plus :func:`~repro.federation.recovery.reconcile_delegations`
— which rolls back half-delegated bookings so the federation never
double-admits and never strands an orphaned cross-domain booking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.testbed import Testbed, build_testbed, install_all
from ..errors import (BrokerCrash, CircuitOpenError, FederationError,
                      TransientMessageError)
from ..recovery.crashpoints import crash
from ..recovery.journal import (DELEGATION_BEGIN, DELEGATION_CANCELLED,
                                DELEGATION_CONFIRMED)
from ..recovery.recover import build_replay_view, recover
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from ..sla.negotiation import ServiceRequest
from ..xmlmsg.bus import MessageBus
from ..xmlmsg.document import child_text
from ..xmlmsg.resilient import ResilientCaller, RetryPolicy
from .faults import DomainChaos
from .health import PeerHealth
from .protocol import (FederationEndpoint, IncomingDelegation, decode_bid,
                       decode_delegated, encode_bid_request, encode_cancel,
                       encode_confirm, encode_delegate, encode_heartbeat)
from .recovery import RejoinReport, reconcile_delegations, scan_delegations

__all__ = [
    "FederatedControlPlane",
    "FederatedOutcome",
    "FederationDomain",
    "IncomingDelegation",
]


@dataclass
class FederationDomain:
    """One administrative domain: a wired testbed plus its federation
    actors on the shared bus."""

    name: str
    testbed: Testbed
    caller: ResilientCaller
    sla_floor: int
    endpoint: Optional[FederationEndpoint] = None
    incoming: "Dict[str, IncomingDelegation]" = field(default_factory=dict)
    confirmed: "Set[str]" = field(default_factory=set)


@dataclass(frozen=True)
class FederatedOutcome:
    """What the federation did with one request."""

    request: ServiceRequest
    accepted: bool
    home: str
    domain: Optional[str]
    delegated: bool
    rerouted: "Tuple[str, ...]"
    delegation_id: str
    sla_id: Optional[int]
    reason: str


class FederatedControlPlane:
    """N AQoS brokers coordinating over one bus (see module docs).

    Args:
        domains: Domain count (named ``d1..dN``) or explicit names.
        seed: Master seed; every domain derives decorrelated
            substreams from it.
        latency: Per-delivery bus latency.
        heartbeat_interval: Sim-clock cadence of the liveness probes.
        confirm_timeout: Age after which a peer abandons an
            unconfirmed incoming delegation (default twice the
            heartbeat interval).
        testbed_defaults: ``build_testbed`` keyword overrides applied
            to every domain (capacity split, machine size, ...).
        capacity: Per-domain ``build_testbed`` overrides, keyed by
            domain name; merged over ``testbed_defaults``.
        journal_stores: Per-domain journal stores (the crash-point
            sweep arms a :class:`~repro.recovery.crashpoints.CrashingJournalStore`
            this way); missing domains get in-memory stores.
        inner_faults: Optional message-level
            :class:`~repro.xmlmsg.faults.FaultPlan` running beneath
            the domain-level chaos.
        retry_policy: Policy for the cross-domain callers.
    """

    def __init__(self, *, domains=3, seed: int = 0, latency: float = 0.0,
                 heartbeat_interval: float = 5.0,
                 confirm_timeout: Optional[float] = None,
                 testbed_defaults: Optional[Dict[str, object]] = None,
                 capacity: Optional[Dict[str, Dict[str, object]]] = None,
                 journal_stores: Optional[Dict[str, object]] = None,
                 inner_faults=None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        if isinstance(domains, int):
            if domains < 1:
                raise FederationError(
                    f"need at least one domain: {domains}")
            names = [f"d{i + 1}" for i in range(domains)]
        else:
            names = list(domains)
        if len(set(names)) != len(names):
            raise FederationError(f"duplicate domain names: {names}")
        self.sim = Simulator()
        self.trace = TraceRecorder()
        self.bus = MessageBus(self.sim, trace=self.trace, latency=latency)
        self.seed = seed
        self._names = names
        self.domains: "Dict[str, FederationDomain]" = {}
        self.chaos = DomainChaos(lambda: self.sim.now,
                                 domain_of=self._domain_of,
                                 inner=inner_faults)
        self.bus.install_faults(self.chaos)
        self.health = PeerHealth(lambda: self.sim.now,
                                 interval=heartbeat_interval)
        self.heartbeat_interval = heartbeat_interval
        self.confirm_timeout = (confirm_timeout
                                if confirm_timeout is not None
                                else 2.0 * heartbeat_interval)
        policy = retry_policy or RetryPolicy(
            max_attempts=2, timeout=5.0, circuit_cooldown=20.0)
        root_rng = RandomSource(seed)
        stores = journal_stores or {}
        for index, name in enumerate(names):
            kwargs: "Dict[str, object]" = dict(testbed_defaults or {})
            kwargs.update((capacity or {}).get(name, {}))
            testbed = build_testbed(
                sim=self.sim, trace=self.trace,
                rng=root_rng.stream(f"domain:{name}"),
                machine_name=f"sgi-{name}",
                sla_first_id=1000 * (index + 1), **kwargs)
            install_all(testbed, bus=self.bus,
                        gateway_name=f"aqos:{name}",
                        registry_name=f"uddie:{name}",
                        relay_name=f"notification-hub:{name}",
                        discovery_name=f"aqos-discovery:{name}",
                        journal_store=stores.get(name))
            caller = ResilientCaller(
                self.bus, rng=testbed.rng.stream("federation"),
                policy=policy, trace=self.trace, name=f"fed:{name}")
            domain = FederationDomain(name=name, testbed=testbed,
                                      caller=caller,
                                      sla_floor=1000 * (index + 1))
            domain.endpoint = FederationEndpoint(self, domain)
            self.domains[name] = domain
        self.stats: "Dict[str, int]" = {
            "requests": 0, "local": 0, "delegated": 0,
            "rerouted": 0, "rejected": 0, "heartbeat_rounds": 0,
            "reconciled_cancellations": 0,
        }
        self.reroutes: "List[Tuple[float, str, str, str]]" = []
        self.crashes: "List[Tuple[float, str, str]]" = []
        self.recoveries: "List[Tuple[float, str]]" = []
        self._delegation_seq = 0
        self._acting: Optional[str] = None
        self._heartbeats_until: Optional[float] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def names(self) -> "List[str]":
        """Domain names in construction order."""
        return list(self._names)

    def alive_domains(self) -> "List[str]":
        """Domains whose broker is currently up, in order."""
        return [name for name in self._names
                if not self.chaos.is_crashed(name)]

    def _domain_of(self, endpoint: str) -> Optional[str]:
        if ":" not in endpoint:
            return None
        suffix = endpoint.rsplit(":", 1)[1]
        return suffix if suffix in self.domains else None

    def _next_id(self, home: str) -> str:
        self._delegation_seq += 1
        return f"{home}:{self._delegation_seq:04d}"

    def _record(self, message: str) -> None:
        self.trace.record(self.sim.now, "federation", message)

    def _decide(self, domain: FederationDomain, outcome: str,
                **kwargs) -> None:
        decisions = domain.testbed.decisions
        if decisions is not None:
            decisions.decide("federation", outcome, **kwargs)

    def _journal(self, domain: FederationDomain, record_type: str,
                 **payload) -> None:
        journal = domain.testbed.journal
        if journal is not None:
            journal.append(record_type, **payload)

    # ------------------------------------------------------------------
    # Fault injection (the robustness surface)
    # ------------------------------------------------------------------

    def crash_broker(self, domain: str, at: Optional[float] = None, *,
                     cause: str = "injected crash") -> None:
        """Kill a domain's broker now or at sim time ``at``.

        The broker's volatile state is wiped (PR-5 ``crash``), its
        journal store survives, and every message to or from the
        domain drops until :meth:`recover_broker`.
        """
        if domain not in self.domains:
            raise FederationError(f"unknown domain: {domain!r}")
        if at is None or at <= self.sim.now:
            self._note_crash(domain, cause)
            return

        def fire() -> None:
            if not self.chaos.is_crashed(domain):
                self._note_crash(domain, cause)
        self.sim.schedule_at(at, fire, label=f"crash:{domain}")

    def recover_broker(self, domain: str,
                       at: Optional[float] = None
                       ) -> "Optional[RejoinReport]":
        """Rejoin a crashed broker now or at sim time ``at``.

        Runs the PR-5 cold-restart recovery against the surviving
        journal, then the federation reconciliation that rolls back
        half-delegated bookings. A no-op when the domain is up.
        """
        if domain not in self.domains:
            raise FederationError(f"unknown domain: {domain!r}")
        if at is None or at <= self.sim.now:
            return self._rejoin(domain)
        self.sim.schedule_at(at, lambda: self._rejoin(domain),
                             label=f"recover:{domain}")
        return None

    def partition(self, members, start: float, end: float) -> None:
        """Sever ``members`` from the other domains for ``[start, end)``."""
        unknown = sorted(set(members) - set(self._names))
        if unknown:
            raise FederationError(f"unknown domains: {unknown}")
        self.chaos.partition(members, start, end)
        self._record(f"partition {sorted(members)} for "
                     f"[{start:g}, {end:g})")

    def _note_crash(self, name: str, cause: str) -> None:
        if self.chaos.is_crashed(name):
            return
        domain = self.domains[name]
        self.chaos.crash(name)
        crash(domain.testbed)
        domain.incoming.clear()
        domain.confirmed.clear()
        self.health.mark_down(name)
        self.crashes.append((self.sim.now, name, cause))
        self._record(f"domain {name} down: {cause}")

    def _rejoin(self, name: str) -> "Optional[RejoinReport]":
        if not self.chaos.is_crashed(name):
            return None
        domain = self.domains[name]
        self.chaos.restore(name)
        recovery = recover(domain.testbed)
        # Recovery resumes SLA ids from the journal's highest; an
        # empty journal would land the counter below this domain's
        # id range, colliding with a peer's numbering.
        ids = [sla.sla_id for sla in domain.testbed.repository.all()]
        domain.testbed.repository.resume_ids(
            max(ids + [domain.sla_floor - 1]))
        federation = reconcile_delegations(self, domain)
        self.stats["reconciled_cancellations"] += (
            federation.cancelled_incoming + federation.cancelled_outgoing)
        self.health.mark_up(name)
        self.recoveries.append((self.sim.now, name))
        self._record(f"domain {name} rejoined: "
                     f"{federation.cancelled_incoming} half-delegated "
                     f"booking(s) rolled back")
        return RejoinReport(domain=name, recovery=recovery,
                            federation=federation)

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def start_heartbeats(self, until: float) -> None:
        """Probe liveness every ``heartbeat_interval`` up to ``until``."""
        if self._heartbeats_until is not None:
            self._heartbeats_until = max(self._heartbeats_until, until)
            return
        self._heartbeats_until = until
        self.sim.schedule(self.heartbeat_interval, self._heartbeat_round,
                          label="fed-heartbeat")

    def _heartbeat_round(self) -> None:
        self.stats["heartbeat_rounds"] += 1
        for observer in self._names:
            if self.chaos.is_crashed(observer):
                continue
            domain = self.domains[observer]
            for peer in self._names:
                if peer == observer:
                    continue
                if domain.caller.circuit_open(f"fed:{peer}",
                                              "fed_heartbeat"):
                    # Breaker cooling down: count it as a miss without
                    # paying for a probe the caller would refuse.
                    self.health.observe_failure(observer, peer)
                    continue
                envelope = encode_heartbeat(f"fed:{observer}",
                                            f"fed:{peer}", observer)
                try:
                    domain.caller.call(envelope)
                except BrokerCrash:
                    self._note_crash(peer, "died servicing a heartbeat")
                except (TransientMessageError, CircuitOpenError):
                    self.health.observe_failure(observer, peer)
                else:
                    self.health.observe_success(observer, peer)
            self._sweep_unconfirmed(domain)
        assert self._heartbeats_until is not None
        next_at = self.sim.now + self.heartbeat_interval
        if next_at <= self._heartbeats_until:
            self.sim.schedule(self.heartbeat_interval,
                              self._heartbeat_round,
                              label="fed-heartbeat")

    def _sweep_unconfirmed(self, domain: FederationDomain) -> None:
        """Peer-side janitor: abandon incoming delegations whose
        confirm never arrived (home died or gave up silently)."""
        now = self.sim.now
        for delegation_id in sorted(domain.incoming):
            if delegation_id in domain.confirmed:
                continue
            entry = domain.incoming[delegation_id]
            if now - entry.opened_at > self.confirm_timeout:
                self.cancel_incoming(domain, delegation_id,
                                     reason="confirm timed out")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def request_service(self, request: ServiceRequest, *,
                        home: Optional[str] = None) -> FederatedOutcome:
        """Admit one request: home domain first, then the federation."""
        self.stats["requests"] += 1
        return self._admit(request, home)

    def request_services(self, requests: "Sequence[ServiceRequest]", *,
                         homes: "Optional[Sequence[str]]" = None
                         ) -> "List[FederatedOutcome]":
        """Admit a batch, amortizing each home domain's admission
        (PR-6 group commit + single water-fill); rejects fall through
        to delegation individually."""
        if homes is None:
            homes = [self._names[0]] * len(requests)
        if len(homes) != len(requests):
            raise FederationError(
                f"{len(requests)} requests but {len(homes)} homes")
        outcomes: "List[Optional[FederatedOutcome]]" = [None] * len(requests)
        groups: "Dict[str, List[int]]" = {}
        for index, home in enumerate(homes):
            if home not in self.domains:
                raise FederationError(f"unknown home domain: {home!r}")
            groups.setdefault(home, []).append(index)
        for home in sorted(groups):
            indices = groups[home]
            domain = self.domains[home]
            self.stats["requests"] += len(indices)
            if self.chaos.is_crashed(home):
                for index in indices:
                    outcomes[index] = self._admit(requests[index], home)
                continue
            self._acting = home
            try:
                local = domain.testbed.broker.request_services(
                    [requests[index] for index in indices])
            except BrokerCrash as fault:
                self._note_crash(home, f"died mid-batch: {fault}")
                for index in indices:
                    outcomes[index] = self._admit(requests[index], home)
                continue
            for index, outcome in zip(indices, local):
                if outcome.accepted:
                    self.stats["local"] += 1
                    sla_id = (outcome.sla.sla_id
                              if outcome.sla is not None else None)
                    outcomes[index] = FederatedOutcome(
                        request=requests[index], accepted=True, home=home,
                        domain=home, delegated=False, rerouted=(),
                        delegation_id="", sla_id=sla_id, reason="")
                    continue
                try:
                    outcomes[index] = self._delegate(
                        domain, requests[index], origin_home=home,
                        local_reason=outcome.reason
                        or "rejected by home domain")
                except BrokerCrash as fault:
                    fallen = self._acting
                    if fallen is not None \
                            and not self.chaos.is_crashed(fallen):
                        self._note_crash(
                            fallen, f"journal write died: {fault}")
                    outcomes[index] = self._admit(requests[index], home)
        return [outcome for outcome in outcomes if outcome is not None]

    def _admit(self, request: ServiceRequest,
               home: Optional[str]) -> FederatedOutcome:
        try:
            return self._admit_once(request, home)
        except BrokerCrash as fault:
            # The acting domain's own journal died mid-write. Mark the
            # domain down, then check its *durable* journal before
            # retrying: if the admission (or an outgoing delegation's
            # confirm) committed before the crash, the booking revives
            # on rejoin and re-admitting it elsewhere would be a
            # double admission.
            fallen = self._acting
            if fallen is not None and not self.chaos.is_crashed(fallen):
                self._note_crash(fallen, f"journal write died: {fault}")
            if fallen is not None:
                survivor = self._durable_admission(fallen, request)
                if survivor is not None:
                    return survivor
            return self._admit_once(request, home)

    def _durable_admission(self, fallen: str, request: ServiceRequest
                           ) -> "Optional[FederatedOutcome]":
        """A committed outcome readable from a dead domain's journal.

        Conservative on purpose: claiming a booking that recovery
        later compensates merely under-admits, while re-admitting a
        booking that revives would double-admit.
        """
        journal = self.domains[fallen].testbed.journal
        if journal is None:
            return None
        states = scan_delegations(journal)
        for delegation_id in sorted(states):
            state = states[delegation_id]
            if state.role == "home" and state.confirmed \
                    and not state.cancelled \
                    and state.client == request.client:
                self.stats["delegated"] += 1
                return FederatedOutcome(
                    request=request, accepted=True, home=fallen,
                    domain=state.counterpart, delegated=True, rerouted=(),
                    delegation_id=delegation_id, sla_id=state.sla_id,
                    reason="confirmed before the broker died")
        doomed = {state.sla_id for state in states.values()
                  if state.role == "peer" and not state.confirmed
                  and state.sla_id is not None}
        view = build_replay_view(journal)
        live = [sla.sla_id for sla in view.repository.live()
                if sla.client == request.client
                and sla.sla_id not in doomed]
        if live:
            self.stats["local"] += 1
            return FederatedOutcome(
                request=request, accepted=True, home=fallen,
                domain=fallen, delegated=False, rerouted=(),
                delegation_id="", sla_id=min(live),
                reason="committed before the broker died; "
                       "revives on rejoin")
        return None

    def _admit_once(self, request: ServiceRequest,
                    home: Optional[str]) -> FederatedOutcome:
        name = home if home is not None else self._names[0]
        if name not in self.domains:
            raise FederationError(f"unknown home domain: {name!r}")
        origin = self.domains[name]
        if not self.chaos.is_crashed(name):
            self._acting = name
            outcome = origin.testbed.broker.request_service(request)
            if outcome.accepted:
                self.stats["local"] += 1
                sla_id = (outcome.sla.sla_id
                          if outcome.sla is not None else None)
                return FederatedOutcome(
                    request=request, accepted=True, home=name, domain=name,
                    delegated=False, rerouted=(), delegation_id="",
                    sla_id=sla_id, reason="")
            return self._delegate(
                origin, request, origin_home=name,
                local_reason=outcome.reason or "rejected by home domain")
        # Home is down: a surviving domain becomes the acting home.
        alive = [peer for peer in self._names
                 if peer != name and not self.chaos.is_crashed(peer)]
        if not alive:
            self.stats["rejected"] += 1
            return FederatedOutcome(
                request=request, accepted=False, home=name, domain=None,
                delegated=False, rerouted=(name,), delegation_id="",
                sla_id=None, reason="every domain is down")
        acting = self.domains[alive[0]]
        self._acting = acting.name
        self.stats["rerouted"] += 1
        self.reroutes.append((self.sim.now, request.client, name,
                              f"acting home {acting.name}"))
        self._decide(acting, "reroute", subject=request.client,
                     constraint=f"home {name} unreachable",
                     reason=f"acting home {acting.name}",
                     chosen={"from": name, "to": acting.name})
        outcome = acting.testbed.broker.request_service(request)
        if outcome.accepted:
            self.stats["local"] += 1
            sla_id = (outcome.sla.sla_id
                      if outcome.sla is not None else None)
            return FederatedOutcome(
                request=request, accepted=True, home=name,
                domain=acting.name, delegated=False, rerouted=(name,),
                delegation_id="", sla_id=sla_id, reason="")
        return self._delegate(
            acting, request, origin_home=name,
            local_reason=outcome.reason or "rejected by acting home",
            rerouted=[name])

    # ------------------------------------------------------------------
    # Delegation (the superscheduling core)
    # ------------------------------------------------------------------

    def _delegate(self, acting: FederationDomain, request: ServiceRequest,
                  *, origin_home: str, local_reason: str,
                  rerouted: "Optional[List[str]]" = None
                  ) -> FederatedOutcome:
        rerouted = list(rerouted) if rerouted is not None else []
        sender = f"fed:{acting.name}"
        solicitation = self._next_id(acting.name)
        candidates: "List[Dict[str, object]]" = []
        bids = []
        for peer in self._names:
            if peer == acting.name:
                continue
            if not self.health.alive(acting.name, peer):
                candidates.append({"domain": peer, "skipped": "down"})
                continue
            if acting.caller.circuit_open(f"fed:{peer}", "fed_bid"):
                candidates.append({"domain": peer,
                                   "skipped": "circuit open"})
                continue
            envelope = encode_bid_request(sender, f"fed:{peer}",
                                          solicitation, acting.name,
                                          request)
            try:
                reply = acting.caller.call(envelope)
            except BrokerCrash:
                self._note_crash(peer, "died servicing a bid")
                candidates.append({"domain": peer, "skipped": "crashed"})
                continue
            except (TransientMessageError, CircuitOpenError) as fault:
                self.health.observe_failure(acting.name, peer)
                candidates.append({"domain": peer,
                                   "skipped": type(fault).__name__})
                continue
            self.health.observe_success(acting.name, peer)
            bid = decode_bid(reply.body)
            candidates.append({"domain": bid.domain, "accept": bid.accept,
                               "score": bid.score, "risk": bid.risk,
                               "headroom_after": bid.headroom_after})
            if bid.accept:
                bids.append(bid)
        self._decide(acting, "bids", subject=request.client,
                     constraint=f"solicitation {solicitation}",
                     reason=local_reason, candidates=candidates)
        for bid in sorted(bids, key=lambda entry: (-entry.score,
                                                   entry.domain)):
            delegation_id = self._next_id(acting.name)
            self._journal(acting, DELEGATION_BEGIN, role="home",
                          delegation_id=delegation_id, peer=bid.domain,
                          client=request.client)
            envelope = encode_delegate(sender, f"fed:{bid.domain}",
                                       delegation_id, acting.name, request)
            try:
                reply = acting.caller.call(envelope)
            except BrokerCrash:
                self._note_crash(bid.domain,
                                 f"died mid-delegation {delegation_id}")
                self._abandon(acting, delegation_id, bid.domain, request,
                              "peer crashed mid-delegate", rerouted,
                              notify_peer=False)
                continue
            except (TransientMessageError, CircuitOpenError):
                self.health.observe_failure(acting.name, bid.domain)
                self._abandon(acting, delegation_id, bid.domain, request,
                              "peer unreachable", rerouted,
                              notify_peer=True)
                continue
            self.health.observe_success(acting.name, bid.domain)
            delegated = decode_delegated(reply.body)
            if not delegated.accepted or delegated.sla_id is None:
                self._journal(acting, DELEGATION_CANCELLED, role="home",
                              delegation_id=delegation_id, peer=bid.domain,
                              reason=f"peer rejected: {delegated.reason}")
                self._decide(acting, "delegate_rejected",
                             subject=request.client,
                             constraint=f"delegation {delegation_id}",
                             reason=delegated.reason)
                continue
            confirm_failure = ""
            envelope = encode_confirm(sender, f"fed:{bid.domain}",
                                      delegation_id, delegated.sla_id)
            try:
                ack = acting.caller.call(envelope)
                if child_text(ack.body, "Status", default="") != "ok":
                    confirm_failure = "peer lost the booking"
            except BrokerCrash:
                self._note_crash(bid.domain,
                                 f"died before confirm {delegation_id}")
                confirm_failure = "peer crashed before confirm"
            except (TransientMessageError, CircuitOpenError):
                self.health.observe_failure(acting.name, bid.domain)
                confirm_failure = "confirm lost"
            if confirm_failure:
                # The peer may hold a half-delegated booking; its
                # rejoin reconciliation (or confirm-timeout janitor)
                # rolls it back, so rerouting now cannot double-admit.
                self._abandon(acting, delegation_id, bid.domain, request,
                              confirm_failure, rerouted,
                              notify_peer=not self.chaos.is_crashed(
                                  bid.domain))
                continue
            self._journal(acting, DELEGATION_CONFIRMED, role="home",
                          delegation_id=delegation_id, peer=bid.domain,
                          sla_id=delegated.sla_id)
            self._decide(acting, "delegate", subject=request.client,
                         sla_id=delegated.sla_id,
                         constraint=f"delegation {delegation_id}",
                         reason=local_reason,
                         chosen={"domain": bid.domain, "score": bid.score,
                                 "risk": bid.risk})
            self.stats["delegated"] += 1
            return FederatedOutcome(
                request=request, accepted=True, home=origin_home,
                domain=bid.domain, delegated=True,
                rerouted=tuple(rerouted), delegation_id=delegation_id,
                sla_id=delegated.sla_id, reason="")
        self.stats["rejected"] += 1
        self._decide(acting, "reject", subject=request.client,
                     reason=f"no domain could admit ({local_reason})")
        return FederatedOutcome(
            request=request, accepted=False, home=origin_home, domain=None,
            delegated=False, rerouted=tuple(rerouted), delegation_id="",
            sla_id=None, reason="no domain could admit")

    def _abandon(self, acting: FederationDomain, delegation_id: str,
                 peer: str, request: ServiceRequest, reason: str,
                 rerouted: "List[str]", *, notify_peer: bool) -> None:
        """Give up on one delegation attempt and record the reroute."""
        self._journal(acting, DELEGATION_CANCELLED, role="home",
                      delegation_id=delegation_id, peer=peer,
                      reason=reason)
        self.stats["rerouted"] += 1
        rerouted.append(peer)
        self.reroutes.append((self.sim.now, request.client, peer, reason))
        self._decide(acting, "reroute", subject=request.client,
                     constraint=f"delegation {delegation_id}",
                     reason=reason, chosen={"abandoned": peer})
        if notify_peer:
            envelope = encode_cancel(f"fed:{acting.name}", f"fed:{peer}",
                                     delegation_id)
            try:
                acting.caller.call(envelope)
            except BrokerCrash:
                self._note_crash(peer, "died servicing a cancel")
            except (TransientMessageError, CircuitOpenError):
                # Best effort: the peer's confirm-timeout janitor (or
                # rejoin reconciliation) cleans up without us.
                self.health.observe_failure(acting.name, peer)

    # ------------------------------------------------------------------
    # Peer-side cancellation (shared by endpoint, janitor, reconcile)
    # ------------------------------------------------------------------

    def cancel_incoming(self, domain: FederationDomain,
                        delegation_id: str, *, reason: str) -> bool:
        """Roll back one incoming delegation on ``domain``.

        Journals the cancellation first (intent), then terminates the
        SLA's session if it is still live — the order a rejoin
        reconciliation can always finish.
        """
        entry = domain.incoming.pop(delegation_id, None)
        domain.confirmed.discard(delegation_id)
        if entry is None:
            return False
        self._journal(domain, DELEGATION_CANCELLED, role="peer",
                      delegation_id=delegation_id, sla_id=entry.sla_id,
                      reason=reason)
        testbed = domain.testbed
        live_ids = {sla.sla_id for sla in testbed.repository.live()}
        if entry.sla_id in live_ids:
            testbed.broker.terminate_session(
                entry.sla_id, cause="delegation-rollback", note=reason)
        self._decide(domain, "delegate_cancelled",
                     subject=f"delegation {delegation_id}",
                     sla_id=entry.sla_id, reason=reason)
        return True
