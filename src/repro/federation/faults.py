"""Broker-level fault injection: domain crashes and network partitions.

The PR-3 chaos layer perturbs individual *messages*; a federation
needs faults one level up — a whole administrative domain going dark
(its broker process died) or a partition severing one group of
domains from the rest for a window of simulated time.
:class:`DomainChaos` implements the same ``decide(envelope, leg)``
interface the bus consults, so it installs exactly like a
:class:`~repro.xmlmsg.faults.FaultPlan` (``bus.install_faults``) and
can wrap one as its ``inner`` plan: message-level chaos keeps biting
on every delivery the domain-level layer lets through.

Crash and partition schedules are plain data keyed on the simulation
clock — no randomness lives here, so a seeded episode that crashes
``d2`` at ``t=30`` does so on every replay.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional, Set

from ..errors import FederationError, ValidationError
from ..xmlmsg.envelope import Envelope
from ..xmlmsg.faults import LEGS, FaultDecision, FaultStats

__all__ = ["DomainChaos", "PartitionWindow"]


class PartitionWindow(NamedTuple):
    """One group of domains severed from everyone else for a window.

    Messages between a member and a non-member are dropped while
    ``start <= now < end``; traffic inside the group (and inside its
    complement) flows normally.
    """

    members: "frozenset[str]"
    start: float
    end: float

    def severs(self, a: str, b: str, now: float) -> bool:
        """Whether this window cuts the (a, b) pair at ``now``."""
        if not (self.start <= now < self.end):
            return False
        return (a in self.members) != (b in self.members)


class DomainChaos:
    """Domain-level faults over the shared federation bus.

    Args:
        now: The simulation clock (callable returning sim time).
        domain_of: Maps an endpoint name to its owning domain (or
            ``None`` for endpoints outside any domain, e.g. clients).
        inner: Optional message-level plan consulted for deliveries
            the domain layer does not drop.
    """

    def __init__(self, now: Callable[[], float], *,
                 domain_of: Callable[[str], Optional[str]],
                 inner=None) -> None:
        self._now = now
        self._domain_of = domain_of
        self.inner = inner
        self.stats = FaultStats()
        self._crashed: "Set[str]" = set()
        self._partitions: "List[PartitionWindow]" = []

    # ------------------------------------------------------------------
    # Schedule surface
    # ------------------------------------------------------------------

    def crash(self, domain: str) -> None:
        """Mark a domain's broker as down: all its traffic drops."""
        if domain in self._crashed:
            raise FederationError(f"domain {domain!r} is already down")
        self._crashed.add(domain)

    def restore(self, domain: str) -> None:
        """Bring a crashed domain's transport back."""
        if domain not in self._crashed:
            raise FederationError(f"domain {domain!r} is not down")
        self._crashed.discard(domain)

    def is_crashed(self, domain: str) -> bool:
        """Whether the domain is currently marked down."""
        return domain in self._crashed

    @property
    def crashed(self) -> "List[str]":
        """The downed domains, in name order."""
        return sorted(self._crashed)

    def partition(self, members, start: float, end: float) -> PartitionWindow:
        """Sever ``members`` from every other domain for ``[start, end)``."""
        if end <= start:
            raise FederationError(
                f"partition window ends ({end}) before it starts ({start})")
        window = PartitionWindow(frozenset(members), start, end)
        self._partitions.append(window)
        return window

    def severed(self, a: Optional[str], b: Optional[str]) -> bool:
        """Whether an active partition separates domains ``a`` and ``b``."""
        if a is None or b is None or a == b:
            return False
        now = self._now()
        return any(window.severs(a, b, now) for window in self._partitions)

    # ------------------------------------------------------------------
    # The bus-facing interface
    # ------------------------------------------------------------------

    def decide(self, envelope: Envelope, leg: str) -> FaultDecision:
        """Fault decision for one delivery leg (the bus's contract)."""
        if leg not in LEGS:
            raise ValidationError(f"unknown delivery leg: {leg!r}")
        self.stats.decisions += 1
        sender = self._domain_of(envelope.sender)
        recipient = self._domain_of(envelope.recipient)
        dead = (sender in self._crashed or recipient in self._crashed
                or self.severed(sender, recipient))
        if dead:
            decision = FaultDecision(drop=True)
            self.stats.dropped += 1
            return decision
        if self.inner is not None:
            return self.inner.decide(envelope, leg)
        return FaultDecision()
