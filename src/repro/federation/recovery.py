"""Rejoin reconciliation: what a recovered broker owes the federation.

The PR-5 ``recover()`` rebuilds a crashed domain's *local* state from
its journal; this module settles its *cross-domain* obligations. The
delegation protocol journals four record types on both sides
(``delegation_begin`` / ``accepted`` / ``confirmed`` / ``cancelled``),
so :func:`scan_delegations` can fold any journal into one state per
delegation id and :func:`reconcile_delegations` can classify every
booking a crash interrupted:

* **peer role, confirmed** — the delegation completed end-to-end; the
  booking stays and the volatile tracking tables are rebuilt.
* **peer role, unconfirmed** — *half-delegated*: the home never sealed
  it (it timed out and rerouted while this broker was dark), so
  keeping the booking would double-admit the client. Rolled back.
* **peer role, begun but never linked** — the crash landed between
  the admission's own commit and the ``delegation_accepted`` link;
  the orphaned live SLA is found by the recorded client name and
  rolled back the same way.
* **home role, in flight** — this broker died between ``begin`` and
  ``confirmed``; the outgoing delegation is cancelled in the journal
  and a best-effort ``fed_cancel`` tells the peer (whose own
  confirm-timeout janitor covers the case where the cancel is lost).

:func:`federation_invariants` is the sweep's oracle: per-domain
``verify_recovered`` plus the two federation-level guarantees — no
delegation live in two domains (double admission) and no live booking
the home side has disowned (orphaned booking).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BrokerCrash, CircuitOpenError, TransientMessageError
from ..recovery.crashpoints import verify_recovered
from ..recovery.journal import (DELEGATION_ACCEPTED, DELEGATION_BEGIN,
                                DELEGATION_CANCELLED, DELEGATION_CONFIRMED)
from .protocol import IncomingDelegation, encode_cancel

__all__ = [
    "DelegationState",
    "FederationRecovery",
    "RejoinReport",
    "federation_invariants",
    "reconcile_delegations",
    "scan_delegations",
]

_DELEGATION_TYPES = frozenset({
    DELEGATION_BEGIN, DELEGATION_ACCEPTED,
    DELEGATION_CONFIRMED, DELEGATION_CANCELLED,
})


@dataclass
class DelegationState:
    """One delegation's journaled lifecycle, folded oldest-first."""

    delegation_id: str
    role: str = ""
    counterpart: str = ""
    client: str = ""
    opened_at: float = 0.0
    sla_id: Optional[int] = None
    confirmed: bool = False
    cancelled: bool = False

    @property
    def in_flight(self) -> bool:
        """Begun but neither confirmed nor cancelled."""
        return not self.confirmed and not self.cancelled


@dataclass(frozen=True)
class FederationRecovery:
    """What reconciliation did on one rejoin."""

    cancelled_incoming: int = 0
    cancelled_outgoing: int = 0
    restored: int = 0
    notes: "List[str]" = field(default_factory=list)


@dataclass(frozen=True)
class RejoinReport:
    """A rejoined domain's local recovery plus its reconciliation."""

    domain: str
    recovery: object
    federation: FederationRecovery


def scan_delegations(journal) -> "Dict[str, DelegationState]":
    """Fold a journal's delegation records into per-id states."""
    states: "Dict[str, DelegationState]" = {}
    for record in journal.records():
        if record.type not in _DELEGATION_TYPES:
            continue
        payload = record.payload
        delegation_id = str(payload.get("delegation_id", ""))
        state = states.setdefault(
            delegation_id, DelegationState(delegation_id=delegation_id))
        if record.type == DELEGATION_BEGIN:
            state.role = str(payload.get("role", ""))
            state.counterpart = str(payload.get("peer")
                                    or payload.get("home") or "")
            state.client = str(payload.get("client", ""))
            state.opened_at = record.time
        elif record.type == DELEGATION_ACCEPTED:
            state.sla_id = payload.get("sla_id")
        elif record.type == DELEGATION_CONFIRMED:
            state.confirmed = True
            if state.sla_id is None:
                state.sla_id = payload.get("sla_id")
        elif record.type == DELEGATION_CANCELLED:
            state.cancelled = True
            if state.sla_id is None:
                state.sla_id = payload.get("sla_id")
    return states


def reconcile_delegations(plane, domain) -> FederationRecovery:
    """Settle a rejoining domain's delegations (see module docs)."""
    journal = domain.testbed.journal
    if journal is None:
        return FederationRecovery()
    states = scan_delegations(journal)
    repository = domain.testbed.repository
    live_ids = {sla.sla_id for sla in repository.live()}
    linked = {state.sla_id for state in states.values()
              if state.sla_id is not None}
    cancelled_in = cancelled_out = restored = 0
    notes: "List[str]" = []
    for delegation_id in sorted(states):
        state = states[delegation_id]
        if state.role == "peer":
            done = _reconcile_incoming(plane, domain, state, live_ids,
                                       linked, notes)
            if done == "cancelled":
                cancelled_in += 1
            elif done == "restored":
                restored += 1
        elif state.role == "home" and state.in_flight:
            _cancel_outgoing(plane, domain, state, notes)
            cancelled_out += 1
    return FederationRecovery(cancelled_incoming=cancelled_in,
                              cancelled_outgoing=cancelled_out,
                              restored=restored, notes=notes)


def _reconcile_incoming(plane, domain, state: DelegationState,
                        live_ids, linked, notes: "List[str]") -> str:
    """Settle one peer-role delegation; returns what happened."""
    delegation_id = state.delegation_id
    testbed = domain.testbed
    sla_id = state.sla_id
    if sla_id is None and not state.cancelled:
        # The crash beat the delegation_accepted link: the admission
        # may still have committed. Adopt the oldest live SLA for the
        # recorded client that no delegation already owns.
        orphans = sorted(sla.sla_id for sla in testbed.repository.live()
                         if sla.client == state.client
                         and sla.sla_id not in linked)
        if orphans:
            sla_id = orphans[0]
            linked.add(sla_id)
            notes.append(f"{delegation_id}: adopted unlinked SLA "
                         f"{sla_id} for client {state.client}")
    if state.cancelled:
        # The cancel intent landed but the crash may have interrupted
        # the rollback itself; finish it.
        if sla_id in live_ids:
            testbed.broker.terminate_session(
                sla_id, cause="delegation-rollback",
                note=f"{delegation_id}: finishing interrupted rollback")
            notes.append(f"{delegation_id}: finished interrupted rollback "
                         f"of SLA {sla_id}")
            return "cancelled"
        return "noop"
    if state.confirmed:
        if sla_id is not None and sla_id in live_ids:
            domain.incoming[delegation_id] = IncomingDelegation(
                sla_id=sla_id, home=state.counterpart,
                opened_at=state.opened_at)
            domain.confirmed.add(delegation_id)
            return "restored"
        return "noop"
    # Half-delegated: the home never confirmed. By now it has timed
    # out and rerouted, so keeping the booking would double-admit.
    if sla_id is not None and sla_id in live_ids:
        domain.testbed.journal.append(
            DELEGATION_CANCELLED, role="peer",
            delegation_id=delegation_id, sla_id=sla_id,
            reason="half-delegated at crash")
        testbed.broker.terminate_session(
            sla_id, cause="delegation-rollback",
            note=f"{delegation_id}: home never confirmed")
        live_ids.discard(sla_id)
        decisions = testbed.decisions
        if decisions is not None:
            decisions.decide("federation", "reconcile_rollback",
                             subject=f"delegation {delegation_id}",
                             sla_id=sla_id,
                             reason="half-delegated booking rolled back "
                                    "on rejoin")
        notes.append(f"{delegation_id}: rolled back half-delegated "
                     f"SLA {sla_id}")
        return "cancelled"
    domain.testbed.journal.append(
        DELEGATION_CANCELLED, role="peer", delegation_id=delegation_id,
        reason="no booking survived the crash")
    return "noop"


def _cancel_outgoing(plane, domain, state: DelegationState,
                     notes: "List[str]") -> None:
    """Cancel one home-role delegation left in flight by the crash."""
    delegation_id = state.delegation_id
    peer = state.counterpart
    domain.testbed.journal.append(
        DELEGATION_CANCELLED, role="home", delegation_id=delegation_id,
        peer=peer, reason="in flight when this broker crashed")
    notes.append(f"{delegation_id}: outgoing delegation to {peer} "
                 f"cancelled after crash")
    if peer not in plane.domains or plane.chaos.is_crashed(peer):
        return
    envelope = encode_cancel(f"fed:{domain.name}", f"fed:{peer}",
                             delegation_id)
    try:
        domain.caller.call(envelope)
    except BrokerCrash:
        plane._note_crash(peer, "died servicing a reconcile cancel")
    except (TransientMessageError, CircuitOpenError):
        # Best effort: the peer's confirm-timeout janitor (or its own
        # rejoin reconciliation) retires the booking without us.
        plane.health.observe_failure(domain.name, peer)


def federation_invariants(plane) -> "List[str]":
    """The sweep's oracle: every violated guarantee, or nothing.

    Covers each live domain's local PR-5 invariants plus the two
    federation-level ones — no delegation live in more than one
    domain, and no live booking whose home journal has disowned it.
    """
    problems: "List[str]" = []
    live = [name for name in plane.names
            if not plane.chaos.is_crashed(name)]
    for name in live:
        for problem in verify_recovered(plane.domains[name].testbed):
            problems.append(f"{name}: {problem}")
    owners: "Dict[str, List[str]]" = {}
    for name in live:
        domain = plane.domains[name]
        live_ids = {sla.sla_id for sla in domain.testbed.repository.live()}
        for delegation_id in sorted(domain.incoming):
            if domain.incoming[delegation_id].sla_id in live_ids:
                owners.setdefault(delegation_id, []).append(name)
    for delegation_id in sorted(owners):
        holders = owners[delegation_id]
        if len(holders) > 1:
            problems.append(f"double admission: delegation "
                            f"{delegation_id} live in {holders}")
    home_scans: "Dict[str, Dict[str, DelegationState]]" = {}
    for name in live:
        domain = plane.domains[name]
        live_ids = {sla.sla_id for sla in domain.testbed.repository.live()}
        for delegation_id in sorted(domain.incoming):
            entry = domain.incoming[delegation_id]
            if entry.sla_id not in live_ids:
                continue
            home = plane.domains.get(entry.home)
            if home is None or home.testbed.journal is None:
                continue
            if entry.home not in home_scans:
                home_scans[entry.home] = scan_delegations(
                    home.testbed.journal)
            state = home_scans[entry.home].get(delegation_id)
            if state is None:
                problems.append(
                    f"{name}: orphaned booking {delegation_id} — home "
                    f"{entry.home} never journaled it")
            elif state.cancelled and delegation_id in domain.confirmed:
                problems.append(
                    f"{name}: orphaned booking {delegation_id} — home "
                    f"{entry.home} cancelled it but it is live and "
                    f"confirmed here")
    return problems
