"""Peer health tracking from sim-clock heartbeats.

Every live domain probes every other domain on a fixed simulated
cadence (the plane drives the rounds); probes travel through each
domain's :class:`~repro.xmlmsg.resilient.ResilientCaller`, so repeated
failures also open the caller's per-``(recipient, action)`` circuit
breaker and later probes half-open it again — the PR-3 machinery is
the transport-level half of detection, this tracker is the
routing-level half.

Verdicts are per observer *pair*: under a partition, ``d1`` may see
``d2`` down while ``d3`` still reaches it. The rule is
most-recent-outcome: a pair is down when its latest probe failed, up
again on the first success. A plane-wide ``mark_down`` override exists
for crashes detected in-band (a delegation call that died mid-flight
should stop bid solicitation immediately, not one heartbeat later).
"""

from __future__ import annotations

from typing import Callable, Dict, Set, Tuple

__all__ = ["PeerHealth"]


class PeerHealth:
    """Pairwise liveness verdicts from probe outcomes.

    Args:
        now: The simulation clock.
        interval: Heartbeat cadence the plane schedules (stored here
            so reports can show the configured detection latency).
    """

    def __init__(self, now: Callable[[], float], *,
                 interval: float = 5.0) -> None:
        self._now = now
        self.interval = interval
        self._last_success: "Dict[Tuple[str, str], float]" = {}
        self._last_failure: "Dict[Tuple[str, str], float]" = {}
        self._down: "Set[str]" = set()
        self.probes = 0
        self.failures = 0

    def observe_success(self, observer: str, peer: str) -> None:
        """A probe or call from ``observer`` reached ``peer``."""
        self.probes += 1
        self._last_success[(observer, peer)] = self._now()
        self._down.discard(peer)

    def observe_failure(self, observer: str, peer: str) -> None:
        """A probe or call from ``observer`` to ``peer`` failed."""
        self.probes += 1
        self.failures += 1
        self._last_failure[(observer, peer)] = self._now()

    def mark_down(self, peer: str) -> None:
        """Plane-wide override: the peer is known dead (crash seen
        in-band); cleared by the next successful probe from anyone."""
        self._down.add(peer)

    def mark_up(self, peer: str) -> None:
        """Clear the plane-wide down override (broker rejoined)."""
        self._down.discard(peer)

    def alive(self, observer: str, peer: str) -> bool:
        """Current verdict for the (observer, peer) pair.

        Unprobed pairs count as alive (the first heartbeat round has
        not run yet); otherwise the most recent outcome wins, with
        simultaneous success-and-failure resolving pessimistically.
        """
        if peer in self._down:
            return False
        key = (observer, peer)
        success = self._last_success.get(key)
        failure = self._last_failure.get(key)
        if failure is None:
            return True
        if success is None:
            return False
        return success > failure

    def verdicts(self, observer: str, peers) -> "Dict[str, bool]":
        """The observer's current view of each peer, in name order."""
        return {peer: self.alive(observer, peer)
                for peer in sorted(peers) if peer != observer}
