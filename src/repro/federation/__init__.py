"""Federated multi-broker control plane with failure-domain isolation.

One :class:`~repro.federation.plane.FederatedControlPlane` runs N AQoS
brokers — each its own failure domain with private capacity, journal
and registry slice — over the shared XML bus, coordinating admissions
through a bid/offer/delegate superscheduling protocol with broker
crash/partition injection, heartbeat-driven peer health, cross-domain
rerouting, and rejoin reconciliation that rolls back half-delegated
bookings.
"""

from .faults import DomainChaos, PartitionWindow
from .health import PeerHealth
from .plane import FederatedControlPlane, FederatedOutcome, FederationDomain
from .protocol import (FederationBid, FederationEndpoint,
                       IncomingDelegation, compute_bid)
from .recovery import (FederationRecovery, RejoinReport,
                       federation_invariants, reconcile_delegations,
                       scan_delegations)

__all__ = [
    "DomainChaos",
    "FederatedControlPlane",
    "FederatedOutcome",
    "FederationBid",
    "FederationDomain",
    "FederationEndpoint",
    "FederationRecovery",
    "IncomingDelegation",
    "PartitionWindow",
    "PeerHealth",
    "RejoinReport",
    "compute_bid",
    "federation_invariants",
    "reconcile_delegations",
    "scan_delegations",
]
