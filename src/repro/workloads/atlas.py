"""The workload atlas: a registry of named scenario families.

Six built-in families map the traffic landscape the ROADMAP calls for
(each grounded in the provisioning literature — Mazzucco et al.'s
revenue-vs-SLA tradeoff only emerges under varied offered load):

* ``diurnal`` — sinusoidal day/night arrivals (non-homogeneous
  Poisson via thinning);
* ``flash_crowd`` — baseline traffic with multiplicative burst
  windows (a release day);
* ``heavy_tailed`` — lognormal and capped-Pareto session durations;
* ``multi_tenant`` — three tenants with distinct class mixes and SLA
  shapes interleaved into one arrival stream;
* ``correlated_failure`` — rack-scoped outage tracks that overlap
  into a loss exceeding the adaptive reserve;
* ``best_effort_flood`` — a long-running best-effort flood under a
  small guaranteed population.

Every scenario is a :class:`~repro.workloads.scenarios.ScenarioSpec`
compiled deterministically from a seed; the regression suite
(``tests/workloads/test_atlas_regression.py``) holds one test per
family and the meta-test fails if a registered scenario lacks
regression coverage or an EXPERIMENTS.md row.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ValidationError
from .arrivals import ConstantRate, DiurnalRate, FlashCrowdRate
from .durations import (ExponentialDuration, LognormalDuration,
                        ParetoDuration)
from .scenarios import FAMILIES, FailureTrack, ScenarioSpec, TenantProfile

__all__ = [
    "DEFAULT_SEED",
    "families_covered",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "scenarios",
    "scenarios_by_family",
]

#: The seed headline atlas numbers are reported at (the paper's year).
DEFAULT_SEED = 2003

_REGISTRY: "Dict[str, ScenarioSpec]" = {}
#: Registration order, for deterministic iteration.
_ORDER: "List[str]" = []


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the atlas (names are unique).

    Raises:
        ValidationError: When the name is already registered.
    """
    if spec.name in _REGISTRY:
        raise ValidationError(
            f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    _ORDER.append(spec.name)
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name.

    Raises:
        ValidationError: For unknown names (the message lists what is
            registered, so typos fail helpfully).
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        raise ValidationError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(_ORDER)}")
    return spec


def scenario_names() -> "Tuple[str, ...]":
    """Registered names in registration order."""
    return tuple(_ORDER)


def scenarios() -> "Tuple[ScenarioSpec, ...]":
    """Registered specs in registration order."""
    return tuple(_REGISTRY[name] for name in _ORDER)


def scenarios_by_family(family: str) -> "Tuple[ScenarioSpec, ...]":
    """All scenarios of one family (validates the family name)."""
    if family not in FAMILIES:
        raise ValidationError(
            f"unknown family {family!r}; expected one of "
            f"{', '.join(FAMILIES)}")
    return tuple(spec for spec in scenarios() if spec.family == family)


def families_covered() -> "Tuple[str, ...]":
    """The families with at least one registered scenario."""
    return tuple(family for family in FAMILIES
                 if any(spec.family == family for spec in scenarios()))


# ----------------------------------------------------------------------
# Built-in scenarios — one per family, the paper's 15/6/5 partition.
# ----------------------------------------------------------------------

register_scenario(ScenarioSpec(
    name="diurnal_day",
    family="diurnal",
    description=("Two day/night cycles of sinusoidal arrivals; offered "
                 "load swings from ~0.2x to ~2x capacity at the crest"),
    horizon=480.0,
    tenants=(
        TenantProfile(
            name="portal",
            arrivals=DiurnalRate(base_rate=0.18, amplitude=0.8,
                                 period=240.0, phase=-60.0),
            durations=ExponentialDuration(mean_duration=40.0)),
    ),
))

register_scenario(ScenarioSpec(
    name="flash_crowd_release",
    family="flash_crowd",
    description=("Quiet baseline with two burst windows (6x and 8x) — "
                 "a dataset release followed by a bigger rush"),
    horizon=300.0,
    tenants=(
        TenantProfile(
            name="press",
            arrivals=FlashCrowdRate(
                base_rate=0.1,
                bursts=((60.0, 90.0, 6.0), (180.0, 210.0, 8.0))),
            durations=ExponentialDuration(mean_duration=30.0)),
    ),
))

register_scenario(ScenarioSpec(
    name="heavy_tailed_sessions",
    family="heavy_tailed",
    description=("Lognormal interactive sessions next to capped-Pareto "
                 "simulation runs: a few sessions pin capacity for a "
                 "large multiple of the median"),
    horizon=400.0,
    tenants=(
        TenantProfile(
            name="interactive",
            arrivals=ConstantRate(rate=0.25),
            durations=LognormalDuration(median=8.0, sigma=1.2)),
        TenantProfile(
            name="simulation",
            arrivals=ConstantRate(rate=0.08),
            durations=ParetoDuration(shape=1.6, scale=10.0, cap=300.0),
            class_mix=(0.5, 0.3, 0.2)),
    ),
))

register_scenario(ScenarioSpec(
    name="multi_tenant_mix",
    family="multi_tenant",
    description=("Three tenants with distinct SLA shapes: a "
                 "guaranteed-heavy enterprise, a degradation-tolerant "
                 "lab, and a best-effort batch farm"),
    horizon=400.0,
    tenants=(
        TenantProfile(
            name="enterprise",
            arrivals=ConstantRate(rate=0.06),
            durations=ExponentialDuration(mean_duration=60.0),
            class_mix=(0.8, 0.2, 0.0),
            guaranteed_cpu=(3, 8),
            degradable_fraction=0.3,
            terminable_fraction=0.05,
            promotion_fraction=0.2),
        TenantProfile(
            name="lab",
            arrivals=ConstantRate(rate=0.12),
            durations=ExponentialDuration(mean_duration=35.0),
            class_mix=(0.1, 0.8, 0.1),
            controlled_stretch=3.0,
            degradable_fraction=0.95,
            terminable_fraction=0.4,
            promotion_fraction=0.6),
        TenantProfile(
            name="batch",
            arrivals=ConstantRate(rate=0.1),
            durations=ExponentialDuration(mean_duration=50.0),
            class_mix=(0.0, 0.1, 0.9),
            best_effort_cpu=(1, 4),
            degradable_fraction=1.0,
            terminable_fraction=0.8),
    ),
))

register_scenario(ScenarioSpec(
    name="rack_failure_cascade",
    family="correlated_failure",
    description=("Steady mixed load hit by two overlapping rack "
                 "outages (6 + 4 nodes); the 10-node peak exceeds the "
                 "paper's Ca=6 reserve, so adaptation must degrade "
                 "opted-in sessions"),
    horizon=360.0,
    tenants=(
        TenantProfile(
            name="steady",
            arrivals=ConstantRate(rate=0.12),
            durations=ExponentialDuration(mean_duration=50.0),
            class_mix=(0.5, 0.35, 0.15),
            degradable_fraction=0.8),
    ),
    failures=(
        FailureTrack.episode("rack_a", start=120.0, duration=60.0,
                             nodes=6),
        FailureTrack.episode("rack_b", start=150.0, duration=45.0,
                             nodes=4),
    ),
))

register_scenario(ScenarioSpec(
    name="best_effort_flood",
    family="best_effort_flood",
    description=("A long-running best-effort flood (~3.7x capacity in "
                 "offered load) under a small guaranteed population — "
                 "the floor Cb protects the flood's minimum share, the "
                 "flood must never touch a guarantee"),
    horizon=300.0,
    tenants=(
        TenantProfile(
            name="science",
            arrivals=ConstantRate(rate=0.05),
            durations=ExponentialDuration(mean_duration=60.0),
            class_mix=(0.7, 0.3, 0.0),
            guaranteed_cpu=(3, 8)),
        TenantProfile(
            name="flood",
            arrivals=ConstantRate(rate=0.6),
            durations=ExponentialDuration(mean_duration=80.0),
            class_mix=(0.0, 0.0, 1.0),
            best_effort_cpu=(1, 3)),
    ),
))
