"""Declarative scenario specs: tenants + arrivals + failures → workload.

A :class:`ScenarioSpec` is the atlas's unit of description: a named,
validated, declarative bundle of tenant traffic profiles and injected
failure tracks that *compiles* — via one seeded
:class:`~repro.sim.random.RandomSource` — into a concrete
:class:`~repro.workloads.sessions.Workload` plus a failure-event
timeline. Tenant profiles follow Patel & Bhavsar's framing (PAPERS.md):
the unit of evaluation is a user class with its own SLA shape — class
mix, demand ranges, adaptation options — not a single homogeneous
stream.

Compilation is deterministic and decorrelated per tenant: tenant
``t``'s draws come from the ``tenant:<name>`` substream, so adding a
tenant (or a failure track) never perturbs another tenant's sessions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..errors import ValidationError
from ..qos.classes import ServiceClass
from ..sim.random import RandomSource
from .sessions import SessionSpec, Workload

__all__ = [
    "FAMILIES",
    "CompiledScenario",
    "FailureTrack",
    "ScenarioSpec",
    "TenantProfile",
]

#: The scenario families the atlas recognises. A family names a
#: traffic/failure *shape*; every registered scenario belongs to one.
FAMILIES = (
    "diurnal",
    "flash_crowd",
    "heavy_tailed",
    "multi_tenant",
    "correlated_failure",
    "best_effort_flood",
)

_CLASSES = (ServiceClass.GUARANTEED, ServiceClass.CONTROLLED_LOAD,
            ServiceClass.BEST_EFFORT)


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic profile and SLA shape.

    Attributes:
        name: Tenant name; prefixes every session user id.
        arrivals: Arrival process (any object with ``peak_rate``,
            ``rate_at`` and ``scaled`` — see
            :mod:`repro.workloads.arrivals`).
        durations: Duration model (``sample``/``mean``/``scaled`` —
            see :mod:`repro.workloads.durations`).
        class_mix: ``(guaranteed, controlled_load, best_effort)``
            weights for this tenant.
        guaranteed_cpu / controlled_cpu_floor / best_effort_cpu:
            ``(low, high)`` uniform integer demand ranges.
        controlled_stretch: Best-to-floor CPU ratio for
            controlled-load sessions.
        memory_mb: ``(low, high)`` uniform memory demand range.
        degradable_fraction / terminable_fraction /
        promotion_fraction: Adaptation-option probabilities — the
            tenant's SLA shape.
    """

    name: str
    arrivals: object
    durations: object
    class_mix: "Tuple[float, float, float]" = (0.3, 0.4, 0.3)
    guaranteed_cpu: "Tuple[int, int]" = (2, 8)
    controlled_cpu_floor: "Tuple[int, int]" = (1, 4)
    controlled_stretch: float = 2.0
    best_effort_cpu: "Tuple[int, int]" = (1, 6)
    memory_mb: "Tuple[int, int]" = (64, 512)
    degradable_fraction: float = 0.7
    terminable_fraction: float = 0.2
    promotion_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not self.name or "-" in self.name:
            raise ValidationError(
                f"tenant name must be non-empty and dash-free (dashes "
                f"separate the session counter): {self.name!r}")
        if len(self.class_mix) != 3 or min(self.class_mix) < 0 \
                or sum(self.class_mix) <= 0:
            raise ValidationError(f"bad class_mix: {self.class_mix}")
        for attribute in ("guaranteed_cpu", "controlled_cpu_floor",
                          "best_effort_cpu", "memory_mb"):
            low, high = getattr(self, attribute)
            if not 0 < low <= high:
                raise ValidationError(
                    f"bad {attribute} range: ({low}, {high})")
        if self.controlled_stretch < 1.0:
            raise ValidationError(
                f"controlled_stretch must be >= 1: "
                f"{self.controlled_stretch}")
        for attribute in ("degradable_fraction", "terminable_fraction",
                          "promotion_fraction"):
            value = getattr(self, attribute)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(
                    f"{attribute} out of [0, 1]: {value}")

    def mean_cpu(self) -> float:
        """Class-mix-weighted mean CPU demand (offered-load scaling)."""
        weights = self.class_mix
        total = sum(weights)
        mean_g = sum(self.guaranteed_cpu) / 2.0
        floor_cl = sum(self.controlled_cpu_floor) / 2.0
        mean_cl = (floor_cl + floor_cl * self.controlled_stretch) / 2.0
        mean_be = sum(self.best_effort_cpu) / 2.0
        return (weights[0] * mean_g + weights[1] * mean_cl
                + weights[2] * mean_be) / total

    def scaled(self, *, time_factor: float = 1.0,
               rate_factor: float = 1.0) -> "TenantProfile":
        """A copy with time compressed and arrival rate rescaled."""
        return replace(
            self,
            arrivals=self.arrivals.scaled(time_factor=time_factor,
                                          rate_factor=rate_factor),
            durations=self.durations.scaled(time_factor=time_factor))


@dataclass(frozen=True)
class FailureTrack:
    """A domain-scoped (rack/switch) capacity-failure event track.

    Attributes:
        domain: The failure domain the events hit ("rack-a"); purely
            descriptive here — replay maps it to node counts on the
            testbed machine — but it keeps correlated episodes
            attributable in reports.
        events: ``(time, node_delta)`` pairs, sorted by time; negative
            deltas fail nodes, positive deltas repair them.
    """

    domain: str
    events: "Tuple[Tuple[float, int], ...]"

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValidationError("failure domain must be non-empty")
        if not self.events:
            raise ValidationError(
                f"failure track {self.domain!r} has no events")
        times = [time for time, _delta in self.events]
        if times != sorted(times):
            raise ValidationError(
                f"failure track {self.domain!r} events out of order")
        down = 0
        for time, delta in self.events:
            if time < 0 or delta == 0:
                raise ValidationError(
                    f"bad failure event ({time}, {delta}) in "
                    f"{self.domain!r}")
            down -= delta
            if down < 0:
                raise ValidationError(
                    f"failure track {self.domain!r} repairs more nodes "
                    f"than it failed by t={time}")

    @classmethod
    def episode(cls, domain: str, *, start: float, duration: float,
                nodes: int) -> "FailureTrack":
        """One correlated outage: ``nodes`` down over
        ``[start, start + duration)``."""
        if duration <= 0 or nodes <= 0:
            raise ValidationError(
                f"episode needs positive duration and nodes: "
                f"({duration}, {nodes})")
        return cls(domain=domain,
                   events=((start, -nodes), (start + duration, nodes)))

    def peak_nodes_down(self) -> int:
        """Largest simultaneous node loss on this track."""
        down = 0
        worst = 0
        for _time, delta in self.events:
            down -= delta
            if down > worst:
                worst = down
        return worst

    def scaled(self, *, time_factor: float = 1.0) -> "FailureTrack":
        """A copy with event times compressed by ``time_factor``."""
        if time_factor <= 0:
            raise ValidationError(
                f"time_factor must be positive: {time_factor}")
        return replace(self, events=tuple(
            (time * time_factor, delta) for time, delta in self.events))


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative atlas scenario.

    Attributes:
        name: Unique registry key.
        family: One of :data:`FAMILIES`.
        description: One-line intent, surfaced in reports and docs.
        horizon: Observation window length.
        tenants: At least one tenant profile.
        failures: Domain-scoped failure tracks (empty = no injected
            failures, so the zero-violation invariant applies).
        partition: ``(Cg, Ca, Cb, best_effort_min)`` testbed split;
            defaults to the paper's 15/6/5 with a floor of 2.
    """

    name: str
    family: str
    description: str
    horizon: float
    tenants: "Tuple[TenantProfile, ...]"
    failures: "Tuple[FailureTrack, ...]" = ()
    partition: "Tuple[int, int, int, int]" = (15, 6, 5, 2)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario name must be non-empty")
        if self.family not in FAMILIES:
            raise ValidationError(
                f"unknown family {self.family!r}; expected one of "
                f"{', '.join(FAMILIES)}")
        if self.horizon <= 0:
            raise ValidationError(
                f"horizon must be positive: {self.horizon}")
        if not self.tenants:
            raise ValidationError(
                f"scenario {self.name!r} needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        if len(set(names)) != len(names):
            raise ValidationError(
                f"duplicate tenant names in {self.name!r}: {names}")
        guaranteed, adaptive, best_effort, minimum = self.partition
        if min(guaranteed, adaptive, best_effort) < 0 \
                or guaranteed + adaptive + best_effort <= 0:
            raise ValidationError(
                f"bad partition for {self.name!r}: {self.partition}")
        if not 0 <= minimum <= best_effort:
            raise ValidationError(
                f"best_effort_min {minimum} outside [0, {best_effort}]")
        for track in self.failures:
            last_time = track.events[-1][0]
            if last_time > self.horizon:
                raise ValidationError(
                    f"failure track {track.domain!r} runs past the "
                    f"horizon ({last_time} > {self.horizon})")

    @property
    def total_capacity(self) -> float:
        """Grid capacity ``Cg + Ca + Cb`` the scenario assumes."""
        return float(self.partition[0] + self.partition[1]
                     + self.partition[2])

    @property
    def has_failures(self) -> bool:
        """Whether any failure track injects capacity loss."""
        return bool(self.failures)

    def peak_nodes_down(self) -> int:
        """Largest simultaneous loss across all tracks combined."""
        down = 0
        worst = 0
        for time, delta in self.failure_events():
            down -= delta
            if down > worst:
                worst = down
        return worst

    def failure_events(self) -> "Tuple[Tuple[float, int], ...]":
        """All tracks merged, sorted; failures before repairs at the
        same instant (the conservative interleaving)."""
        merged: List[Tuple[float, int, str]] = []
        for track in self.failures:
            for time, delta in track.events:
                merged.append((time, delta, track.domain))
        merged.sort(key=lambda item: (item[0], 0 if item[1] < 0 else 1,
                                      item[2]))
        return tuple((time, delta) for time, delta, _domain in merged)

    def compile(self, rng: "RandomSource | int") -> "CompiledScenario":
        """Realise the scenario into sessions + failure timeline.

        Args:
            rng: A seeded source, or a bare seed.
        """
        if isinstance(rng, int):
            rng = RandomSource(rng)
        drawn: List[Tuple[float, int, SessionSpec]] = []
        for tenant_index, tenant in enumerate(self.tenants):
            tenant_rng = rng.stream(f"tenant:{tenant.name}")
            for session in _tenant_sessions(tenant, self.horizon,
                                            tenant_rng):
                drawn.append((session.arrival, tenant_index, session))
        drawn.sort(key=lambda item: (item[0], item[1],
                                     item[2].session_id))
        sessions = tuple(
            replace(session, session_id=index + 1)
            for index, (_arrival, _tenant, session) in enumerate(drawn))
        workload = Workload(sessions=sessions, horizon=self.horizon)
        return CompiledScenario(spec=self, workload=workload,
                                failure_events=self.failure_events(),
                                seed=rng.seed)

    def scaled(self, *, time_factor: float = 1.0,
               load_factor: Optional[float] = None) -> "ScenarioSpec":
        """A compressed copy for regression/smoke profiles.

        ``time_factor`` shrinks the horizon and every time structure
        (cycle periods, burst windows, durations, failure times).
        ``load_factor`` rescales arrival rates; it defaults to
        ``1 / time_factor``, which preserves the offered load exactly
        (session count is then also preserved — pass something smaller
        to actually cut session counts).
        """
        if load_factor is None:
            if time_factor <= 0:
                raise ValidationError(
                    f"time_factor must be positive: {time_factor}")
            load_factor = 1.0 / time_factor
        return replace(
            self,
            horizon=self.horizon * time_factor,
            tenants=tuple(tenant.scaled(time_factor=time_factor,
                                        rate_factor=load_factor)
                          for tenant in self.tenants),
            failures=tuple(track.scaled(time_factor=time_factor)
                           for track in self.failures))


@dataclass(frozen=True)
class CompiledScenario:
    """One seeded realisation of a :class:`ScenarioSpec`."""

    spec: ScenarioSpec
    workload: Workload
    failure_events: "Tuple[Tuple[float, int], ...]" = ()
    seed: int = 0

    def offered_load(self) -> float:
        """Offered CPU load against the scenario's own capacity."""
        return self.workload.offered_cpu_load(self.spec.total_capacity)


def _tenant_sessions(tenant: TenantProfile, horizon: float,
                     rng: RandomSource) -> List[SessionSpec]:
    """Draw one tenant's sessions (ids are per-tenant; the scenario
    renumbers after interleaving)."""
    from .arrivals import sample_arrivals

    arrival_rng = rng.stream("arrivals")
    class_rng = rng.stream("classes")
    duration_rng = rng.stream("durations")
    demand_rng = rng.stream("demands")
    option_rng = rng.stream("options")
    sessions: List[SessionSpec] = []
    for index, arrival in enumerate(
            sample_arrivals(tenant.arrivals, horizon, arrival_rng)):
        service_class = class_rng.weighted_choice(_CLASSES,
                                                  tenant.class_mix)
        duration = tenant.durations.sample(duration_rng)
        if service_class is ServiceClass.GUARANTEED:
            cpu = float(demand_rng.randint(*tenant.guaranteed_cpu))
            floor = best = cpu
        elif service_class is ServiceClass.CONTROLLED_LOAD:
            floor = float(demand_rng.randint(*tenant.controlled_cpu_floor))
            best = max(floor, round(floor * tenant.controlled_stretch))
        else:
            cpu = float(demand_rng.randint(*tenant.best_effort_cpu))
            floor = best = cpu
        sessions.append(SessionSpec(
            session_id=index + 1,
            user=f"{tenant.name}-{index + 1}",
            service_class=service_class,
            arrival=arrival,
            duration=duration,
            cpu_floor=floor,
            cpu_best=best,
            memory_mb=float(demand_rng.randint(*tenant.memory_mb)),
            accept_degradation=(
                service_class is ServiceClass.CONTROLLED_LOAD
                and option_rng.probability(tenant.degradable_fraction)),
            accept_termination=(
                service_class is not ServiceClass.BEST_EFFORT
                and option_rng.probability(tenant.terminable_fraction)),
            accept_promotion=(
                service_class is ServiceClass.CONTROLLED_LOAD
                and option_rng.probability(tenant.promotion_fraction)),
        ))
    return sessions
