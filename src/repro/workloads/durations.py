"""Session-duration models for the workload atlas.

The seed generator drew exponential durations only. Real grid sessions
are heavy-tailed — most are short, a few run for a large multiple of
the median — which stresses Algorithm 1 differently: a long-lived
guaranteed session pins its capacity across many failure episodes.
The atlas therefore offers exponential, lognormal and (optionally
capped) Pareto duration models behind one ``sample(rng)`` interface.

Every model floors its samples at ``MIN_DURATION`` (matching the seed
generator) and reports an analytic ``mean()`` so offered-load scaling
stays closed-form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ValidationError
from ..sim.random import RandomSource

__all__ = [
    "MIN_DURATION",
    "ExponentialDuration",
    "LognormalDuration",
    "ParetoDuration",
]

#: Shortest session the generators emit (the seed generator's floor).
MIN_DURATION = 1.0


@dataclass(frozen=True)
class ExponentialDuration:
    """Memoryless durations: the seed generator's model.

    Attributes:
        mean_duration: Mean session length.
    """

    mean_duration: float

    def __post_init__(self) -> None:
        if self.mean_duration <= 0:
            raise ValidationError(
                f"mean_duration must be positive: {self.mean_duration}")

    def mean(self) -> float:
        """Analytic mean (ignoring the floor, like the seed model)."""
        return self.mean_duration

    def sample(self, rng: RandomSource) -> float:
        """One session duration."""
        return max(MIN_DURATION, rng.exponential(self.mean_duration))

    def scaled(self, *, time_factor: float = 1.0) -> "ExponentialDuration":
        """A copy with durations compressed by ``time_factor``."""
        _check_time_factor(time_factor)
        return replace(self,
                       mean_duration=self.mean_duration * time_factor)


@dataclass(frozen=True)
class LognormalDuration:
    """Lognormal durations: moderate heavy tail, finite variance.

    ``duration = median * exp(sigma * N(0, 1))``.

    Attributes:
        median: The distribution median (``exp(mu)``).
        sigma: Log-space standard deviation; larger means heavier tail.
    """

    median: float
    sigma: float

    def __post_init__(self) -> None:
        if self.median <= 0:
            raise ValidationError(f"median must be positive: {self.median}")
        if self.sigma <= 0:
            raise ValidationError(f"sigma must be positive: {self.sigma}")

    def mean(self) -> float:
        """Analytic mean ``median * exp(sigma² / 2)``."""
        return self.median * math.exp(self.sigma * self.sigma / 2.0)

    def sample(self, rng: RandomSource) -> float:
        """One session duration."""
        draw = self.median * math.exp(rng.normal(0.0, self.sigma))
        return max(MIN_DURATION, draw)

    def scaled(self, *, time_factor: float = 1.0) -> "LognormalDuration":
        """A copy with durations compressed by ``time_factor``."""
        _check_time_factor(time_factor)
        return replace(self, median=self.median * time_factor)


@dataclass(frozen=True)
class ParetoDuration:
    """Pareto durations: the classic heavy tail.

    Attributes:
        shape: Tail index; must exceed 1 so the mean is finite.
        scale: Minimum of the (uncapped) distribution.
        cap: Optional hard upper bound — keeps a single draw from
            outliving the scenario horizon many times over.
    """

    shape: float
    scale: float
    cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.shape <= 1.0:
            raise ValidationError(
                f"shape must exceed 1 for a finite mean: {self.shape}")
        if self.scale <= 0:
            raise ValidationError(f"scale must be positive: {self.scale}")
        if self.cap is not None and self.cap <= self.scale:
            raise ValidationError(
                f"cap {self.cap} must exceed scale {self.scale}")

    def mean(self) -> float:
        """Analytic uncapped mean ``shape * scale / (shape - 1)``."""
        return self.shape * self.scale / (self.shape - 1.0)

    def sample(self, rng: RandomSource) -> float:
        """One session duration."""
        draw = rng.pareto(self.shape, self.scale)
        if self.cap is not None and draw > self.cap:
            draw = self.cap
        return max(MIN_DURATION, draw)

    def scaled(self, *, time_factor: float = 1.0) -> "ParetoDuration":
        """A copy with durations compressed by ``time_factor``."""
        _check_time_factor(time_factor)
        return replace(self, scale=self.scale * time_factor,
                       cap=None if self.cap is None
                       else self.cap * time_factor)


def _check_time_factor(time_factor: float) -> None:
    if time_factor <= 0:
        raise ValidationError(
            f"time_factor must be positive: {time_factor}")
