"""Arrival processes for the workload atlas.

The seed workload drew homogeneous Poisson arrivals. The atlas needs
time-varying offered load — diurnal sinusoids and flash-crowd bursts —
so arrivals generalise to a *rate function* ``rate_at(t)`` sampled by
Lewis–Shedler thinning: candidate arrivals are drawn homogeneously at
the peak rate and each candidate at time ``t`` is kept with
probability ``rate_at(t) / peak_rate``. The construction guarantees
the realised process never exceeds the peak-rate envelope, and every
draw flows through the seeded :class:`~repro.sim.random.RandomSource`,
so a scenario is a pure function of its seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Tuple

from ..errors import ValidationError
from ..sim.random import RandomSource

__all__ = [
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "sample_arrivals",
]


@dataclass(frozen=True)
class ConstantRate:
    """Homogeneous Poisson arrivals: the seed generator's process.

    Attributes:
        rate: Mean arrivals per time unit.
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValidationError(f"rate must be positive: {self.rate}")

    @property
    def peak_rate(self) -> float:
        """The thinning envelope (here the rate itself)."""
        return self.rate

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time``."""
        return self.rate

    def scaled(self, *, time_factor: float = 1.0,
               rate_factor: float = 1.0) -> "ConstantRate":
        """A copy with time compressed and/or the rate rescaled."""
        _check_factors(time_factor, rate_factor)
        return replace(self, rate=self.rate * rate_factor)


@dataclass(frozen=True)
class DiurnalRate:
    """Sinusoidal day/night traffic (non-homogeneous Poisson).

    ``rate_at(t) = base_rate * (1 + amplitude * sin(2π (t + phase) /
    period))``: one full cycle per ``period``, peaking at ``base_rate *
    (1 + amplitude)``.

    Attributes:
        base_rate: Mean arrivals per time unit over a full cycle.
        amplitude: Relative swing in ``[0, 1)`` (1 would zero the
            trough and make the acceptance ratio degenerate).
        period: Cycle length ("one day").
        phase: Time offset of the cycle start.
    """

    base_rate: float
    amplitude: float
    period: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValidationError(
                f"base_rate must be positive: {self.base_rate}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValidationError(
                f"amplitude must be in [0, 1): {self.amplitude}")
        if self.period <= 0:
            raise ValidationError(f"period must be positive: {self.period}")

    @property
    def peak_rate(self) -> float:
        """The crest of the sinusoid (the thinning envelope)."""
        return self.base_rate * (1.0 + self.amplitude)

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time``."""
        angle = 2.0 * math.pi * (time + self.phase) / self.period
        return self.base_rate * (1.0 + self.amplitude * math.sin(angle))

    def scaled(self, *, time_factor: float = 1.0,
               rate_factor: float = 1.0) -> "DiurnalRate":
        """A copy with the cycle compressed and/or the rate rescaled."""
        _check_factors(time_factor, rate_factor)
        return replace(self, base_rate=self.base_rate * rate_factor,
                       period=self.period * time_factor,
                       phase=self.phase * time_factor)


@dataclass(frozen=True)
class FlashCrowdRate:
    """Baseline traffic with multiplicative burst windows.

    Attributes:
        base_rate: Arrivals per time unit outside every burst.
        bursts: ``(start, end, multiplier)`` windows; inside a window
            the rate is ``base_rate * multiplier``. Overlapping windows
            take the largest multiplier (crowds compound into the
            biggest spike, they do not stack additively).
    """

    base_rate: float
    bursts: "Tuple[Tuple[float, float, float], ...]"

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ValidationError(
                f"base_rate must be positive: {self.base_rate}")
        if not self.bursts:
            raise ValidationError("a flash crowd needs at least one burst")
        for start, end, multiplier in self.bursts:
            if end <= start:
                raise ValidationError(
                    f"empty burst window: ({start}, {end})")
            if multiplier < 1.0:
                raise ValidationError(
                    f"burst multiplier must be >= 1: {multiplier}")

    @property
    def peak_rate(self) -> float:
        """Baseline scaled by the largest burst multiplier."""
        return self.base_rate * max(item[2] for item in self.bursts)

    def rate_at(self, time: float) -> float:
        """Instantaneous arrival rate at ``time``."""
        multiplier = 1.0
        for start, end, burst_multiplier in self.bursts:
            if start <= time < end and burst_multiplier > multiplier:
                multiplier = burst_multiplier
        return self.base_rate * multiplier

    def scaled(self, *, time_factor: float = 1.0,
               rate_factor: float = 1.0) -> "FlashCrowdRate":
        """A copy with burst windows compressed and rate rescaled."""
        _check_factors(time_factor, rate_factor)
        return replace(
            self, base_rate=self.base_rate * rate_factor,
            bursts=tuple((start * time_factor, end * time_factor,
                          multiplier)
                         for start, end, multiplier in self.bursts))


def sample_arrivals(process, horizon: float,
                    rng: RandomSource) -> List[float]:
    """Draw one arrival-time realisation of ``process`` over
    ``[0, horizon)`` by thinning.

    Candidates are homogeneous at ``process.peak_rate``; a candidate at
    ``t`` survives with probability ``rate_at(t) / peak_rate``. Exactly
    two RNG draws happen per candidate (one gap, one acceptance), so
    the realisation is byte-stable under refactors that do not change
    the draw count.
    """
    if horizon <= 0:
        raise ValidationError(f"horizon must be positive: {horizon}")
    peak = process.peak_rate
    arrivals: List[float] = []
    time = 0.0
    while True:
        time += rng.exponential(1.0 / peak)
        if time >= horizon:
            return arrivals
        acceptance = process.rate_at(time) / peak
        if rng.probability(min(1.0, max(0.0, acceptance))):
            arrivals.append(time)


def _check_factors(time_factor: float, rate_factor: float) -> None:
    if time_factor <= 0 or rate_factor <= 0:
        raise ValidationError(
            f"scaling factors must be positive: "
            f"time={time_factor}, rate={rate_factor}")
