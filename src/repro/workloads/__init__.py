"""Synthetic workloads for the deferred quantitative evaluation.

The paper evaluates qualitatively and "as a future topic ... planned to
evaluate this adaptation technique"; the reproduction performs that
evaluation with synthetic session workloads, grown here into a
**workload atlas** of named scenario families:

* :mod:`repro.workloads.sessions` — session descriptions.
* :mod:`repro.workloads.generators` — the seed Poisson generator with
  a configurable class mix and load scaling.
* :mod:`repro.workloads.arrivals` — time-varying arrival processes
  (diurnal sinusoids, flash-crowd bursts) sampled by thinning.
* :mod:`repro.workloads.durations` — exponential, lognormal and
  capped-Pareto session-duration models.
* :mod:`repro.workloads.scenarios` — declarative
  :class:`~repro.workloads.scenarios.ScenarioSpec` (tenant profiles +
  failure tracks) compiling to a workload plus an event timeline.
* :mod:`repro.workloads.atlas` — the registry of scenario families
  and the six built-in scenarios.
* :mod:`repro.workloads.replay` — the full-testbed replay harness
  (batched admission, telemetry collection, invariant audits).
"""

from .arrivals import ConstantRate, DiurnalRate, FlashCrowdRate, \
    sample_arrivals
from .atlas import (DEFAULT_SEED, families_covered, get_scenario,
                    register_scenario, scenario_names, scenarios,
                    scenarios_by_family)
from .durations import (ExponentialDuration, LognormalDuration,
                        ParetoDuration)
from .generators import WorkloadConfig, arrival_rate_for_load, \
    generate_workload
from .replay import ReplayResult, check_invariants, replay_scenario
from .scenarios import (FAMILIES, CompiledScenario, FailureTrack,
                        ScenarioSpec, TenantProfile)
from .sessions import SessionSpec, Workload

__all__ = [
    "CompiledScenario",
    "ConstantRate",
    "DEFAULT_SEED",
    "DiurnalRate",
    "ExponentialDuration",
    "FAMILIES",
    "FailureTrack",
    "FlashCrowdRate",
    "LognormalDuration",
    "ParetoDuration",
    "ReplayResult",
    "ScenarioSpec",
    "SessionSpec",
    "TenantProfile",
    "Workload",
    "WorkloadConfig",
    "arrival_rate_for_load",
    "check_invariants",
    "families_covered",
    "generate_workload",
    "get_scenario",
    "register_scenario",
    "replay_scenario",
    "sample_arrivals",
    "scenario_names",
    "scenarios",
    "scenarios_by_family",
]
