"""Synthetic workloads for the deferred quantitative evaluation.

The paper evaluates qualitatively and "as a future topic ... planned to
evaluate this adaptation technique"; the reproduction performs that
evaluation with synthetic session workloads:

* :mod:`repro.workloads.sessions` — session descriptions.
* :mod:`repro.workloads.generators` — Poisson arrival processes with a
  configurable class mix, demand distributions and load scaling.
"""

from .generators import WorkloadConfig, arrival_rate_for_load, generate_workload
from .sessions import SessionSpec, Workload

__all__ = [
    "SessionSpec",
    "Workload",
    "WorkloadConfig",
    "arrival_rate_for_load",
    "generate_workload",
]
