"""Session descriptions for synthetic workloads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..qos.classes import ServiceClass
from ..errors import ValidationError


@dataclass(frozen=True)
class SessionSpec:
    """One synthetic session.

    Attributes:
        session_id: Unique id within the workload.
        user: Client name.
        service_class: QoS class of the request.
        arrival: Arrival time.
        duration: Requested session length.
        cpu_floor: Minimum acceptable CPU nodes (the commitment for
            guaranteed/controlled-load sessions).
        cpu_best: Desired best-quality CPU nodes (``== cpu_floor`` for
            guaranteed sessions).
        memory_mb: Memory demand (broker-level runs).
        bandwidth_mbps: Bandwidth demand (0 = no network leg).
        accept_degradation / accept_termination / accept_promotion:
            The adaptation options the client grants.
    """

    session_id: int
    user: str
    service_class: ServiceClass
    arrival: float
    duration: float
    cpu_floor: float
    cpu_best: float
    memory_mb: float = 0.0
    bandwidth_mbps: float = 0.0
    accept_degradation: bool = False
    accept_termination: bool = False
    accept_promotion: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"duration must be positive: {self.duration}")
        if self.cpu_floor > self.cpu_best:
            raise ValidationError(
                f"cpu_floor {self.cpu_floor} exceeds cpu_best "
                f"{self.cpu_best}")

    @property
    def end(self) -> float:
        """Departure time."""
        return self.arrival + self.duration

    @property
    def mean_cpu(self) -> float:
        """Midpoint demand, used for offered-load computations."""
        return (self.cpu_floor + self.cpu_best) / 2.0


@dataclass(frozen=True)
class Workload:
    """A full synthetic workload.

    Attributes:
        sessions: Sessions ordered by arrival time.
        horizon: Observation window length.
    """

    sessions: "Tuple[SessionSpec, ...]"
    horizon: float

    def __len__(self) -> int:
        return len(self.sessions)

    def by_class(self, service_class: ServiceClass) -> List[SessionSpec]:
        """Sessions of one class."""
        return [s for s in self.sessions if s.service_class is service_class]

    def offered_cpu_load(self, capacity: float) -> float:
        """Offered load ``ρ``: mean CPU-demand-time per unit capacity."""
        if capacity <= 0 or self.horizon <= 0:
            return 0.0
        work = sum(s.mean_cpu * min(s.duration, self.horizon - s.arrival)
                   for s in self.sessions if s.arrival < self.horizon)
        return work / (capacity * self.horizon)
