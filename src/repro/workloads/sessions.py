"""Session descriptions for synthetic workloads."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..qos.classes import ServiceClass
from ..errors import ValidationError


@dataclass(frozen=True)
class SessionSpec:
    """One synthetic session.

    Attributes:
        session_id: Unique id within the workload.
        user: Client name.
        service_class: QoS class of the request.
        arrival: Arrival time.
        duration: Requested session length.
        cpu_floor: Minimum acceptable CPU nodes (the commitment for
            guaranteed/controlled-load sessions).
        cpu_best: Desired best-quality CPU nodes (``== cpu_floor`` for
            guaranteed sessions).
        memory_mb: Memory demand (broker-level runs).
        bandwidth_mbps: Bandwidth demand (0 = no network leg).
        accept_degradation / accept_termination / accept_promotion:
            The adaptation options the client grants.
    """

    session_id: int
    user: str
    service_class: ServiceClass
    arrival: float
    duration: float
    cpu_floor: float
    cpu_best: float
    memory_mb: float = 0.0
    bandwidth_mbps: float = 0.0
    accept_degradation: bool = False
    accept_termination: bool = False
    accept_promotion: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValidationError(f"duration must be positive: {self.duration}")
        if self.cpu_floor > self.cpu_best:
            raise ValidationError(
                f"cpu_floor {self.cpu_floor} exceeds cpu_best "
                f"{self.cpu_best}")

    @property
    def end(self) -> float:
        """Departure time."""
        return self.arrival + self.duration

    @property
    def mean_cpu(self) -> float:
        """Midpoint demand, used for offered-load computations."""
        return (self.cpu_floor + self.cpu_best) / 2.0


@dataclass(frozen=True)
class Workload:
    """A full synthetic workload.

    Attributes:
        sessions: Sessions ordered by arrival time.
        horizon: Observation window length.
    """

    sessions: "Tuple[SessionSpec, ...]"
    horizon: float

    def __post_init__(self) -> None:
        # Per-class index, precomputed once so by_class() is a lookup
        # rather than a rescan of the whole session list per call.
        # object.__setattr__ because the dataclass is frozen; the index
        # is not a field, so equality/repr still compare sessions only.
        index: "Dict[ServiceClass, List[SessionSpec]]" = {}
        for session in self.sessions:
            index.setdefault(session.service_class, []).append(session)
        object.__setattr__(self, "_by_class",
                           {cls: tuple(group)
                            for cls, group in index.items()})

    def __len__(self) -> int:
        return len(self.sessions)

    def by_class(self, service_class: ServiceClass) -> List[SessionSpec]:
        """Sessions of one class (precomputed index; O(matches))."""
        return list(self._by_class.get(service_class, ()))

    def fingerprint(self) -> str:
        """A canonical sha256 of the whole workload.

        Every field of every session enters the digest through
        ``repr`` (shortest-roundtrip float formatting, stable across
        processes and platforms for IEEE doubles), so two workloads
        share a fingerprint exactly when they are byte-identical —
        the cross-process determinism tests compare these.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.horizon).encode("ascii"))
        for session in self.sessions:
            row = (session.session_id, session.user,
                   session.service_class.value, session.arrival,
                   session.duration, session.cpu_floor, session.cpu_best,
                   session.memory_mb, session.bandwidth_mbps,
                   session.accept_degradation, session.accept_termination,
                   session.accept_promotion)
            digest.update(repr(row).encode("ascii"))
        return digest.hexdigest()

    def offered_cpu_load(self, capacity: float) -> float:
        """Offered load ``ρ``: mean CPU-demand-time per unit capacity."""
        if capacity <= 0 or self.horizon <= 0:
            return 0.0
        work = sum(s.mean_cpu * min(s.duration, self.horizon - s.arrival)
                   for s in self.sessions if s.arrival < self.horizon)
        return work / (capacity * self.horizon)
