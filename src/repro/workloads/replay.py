"""Atlas replay: drive a compiled scenario through the full testbed.

The harness is the atlas's measurement instrument *and* its QoS safety
net. One :func:`replay_scenario` call:

* builds a testbed sized to the scenario's partition and compiles the
  scenario from one seed;
* admits sessions through the PR-6 **batched admission pipeline**
  (:meth:`~repro.core.broker.AQoSBroker.request_services`): arrivals
  are coalesced per ``batch_window`` epoch and admitted together at
  the epoch boundary (one deferred rebalance + one WAL group-commit
  per epoch);
* schedules every failure track with **domain-scoped repairs** — a
  rack's repair brings back exactly the nodes that rack lost, so
  overlapping tracks stay independent;
* collects the PR-4 time-weighted telemetry: Cg/Ca/Cb occupancy from
  the capacity gauges, SLA violations/restorations from the verifier
  counters, §5.3 revenue from the accounting ledger;
* audits the capacity invariants at every sample checkpoint and the
  slot table once at the end.

The result's :meth:`ReplayResult.report_json` is canonical (sorted
keys, shortest-roundtrip floats): two replays of the same scenario and
seed are byte-identical, which is exactly what the per-scenario
regression suite pins.

Under chaos (``chaos_seed``), admission falls back to the sequential
per-request path with per-session exception capture — a dropped or
errored control message may abandon one session, never a whole batch.
"""

from __future__ import annotations

import functools
import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.testbed import (Testbed, build_testbed, install_chaos,
                            install_observability)
from ..errors import GQoSMError, ValidationError
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter, range_parameter
from ..qos.specification import QoSSpecification
from ..sim.random import RandomSource
from ..sla.document import AdaptationOptions
from ..sla.negotiation import ServiceRequest
from .scenarios import CompiledScenario, ScenarioSpec
from .sessions import SessionSpec

__all__ = [
    "ReplayResult",
    "check_invariants",
    "replay_scenario",
]

_EPSILON = 1e-9

#: Occupancy gauge pools in partition order (Cg, Ca, Cb).
_POOLS = ("g", "a", "b")

#: Service class -> pool key, for per-class violation attribution.
_CLASS_POOL = {ServiceClass.GUARANTEED: "g",
               ServiceClass.CONTROLLED_LOAD: "a",
               ServiceClass.BEST_EFFORT: "b"}


@dataclass
class ReplayResult:
    """One scenario replay: the golden-metric report plus the live
    testbed (for invariant helpers that need direct state access)."""

    report: "Dict[str, object]"
    testbed: Testbed
    compiled: CompiledScenario

    def report_json(self) -> str:
        """Canonical JSON of the report (sorted keys — byte-stable
        per (scenario, seed))."""
        return json.dumps(self.report, sort_keys=True,
                          separators=(",", ":"))


@dataclass
class _Checkpoints:
    """Capacity-invariant audit counters filled at sample ticks."""

    checks: int = 0
    breaches: "List[str]" = field(default_factory=list)

    def audit(self, testbed: Testbed) -> None:
        partition = testbed.partition
        now = testbed.sim.now
        self.checks += 1
        effective = partition.effective_sizes()
        surviving = partition.total - partition.failed
        if abs(sum(effective) - surviving) > _EPSILON:
            self.breaches.append(
                f"t={now:g}: effective sizes sum {sum(effective):g} != "
                f"surviving capacity {surviving:g}")
        if partition.committed_total() > partition.cg + _EPSILON:
            self.breaches.append(
                f"t={now:g}: committed {partition.committed_total():g} "
                f"exceeds Cg {partition.cg:g}")
        if partition.total_served() > surviving + _EPSILON:
            self.breaches.append(
                f"t={now:g}: served {partition.total_served():g} exceeds "
                f"surviving capacity {surviving:g}")


def request_for_session(session: SessionSpec,
                        admit_at: float) -> ServiceRequest:
    """The broker request for one session, admitted at ``admit_at``.

    The batched pipeline admits whole epochs at their boundary, so the
    reservation window starts at the admission instant (not the raw
    arrival) and keeps the session's full duration.
    """
    parameters = []
    if session.service_class is ServiceClass.CONTROLLED_LOAD \
            and session.cpu_best > session.cpu_floor:
        parameters.append(range_parameter(Dimension.CPU,
                                          session.cpu_floor,
                                          session.cpu_best))
    else:
        parameters.append(exact_parameter(Dimension.CPU,
                                          session.cpu_best))
    if session.memory_mb > 0:
        parameters.append(exact_parameter(Dimension.MEMORY_MB,
                                          session.memory_mb))
    return ServiceRequest(
        client=session.user,
        service_name="simulation-service",
        service_class=session.service_class,
        specification=QoSSpecification.from_iterable(parameters),
        start=admit_at,
        end=admit_at + session.duration,
        adaptation=AdaptationOptions(
            accept_degradation=session.accept_degradation,
            accept_termination=session.accept_termination,
            accept_promotion=session.accept_promotion),
    )


def batch_schedule(compiled: CompiledScenario, batch_window: float
                   ) -> "List[Tuple[float, List[SessionSpec]]]":
    """Group sessions into admission epochs.

    Sessions arriving inside ``[k·w, (k+1)·w)`` are admitted together
    at ``min((k+1)·w, horizon)`` — after every member has arrived, so
    the quantisation is causal.
    """
    if batch_window <= 0:
        raise ValidationError(
            f"batch_window must be positive: {batch_window}")
    horizon = compiled.workload.horizon
    epochs: "Dict[int, List[SessionSpec]]" = {}
    for session in compiled.workload.sessions:
        epochs.setdefault(int(session.arrival // batch_window),
                          []).append(session)
    return [(min((epoch + 1) * batch_window, horizon), epochs[epoch])
            for epoch in sorted(epochs)]


def replay_scenario(spec: "ScenarioSpec | str", *, seed: int = 0,
                    batch_window: float = 5.0,
                    sample_interval: float = 5.0,
                    chaos_seed: Optional[int] = None,
                    drop: float = 0.1, delay: float = 0.1,
                    duplicate: float = 0.0, error: float = 0.0,
                    reorder: float = 0.0,
                    with_journal: bool = False) -> ReplayResult:
    """Replay one scenario end to end; returns the metric report.

    Args:
        spec: A :class:`ScenarioSpec` or a registered scenario name.
        seed: Drives both the workload compilation and the testbed.
        batch_window: Admission epoch length for the batched pipeline.
        sample_interval: Verifier polling and checkpoint cadence.
        chaos_seed: When set, arms PR-3 fault injection on the bus
            (with the remaining keyword rates) and switches admission
            to the sequential fault-tolerant path.
        with_journal: Install an in-memory PR-5 journal so decision
            records carry real LSN stamps (``repro obs`` passes this;
            off by default because journaling is not part of the
            pinned regression profile).
    """
    if isinstance(spec, str):
        from .atlas import get_scenario
        spec = get_scenario(spec)
    compiled = spec.compile(RandomSource(seed))
    guaranteed, adaptive, best_effort, minimum = spec.partition
    total = guaranteed + adaptive + best_effort
    testbed = build_testbed(
        total_cpu=total, guaranteed_cpu=guaranteed,
        adaptive_cpu=adaptive, best_effort_cpu=best_effort,
        best_effort_min=minimum,
        machine_nodes=max(64, 2 * total), seed=seed)
    if chaos_seed is not None:
        install_chaos(testbed, chaos_seed, drop=drop, delay=delay,
                      duplicate=duplicate, error=error, reorder=reorder)
    decisions, slo = install_observability(testbed)
    telemetry = testbed.telemetry
    if with_journal:
        from ..recovery.recover import install_journal
        install_journal(testbed)
    broker = testbed.broker
    sim = testbed.sim
    broker.verifier.start_polling(sample_interval)

    # Per-class violation attribution: the verifier's counter is an
    # aggregate, but the atlas invariants distinguish a guaranteed
    # session breaking (never acceptable without failures) from a
    # controlled-load shortfall (the adaptation's normal trigger).
    violating_ids: "set" = set()

    def on_notice(notice) -> None:
        if notice.report is not None and not notice.report.conformant:
            violating_ids.add(notice.sla_id)

    broker.hub.subscribe(on_notice)

    _schedule_failures(testbed, spec)

    abandoned = 0
    accepted: "Dict[ServiceClass, int]" = {cls: 0 for cls in
                                           (ServiceClass.GUARANTEED,
                                            ServiceClass.CONTROLLED_LOAD,
                                            ServiceClass.BEST_EFFORT)}
    requested: "Dict[ServiceClass, int]" = dict(accepted)

    def admit(batch: "List[SessionSpec]") -> None:
        nonlocal abandoned
        admit_at = sim.now
        requests = [request_for_session(session, admit_at)
                    for session in batch]
        if chaos_seed is None:
            outcomes = broker.request_services(requests)
        else:
            # Sequential fault-tolerant path: a chaotic control plane
            # may abandon one session (circuit open, exhausted
            # retries); the rest of the epoch still admits.
            outcomes = []
            for request in requests:
                try:
                    outcomes.append(broker.request_service(request))
                except GQoSMError:
                    outcomes.append(None)
                    abandoned += 1
        for session, outcome in zip(batch, outcomes):
            requested[session.service_class] += 1
            if outcome is not None and outcome.accepted:
                accepted[session.service_class] += 1

    batches = batch_schedule(compiled, batch_window)
    for admit_at, batch in batches:
        sim.schedule_at(admit_at, functools.partial(admit, list(batch)),
                        label=f"atlas:admit:{admit_at:g}")

    checkpoints = _Checkpoints()

    def sample() -> None:
        checkpoints.audit(testbed)
        slo.evaluate(sim.now)
        if sim.now + sample_interval <= spec.horizon + _EPSILON:
            sim.schedule(sample_interval, sample, label="atlas:sample")

    sim.schedule(sample_interval, sample, label="atlas:sample")
    sim.run(until=spec.horizon)
    broker.verifier.stop_polling()
    if testbed.gateway is not None:
        testbed.gateway.sweep_stale(0.0)
    checkpoints.audit(testbed)
    slo.evaluate(sim.now)

    report = _build_report(testbed, compiled, telemetry,
                           batch_window=batch_window,
                           batches=len(batches), requested=requested,
                           accepted=accepted, abandoned=abandoned,
                           checkpoints=checkpoints,
                           chaos_seed=chaos_seed,
                           violating_ids=violating_ids,
                           decisions=decisions, slo=slo)
    return ReplayResult(report=report, testbed=testbed,
                        compiled=compiled)


def check_invariants(result: ReplayResult) -> "List[str]":
    """The per-family QoS invariants; returns violations (empty = ok).

    * capacity conservation held at every checkpoint;
    * the slot table never overcommitted;
    * degradation stayed confined to sessions that consented — an
      exact-demand session (every guaranteed session, and any
      controlled-load request without a range) may never be moved
      below its agreed point unless it opted into degradation;
    * no session was ever served below its negotiated floor;
    * absent injected failures and chaos: zero guaranteed-class
      violations (controlled-load shortfalls are the adaptation's
      normal trigger and are reported, not forbidden);
    * every shortfall cleared by the end of the run — no stranded
      guaranteed SLA after the repairs.
    """
    report = result.report
    spec = result.compiled.spec
    problems: "List[str]" = list(report["conservation_breaches"])
    if report["slot_table_overcommitted"]:
        problems.append("slot table overcommitted")
    if report["degraded_without_consent"]:
        problems.append(
            f"{report['degraded_without_consent']} exact-demand "
            f"session(s) degraded without opting in")
    if report["degraded_below_floor"]:
        problems.append(
            f"{report['degraded_below_floor']} session(s) served below "
            f"the negotiated floor")
    if not spec.has_failures and report["chaos_seed"] is None:
        if report["guaranteed_violations"]:
            problems.append(
                f"{report['guaranteed_violations']} guaranteed-class "
                f"violation(s) with no injected failures")
    if report["final_shortfall"] > _EPSILON:
        problems.append(
            f"stranded shortfall {report['final_shortfall']:g} at the "
            f"end of the run")
    return problems


def _schedule_failures(testbed: Testbed, spec: ScenarioSpec) -> None:
    """Arm every failure track with domain-scoped repairs."""
    machine = testbed.machine
    sim = testbed.sim
    for track in spec.failures:
        downed: "List[int]" = []

        def fail(count: int, down: "List[int]" = downed) -> None:
            down.extend(machine.fail_nodes(count))

        def repair(count: int, down: "List[int]" = downed) -> None:
            victims = down[:count]
            del down[:count]
            machine.repair_nodes(victims)

        for time, delta in track.events:
            if delta < 0:
                sim.schedule_at(time, lambda c=-delta, f=fail: f(c),
                                label=f"atlas:fail:{track.domain}")
            else:
                sim.schedule_at(time, lambda c=delta, f=repair: f(c),
                                label=f"atlas:repair:{track.domain}")


def _rejection_reasons(decisions) -> "List[List[object]]":
    """Top rejection reasons: ``[label, count]`` pairs, most frequent
    first (ties broken by label), over every admission-path reject."""
    counts: "Dict[str, int]" = {}
    for record in decisions.records:
        if record.action not in ("admission", "best_effort",
                                 "activation"):
            continue
        if record.outcome != "reject":
            continue
        label = (f"{record.constraint or 'unspecified'}: "
                 f"{record.reason or 'no reason recorded'}")
        counts[label] = counts.get(label, 0) + 1
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [[label, count] for label, count in ordered]


def _build_report(testbed: Testbed, compiled: CompiledScenario,
                  telemetry, *, batch_window: float, batches: int,
                  requested, accepted, abandoned: int,
                  checkpoints: _Checkpoints,
                  chaos_seed: Optional[int],
                  violating_ids: "set", decisions=None,
                  slo=None) -> "Dict[str, object]":
    spec = compiled.spec
    broker = testbed.broker
    partition = testbed.partition

    degraded = 0
    degraded_without_consent = 0
    degraded_below_floor = 0
    for sla in broker.repository.all():
        if sla.delivered_demand().cpu < sla.floor_demand().cpu - _EPSILON:
            degraded_below_floor += 1
        if sla.is_degraded():
            degraded += 1
            # A range request consents to delivery anywhere inside
            # [floor, best] by negotiation; an exact-demand session
            # must have opted in (flag or pre-agreed alternatives).
            has_range = (sla.floor_demand().cpu
                         < sla.agreed_demand().cpu - _EPSILON)
            if not (has_range or sla.adaptation.accept_degradation
                    or sla.adaptation.alternative_points):
                degraded_without_consent += 1

    violations_by_class = {cls: 0 for cls in _POOLS}
    for sla_id in violating_ids:
        sla = broker.repository.get(sla_id)
        violations_by_class[_CLASS_POOL[sla.service_class]] += 1

    overcommitted = False
    table = testbed.compute_rm.slot_table
    for entry in table.entries():
        probes = [entry.start]
        if not math.isinf(entry.end):
            probes.append((entry.start + entry.end) / 2.0)
        for probe in probes:
            if not table.overcommitment_at(probe).is_zero():
                overcommitted = True
                break
        if overcommitted:
            break

    report = partition.last_report
    final_shortfall = (sum(report.shortfalls.values())
                       if report is not None else 0.0)
    metrics = telemetry.metrics
    occupancy = {
        pool: round(metrics.time_gauge("repro_capacity_effective",
                                       pool=pool).mean(), 9)
        for pool in _POOLS
    }
    return {
        "scenario": spec.name,
        "family": spec.family,
        "seed": compiled.seed,
        "chaos_seed": chaos_seed,
        "horizon": spec.horizon,
        "partition": list(spec.partition),
        "sessions": len(compiled.workload),
        "offered_load": round(compiled.offered_load(), 9),
        "workload_fingerprint": compiled.workload.fingerprint(),
        "batch_window": batch_window,
        "batches": batches,
        "guaranteed_requests": requested[ServiceClass.GUARANTEED],
        "guaranteed_accepted": accepted[ServiceClass.GUARANTEED],
        "controlled_requests": requested[ServiceClass.CONTROLLED_LOAD],
        "controlled_accepted": accepted[ServiceClass.CONTROLLED_LOAD],
        "best_effort_requests": requested[ServiceClass.BEST_EFFORT],
        "best_effort_granted": accepted[ServiceClass.BEST_EFFORT],
        "abandoned": abandoned,
        "violations_detected": broker.metrics.counter_value(
            "repro_sla_violations_detected_total"),
        "guaranteed_violations": violations_by_class["g"],
        "controlled_violations": violations_by_class["a"],
        "best_effort_violations": violations_by_class["b"],
        "restorations": broker.metrics.counter_value(
            "repro_sla_restorations_total"),
        "degraded_sessions": degraded,
        "degraded_without_consent": degraded_without_consent,
        "degraded_below_floor": degraded_below_floor,
        "terminated_sessions": broker.stats.terminated,
        "checkpoints": checkpoints.checks,
        "conservation_breaches": list(checkpoints.breaches),
        "slot_table_overcommitted": overcommitted,
        "final_shortfall": round(final_shortfall, 9),
        "occupancy_mean": occupancy,
        "utilization_mean": round(
            metrics.time_gauge("repro_capacity_utilization").mean(), 9),
        "revenue": round(broker.ledger.provider_net(testbed.sim.now), 9),
        "rejection_reasons": (_rejection_reasons(decisions)
                              if decisions is not None else []),
        "slo": ({"classes": slo.snapshot(testbed.sim.now),
                 "alerts": len(slo.alerts)}
                if slo is not None else None),
    }
