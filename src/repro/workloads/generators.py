"""Workload generation: Poisson arrivals with a configurable class mix.

Sessions arrive as a Poisson process; durations are exponential;
per-class CPU demands are uniform over configured ranges. The
``class_mix`` reflects the paper's assumption that "a Grid environment
contains users with different service requirements — i.e. users who
are willing to pay different amounts" (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..qos.classes import ServiceClass
from ..sim.random import RandomSource
from .sessions import SessionSpec, Workload
from ..errors import ValidationError


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic workload.

    Attributes:
        horizon: Observation window length.
        arrival_rate: Mean arrivals per time unit.
        mean_duration: Mean session duration.
        class_mix: ``(guaranteed, controlled_load, best_effort)``
            weights.
        guaranteed_cpu: ``(low, high)`` uniform demand range.
        controlled_cpu_floor: ``(low, high)`` floor range; the best
            point is the floor scaled by ``controlled_stretch``.
        controlled_stretch: Best-to-floor CPU ratio for
            controlled-load sessions.
        best_effort_cpu: ``(low, high)`` uniform demand range.
        degradable_fraction: Probability a controlled-load session
            accepts degradation.
        terminable_fraction: Probability a session accepts termination
            for compensation.
        promotion_fraction: Probability a controlled-load session
            accepts promotion offers.
    """

    horizon: float = 1000.0
    arrival_rate: float = 0.1
    mean_duration: float = 80.0
    class_mix: "Tuple[float, float, float]" = (0.3, 0.4, 0.3)
    guaranteed_cpu: "Tuple[int, int]" = (2, 8)
    controlled_cpu_floor: "Tuple[int, int]" = (1, 4)
    controlled_stretch: float = 2.0
    best_effort_cpu: "Tuple[int, int]" = (1, 6)
    degradable_fraction: float = 0.7
    terminable_fraction: float = 0.2
    promotion_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValidationError(f"horizon must be positive: {self.horizon}")
        if self.arrival_rate <= 0:
            raise ValidationError(
                f"arrival_rate must be positive: {self.arrival_rate}")
        if self.mean_duration <= 0:
            raise ValidationError(
                f"mean_duration must be positive: {self.mean_duration}")
        if len(self.class_mix) != 3 or min(self.class_mix) < 0 \
                or sum(self.class_mix) <= 0:
            raise ValidationError(f"bad class_mix: {self.class_mix}")
        for name in ("guaranteed_cpu", "controlled_cpu_floor",
                     "best_effort_cpu"):
            low, high = getattr(self, name)
            if not 0 < low <= high:
                raise ValidationError(f"bad {name} range: ({low}, {high})")
        if self.controlled_stretch < 1.0:
            raise ValidationError(
                f"controlled_stretch must be >= 1: "
                f"{self.controlled_stretch}")
        for name in ("degradable_fraction", "terminable_fraction",
                     "promotion_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValidationError(f"{name} out of [0, 1]: {value}")


_CLASSES = (ServiceClass.GUARANTEED, ServiceClass.CONTROLLED_LOAD,
            ServiceClass.BEST_EFFORT)


def generate_workload(config: WorkloadConfig,
                      rng: RandomSource) -> Workload:
    """Draw a deterministic workload from the config and a seeded RNG."""
    arrivals = rng.stream("arrivals")
    classes = rng.stream("classes")
    demands = rng.stream("demands")
    options = rng.stream("options")
    sessions: List[SessionSpec] = []
    time = 0.0
    session_id = 0
    while True:
        time += arrivals.exponential(1.0 / config.arrival_rate)
        if time >= config.horizon:
            break
        session_id += 1
        service_class = classes.weighted_choice(_CLASSES, config.class_mix)
        duration = max(1.0, arrivals.exponential(config.mean_duration))
        if service_class is ServiceClass.GUARANTEED:
            cpu = float(demands.randint(*config.guaranteed_cpu))
            floor = best = cpu
        elif service_class is ServiceClass.CONTROLLED_LOAD:
            floor = float(demands.randint(*config.controlled_cpu_floor))
            best = max(floor, round(floor * config.controlled_stretch))
        else:
            cpu = float(demands.randint(*config.best_effort_cpu))
            floor = best = cpu
        sessions.append(SessionSpec(
            session_id=session_id,
            user=f"user-{session_id}",
            service_class=service_class,
            arrival=time,
            duration=duration,
            cpu_floor=floor,
            cpu_best=best,
            memory_mb=float(demands.randint(64, 512)),
            accept_degradation=(
                service_class is ServiceClass.CONTROLLED_LOAD
                and options.probability(config.degradable_fraction)),
            accept_termination=(
                service_class is not ServiceClass.BEST_EFFORT
                and options.probability(config.terminable_fraction)),
            accept_promotion=(
                service_class is ServiceClass.CONTROLLED_LOAD
                and options.probability(config.promotion_fraction)),
        ))
    return Workload(sessions=tuple(sessions), horizon=config.horizon)


def arrival_rate_for_load(load: float, capacity: float,
                          config: WorkloadConfig) -> float:
    """Arrival rate that offers ``load × capacity`` of CPU-time demand.

    Offered load ``ρ = λ · E[duration] · E[cpu] / capacity``, so
    ``λ = ρ · capacity / (E[duration] · E[cpu])``.
    """
    if load <= 0 or capacity <= 0:
        raise ValidationError("load and capacity must be positive")
    weights = config.class_mix
    total_weight = sum(weights)
    mean_g = sum(config.guaranteed_cpu) / 2.0
    floor_cl = sum(config.controlled_cpu_floor) / 2.0
    mean_cl = (floor_cl + floor_cl * config.controlled_stretch) / 2.0
    mean_be = sum(config.best_effort_cpu) / 2.0
    mean_cpu = (weights[0] * mean_g + weights[1] * mean_cl
                + weights[2] * mean_be) / total_weight
    return load * capacity / (config.mean_duration * mean_cpu)
