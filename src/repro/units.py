"""Quantity parsing and rendering for SLA documents.

The paper's SLAs carry quantities as human-readable strings —
``4 CPU``, ``64MB``, ``10 Mbps``, ``LessThan 10%`` (Tables 1, 3, 4).
This module gives each of those a canonical in-memory form so the rest
of the library computes on plain numbers and only the XML codec deals
with strings.

Canonical internal units:

* CPU / processor nodes — integer count.
* Memory and disk — megabytes (``float``).
* Bandwidth — megabits per second (``float``).
* Packet loss — fraction in ``[0, 1]`` (``float``).
* Delay — milliseconds (``float``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from .errors import UnitError

Number = Union[int, float]

#: Default tolerance for QoS-quantity comparison.  Matches the slot
#: table's admission epsilon so "equal capacity" means the same thing
#: on every layer.
TOLERANCE = 1e-9


def isclose(a: Number, b: Number, *, tol: Number = TOLERANCE) -> bool:
    """Tolerance-based equality for capacity/time quantities.

    Float ``==`` on derived quantities (accumulated capacity, summed
    durations) is brittle; every layer that needs "the same amount"
    should call this instead.  The comparison is absolute-plus-relative:
    values within ``tol`` of each other, or within ``tol`` relative to
    the larger magnitude, compare equal.  Infinities compare equal only
    to themselves.
    """
    if a == b:  # qlint: disable=QLNT102 -- fast path, incl. infinities
        return True
    diff = abs(a - b)
    return diff <= tol or diff <= tol * max(abs(a), abs(b))


def iszero(value: Number, *, tol: Number = TOLERANCE) -> bool:
    """Whether a capacity/time quantity is numerically zero."""
    return abs(value) <= tol

# Multipliers into the canonical unit of each dimension.
_MEMORY_UNITS = {
    "b": 1.0 / (1024.0 * 1024.0),
    "kb": 1.0 / 1024.0,
    "mb": 1.0,
    "gb": 1024.0,
    "tb": 1024.0 * 1024.0,
}

_BANDWIDTH_UNITS = {
    "bps": 1e-6,
    "kbps": 1e-3,
    "mbps": 1.0,
    "gbps": 1e3,
}

_DELAY_UNITS = {
    "us": 1e-3,
    "ms": 1.0,
    "s": 1e3,
}

_QUANTITY_RE = re.compile(
    r"^\s*(?P<value>[-+]?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)"
    r"\s*(?P<unit>[A-Za-z%/]*)\s*$"
)


def _split(text: str) -> "tuple[float, str]":
    """Split ``"64MB"`` / ``"10 Mbps"`` into ``(64.0, "mb")``."""
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    return float(match.group("value")), match.group("unit").lower()


def parse_cpu(text: str) -> int:
    """Parse a CPU-count string such as ``"4 CPU"`` or ``"10 nodes"``.

    Trailing qualifiers (``"55 nodes on Linux OS"`` from Table 4) are
    tolerated: the leading integer is the count.
    """
    match = re.match(r"^\s*(\d+)\s*(?:cpu|cpus|node|nodes|processor|processors)?\b",
                     text.strip(), re.IGNORECASE)
    if match is None:
        raise UnitError(f"cannot parse CPU count: {text!r}")
    return int(match.group(1))


def parse_memory_mb(text: str) -> float:
    """Parse a memory/disk size into megabytes (``"64MB"`` -> ``64.0``)."""
    value, unit = _split(text)
    if unit not in _MEMORY_UNITS:
        raise UnitError(f"unknown memory unit {unit!r} in {text!r}")
    result = value * _MEMORY_UNITS[unit]
    if result < 0:
        raise UnitError(f"memory size must be non-negative: {text!r}")
    return result


def parse_bandwidth_mbps(text: str) -> float:
    """Parse a bandwidth into Mbps (``"10 Mbps"`` -> ``10.0``)."""
    value, unit = _split(text)
    if unit not in _BANDWIDTH_UNITS:
        raise UnitError(f"unknown bandwidth unit {unit!r} in {text!r}")
    result = value * _BANDWIDTH_UNITS[unit]
    if result < 0:
        raise UnitError(f"bandwidth must be non-negative: {text!r}")
    return result


def parse_delay_ms(text: str) -> float:
    """Parse a delay into milliseconds (``"10ms"`` -> ``10.0``)."""
    value, unit = _split(text)
    if unit not in _DELAY_UNITS:
        raise UnitError(f"unknown delay unit {unit!r} in {text!r}")
    result = value * _DELAY_UNITS[unit]
    if result < 0:
        raise UnitError(f"delay must be non-negative: {text!r}")
    return result


def parse_percentage(text: str) -> float:
    """Parse ``"10%"`` (or ``"0.1"``) into a fraction in ``[0, 1]``."""
    value, unit = _split(text)
    if unit == "%":
        fraction = value / 100.0
    elif unit == "":
        fraction = value
    else:
        raise UnitError(f"unknown percentage unit {unit!r} in {text!r}")
    if not 0.0 <= fraction <= 1.0:
        raise UnitError(f"percentage out of [0, 100%]: {text!r}")
    return fraction


@dataclass(frozen=True)
class Bound:
    """A one-sided bound such as the paper's ``LessThan 10%`` loss spec.

    ``relation`` is one of ``"<"``, ``"<="``, ``">"``, ``">="``, ``"=="``.
    """

    relation: str
    value: float

    _RELATIONS = {
        "<": lambda measured, bound: measured < bound,
        "<=": lambda measured, bound: measured <= bound,
        ">": lambda measured, bound: measured > bound,
        ">=": lambda measured, bound: measured >= bound,
        "==": lambda measured, bound: measured == bound,
    }

    def __post_init__(self) -> None:
        if self.relation not in self._RELATIONS:
            raise UnitError(f"unknown bound relation {self.relation!r}")

    def satisfied_by(self, measured: float) -> bool:
        """Whether a measured value meets this bound."""
        return self._RELATIONS[self.relation](measured, self.value)


_BOUND_WORDS = {
    "lessthan": "<",
    "atmost": "<=",
    "greaterthan": ">",
    "atleast": ">=",
    "equals": "==",
}


def parse_bound(text: str, value_parser=parse_percentage) -> Bound:
    """Parse a worded bound such as ``"LessThan 10%"`` (Table 1).

    ``value_parser`` converts the numeric part; it defaults to
    :func:`parse_percentage` because the paper only uses worded bounds
    for packet loss.
    """
    parts = text.strip().split(None, 1)
    if len(parts) != 2:
        raise UnitError(f"cannot parse bound: {text!r}")
    word, number = parts
    relation = _BOUND_WORDS.get(word.lower())
    if relation is None:
        raise UnitError(f"unknown bound word {word!r} in {text!r}")
    return Bound(relation, value_parser(number))


def render_bound(bound: Bound, renderer=None) -> str:
    """Render a :class:`Bound` back into the paper's worded form."""
    words = {relation: word for word, relation in _BOUND_WORDS.items()}
    word = {"lessthan": "LessThan", "atmost": "AtMost",
            "greaterthan": "GreaterThan", "atleast": "AtLeast",
            "equals": "Equals"}[words[bound.relation]]
    if renderer is None:
        value = render_percentage(bound.value)
    else:
        value = renderer(bound.value)
    return f"{word} {value}"


def _trim(value: float) -> str:
    """Format a float without a trailing ``.0`` (``10.0`` -> ``"10"``)."""
    if value == int(value):
        return str(int(value))
    return f"{value:.12g}"


def render_cpu(count: int) -> str:
    """Render a CPU count in the paper's Table 1 form (``"4 CPU"``)."""
    return f"{int(count)} CPU"


def render_memory_mb(megabytes: float) -> str:
    """Render a memory size (``64.0`` -> ``"64MB"``)."""
    if megabytes >= 1024.0 and megabytes % 1024.0 == 0:
        return f"{_trim(megabytes / 1024.0)}GB"
    return f"{_trim(megabytes)}MB"


def render_bandwidth_mbps(mbps: float) -> str:
    """Render a bandwidth (``10.0`` -> ``"10 Mbps"``)."""
    if mbps >= 1000.0 and mbps % 1000.0 == 0:
        return f"{_trim(mbps / 1000.0)} Gbps"
    return f"{_trim(mbps)} Mbps"


def render_delay_ms(milliseconds: float) -> str:
    """Render a delay (``10.0`` -> ``"10ms"``)."""
    return f"{_trim(milliseconds)}ms"


def render_percentage(fraction: float) -> str:
    """Render a fraction as a percentage (``0.1`` -> ``"10%"``)."""
    return f"{_trim(fraction * 100.0)}%"
