"""The QoS model: parameters, specifications, classes, pricing.

Section 5.3 of the paper formalises a service's QoS as a set
``Q = {q1 .. qn}`` where each parameter is recorded either as a range
(``Lq <= q <= Hq``) or as a discrete list of acceptable values, and each
carries a cost weight ``w_i`` so that ``cost(q_i) = q_i * w_i``. This
package implements that model:

* :mod:`repro.qos.parameters` — dimensions, parameter forms, admissibility.
* :mod:`repro.qos.specification` — QoS sets, comparison, demand vectors.
* :mod:`repro.qos.classes` — the guaranteed / controlled-load /
  best-effort service classes (Section 5.1).
* :mod:`repro.qos.cost` — pricing policies and revenue computation.
* :mod:`repro.qos.vector` — resource demand vectors used by the
  reservation and adaptation layers.
* :mod:`repro.qos.mapping` — the Figure 3 *QoS Mapping* function:
  application-level metrics translated into resource-level QoS.
"""

from .classes import ServiceClass
from .cost import PricingPolicy, service_cost
from .mapping import ApplicationProfile, MetricRule
from .parameters import (
    DIMENSIONS,
    Dimension,
    QoSParameter,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)
from .specification import QoSSpecification
from .vector import ResourceVector

__all__ = [
    "ApplicationProfile",
    "DIMENSIONS",
    "Dimension",
    "MetricRule",
    "PricingPolicy",
    "QoSParameter",
    "QoSSpecification",
    "ResourceVector",
    "ServiceClass",
    "discrete_parameter",
    "exact_parameter",
    "range_parameter",
    "service_cost",
]
