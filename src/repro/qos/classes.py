"""The three G-QoSM service classes (Section 5.1).

* ``GUARANTEED`` — QoS pinned to exact pre-agreed values; enforced and
  monitored; the provider commits to the exact SLA specification
  (RFC 2212-style guaranteed service).
* ``CONTROLLED_LOAD`` — QoS stated as ranges/lists; the provider must
  deliver within the range and may move the operating point inside it
  (RFC 2211-style controlled load). Only this class may carry
  "promotion offers".
* ``BEST_EFFORT`` — no SLA; any suitable resources found are returned.
"""

from __future__ import annotations

from enum import Enum
from ..errors import ValidationError


class ServiceClass(Enum):
    """G-QoSM service delivery classes."""

    GUARANTEED = "Guaranteed"
    CONTROLLED_LOAD = "Controlled-load"
    BEST_EFFORT = "Best-effort"

    @property
    def has_sla(self) -> bool:
        """Whether requests of this class establish an SLA."""
        return self is not ServiceClass.BEST_EFFORT

    @property
    def monitored(self) -> bool:
        """Whether SLA-Verif monitors sessions of this class.

        Section 2.1: adaptation techniques "are only applicable for
        'guaranteed' QoS and 'controlled load' QoS levels".
        """
        return self is not ServiceClass.BEST_EFFORT

    @property
    def adjustable(self) -> bool:
        """Whether the provider may move the delivered quality level.

        Only controlled-load SLAs express acceptable ranges, so only
        they participate in the Section 5.3 optimization heuristic.
        """
        return self is ServiceClass.CONTROLLED_LOAD

    @property
    def may_receive_promotions(self) -> bool:
        """Whether promotion offers (Section 5.2) apply to this class."""
        return self is ServiceClass.CONTROLLED_LOAD

    @classmethod
    def from_label(cls, label: str) -> "ServiceClass":
        """Parse the XML ``<QoS_Class>`` label (case-insensitive)."""
        normalized = label.strip().lower().replace("_", "-").replace(" ", "-")
        for member in cls:
            if member.value.lower() == normalized:
                return member
        aliases = {
            "guaranteed-service": cls.GUARANTEED,
            "controlled-load-service": cls.CONTROLLED_LOAD,
            "controlledload": cls.CONTROLLED_LOAD,
            "best-effort-service": cls.BEST_EFFORT,
            "besteffort": cls.BEST_EFFORT,
        }
        if normalized in aliases:
            return aliases[normalized]
        raise ValidationError(f"unknown service class label: {label!r}")
