"""QoS specifications: the paper's set ``Q = {q1 .. qn}``.

A :class:`QoSSpecification` is an ordered collection of
:class:`~repro.qos.parameters.QoSParameter`, at most one per dimension.
It supports the comparison the paper motivates ("one is now able to
compare two different Q sets, by comparing each element"), produces
concrete *operating points* for the optimizer, and maps operating
points onto :class:`~repro.qos.vector.ResourceVector` demands for the
reservation layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

from ..errors import QoSSpecificationError
from .parameters import Dimension, QoSParameter
from .vector import ResourceVector

#: An operating point: one concrete value per specified dimension.
OperatingPoint = Dict[Dimension, float]


@dataclass(frozen=True)
class QoSSpecification:
    """An immutable set of QoS parameters, keyed by dimension."""

    parameters: "tuple[QoSParameter, ...]"

    def __post_init__(self) -> None:
        seen = set()
        for parameter in self.parameters:
            if parameter.dimension in seen:
                raise QoSSpecificationError(
                    f"duplicate dimension {parameter.dimension.value}")
            seen.add(parameter.dimension)

    @classmethod
    def of(cls, *parameters: QoSParameter) -> "QoSSpecification":
        """Build a specification from parameters."""
        return cls(parameters=tuple(parameters))

    @classmethod
    def from_iterable(cls,
                      parameters: Iterable[QoSParameter]) -> "QoSSpecification":
        """Build a specification from any iterable of parameters."""
        return cls(parameters=tuple(parameters))

    def __iter__(self) -> Iterator[QoSParameter]:
        return iter(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __contains__(self, dimension: Dimension) -> bool:
        return any(p.dimension is dimension for p in self.parameters)

    def get(self, dimension: Dimension) -> Optional[QoSParameter]:
        """The parameter for ``dimension``, or ``None`` if unspecified."""
        for parameter in self.parameters:
            if parameter.dimension is dimension:
                return parameter
        return None

    def require(self, dimension: Dimension) -> QoSParameter:
        """The parameter for ``dimension``; raises if unspecified."""
        parameter = self.get(dimension)
        if parameter is None:
            raise QoSSpecificationError(
                f"specification has no {dimension.value} parameter")
        return parameter

    # ------------------------------------------------------------------
    # Operating points
    # ------------------------------------------------------------------

    def best_point(self) -> OperatingPoint:
        """The highest-quality admissible operating point."""
        return {p.dimension: p.best() for p in self.parameters}

    def worst_point(self) -> OperatingPoint:
        """The minimum-quality admissible operating point (SLA floor)."""
        return {p.dimension: p.worst() for p in self.parameters}

    def admits(self, point: Mapping[Dimension, float]) -> bool:
        """Whether ``point`` sets every parameter to an acceptable value."""
        for parameter in self.parameters:
            if parameter.dimension not in point:
                return False
            if not parameter.admissible(point[parameter.dimension]):
                return False
        return True

    def clamp_point(self, point: Mapping[Dimension, float]) -> OperatingPoint:
        """Snap an arbitrary point onto the nearest admissible one."""
        return {p.dimension: p.clamp(point.get(p.dimension, p.worst()))
                for p in self.parameters}

    def quality_levels(self, count: int = 5) -> List[OperatingPoint]:
        """Coupled quality levels, worst-to-best.

        Rather than the full cross product of per-parameter levels
        (exponential), quality is varied *jointly*: level ``k`` sets
        every parameter to its ``k``-th candidate (parameters with fewer
        candidates saturate at their best). This mirrors how the paper's
        SLAs express alternatives — one coherent "Alternative_QoS"
        bundle per level (Table 4) — and keeps the optimizer's search
        space linear per service.
        """
        per_parameter = {p.dimension: p.levels(count) for p in self.parameters}
        depth = max((len(v) for v in per_parameter.values()), default=0)
        points: List[OperatingPoint] = []
        for k in range(depth):
            point = {dim: levels[min(k, len(levels) - 1)]
                     for dim, levels in per_parameter.items()}
            if point not in points:
                points.append(point)
        return points

    # ------------------------------------------------------------------
    # Comparison (Section 5.3: compare Q_a with Q_b element-wise)
    # ------------------------------------------------------------------

    def dominates(self, other: "QoSSpecification") -> bool:
        """Whether this spec's floor meets-or-beats ``other``'s floor on
        every dimension ``other`` specifies.

        Used by discovery: a registered service capability dominates a
        request when it can satisfy the request's minimum on every
        requested dimension.
        """
        mine = {p.dimension: p for p in self.parameters}
        for theirs in other.parameters:
            ours = mine.get(theirs.dimension)
            if ours is None:
                return False
            floor_theirs = theirs.worst()
            best_ours = ours.best()
            if ours.is_better(floor_theirs, best_ours):
                return False
        return True

    # ------------------------------------------------------------------
    # Demand mapping
    # ------------------------------------------------------------------

    @staticmethod
    def point_demand(point: Mapping[Dimension, float]) -> ResourceVector:
        """The resource demand of a concrete operating point.

        Only capacity-consuming dimensions contribute; observed
        qualities (loss, delay) do not reserve anything.
        """
        return ResourceVector(
            cpu=point.get(Dimension.CPU, 0.0),
            memory_mb=point.get(Dimension.MEMORY_MB, 0.0),
            disk_mb=point.get(Dimension.DISK_MB, 0.0),
            bandwidth_mbps=point.get(Dimension.BANDWIDTH_MBPS, 0.0),
        )

    def max_demand(self) -> ResourceVector:
        """Demand of the best operating point (used for admission)."""
        return self.point_demand(self.best_point())

    def min_demand(self) -> ResourceVector:
        """Demand of the floor operating point."""
        return self.point_demand(self.worst_point())

    def describe(self) -> str:
        """Compact human-readable form."""
        return "; ".join(p.describe() for p in self.parameters)
