"""Pricing: the paper's cost model (Section 5.3).

Each QoS parameter ``q_i`` has a weight ``w_i`` "related to the pricing
formula for the class of service assigned to this user";
``cost(q_i) = q_i * w_i`` and the monetary cost of a service's QoS set
is ``sum_i q_i * w_i``. The provider's optimization objective is
``max sum_services cost(service)``.

For dimensions where *smaller* is better (packet loss, delay) the
delivered value does not scale revenue the same way; they are treated
as constraints, not revenue terms, so by default their weight is zero.
The weights "may also have other semantic interpretations, such as
priority or user preference" (paper, footnote 1) — the model is just a
weighted linear form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from .classes import ServiceClass
from .parameters import Dimension

#: Default per-unit weights, chosen so one CPU-node-hour, ~1 GB of
#: memory and ~10 Mbps are of the same order of revenue. Absolute scale
#: is arbitrary (the paper publishes none); only ratios matter to the
#: optimizer's choices.
DEFAULT_WEIGHTS: "Dict[Dimension, float]" = {
    Dimension.CPU: 1.0,
    Dimension.MEMORY_MB: 0.001,
    Dimension.DISK_MB: 0.0002,
    Dimension.BANDWIDTH_MBPS: 0.1,
    Dimension.PACKET_LOSS: 0.0,
    Dimension.DELAY_MS: 0.0,
}

#: Class multipliers: guaranteed users "are willing to pay different
#: amounts to access Grid services" (Section 1) — the strongest
#: commitment is priced highest, best effort lowest.
DEFAULT_CLASS_MULTIPLIERS: "Dict[ServiceClass, float]" = {
    ServiceClass.GUARANTEED: 1.5,
    ServiceClass.CONTROLLED_LOAD: 1.0,
    ServiceClass.BEST_EFFORT: 0.25,
}


@dataclass(frozen=True)
class PricingPolicy:
    """Weights ``w_i`` plus per-class multipliers.

    Attributes:
        weights: Per-dimension revenue weight (missing dimensions earn 0).
        class_multipliers: Scaling applied on top of the linear form,
            per service class.
        violation_penalty_rate: Fraction of a session's agreed rate
            refunded per time unit spent in violation (used by
            accounting; the paper names "SLA violation penalties" as an
            agreed SLA term in Section 5.2).
    """

    weights: Mapping[Dimension, float] = field(
        default_factory=lambda: dict(DEFAULT_WEIGHTS))
    class_multipliers: Mapping[ServiceClass, float] = field(
        default_factory=lambda: dict(DEFAULT_CLASS_MULTIPLIERS))
    violation_penalty_rate: float = 1.0

    def weight(self, dimension: Dimension) -> float:
        """The revenue weight ``w_i`` for a dimension."""
        return float(self.weights.get(dimension, 0.0))

    def multiplier(self, service_class: ServiceClass) -> float:
        """The class multiplier."""
        return float(self.class_multipliers.get(service_class, 1.0))

    def parameter_cost(self, dimension: Dimension, value: float) -> float:
        """``cost(q_i) = q_i * w_i``."""
        return value * self.weight(dimension)

    def point_rate(self, point: Mapping[Dimension, float],
                   service_class: ServiceClass) -> float:
        """Revenue rate for delivering a concrete operating point.

        This is the paper's ``sum_i q_i * w_i`` scaled by the class
        multiplier; it is a *rate* (per unit time) so accounting can
        integrate it over the session duration.
        """
        linear = sum(self.parameter_cost(dim, value)
                     for dim, value in point.items())
        return linear * self.multiplier(service_class)


def service_cost(point: Mapping[Dimension, float],
                 service_class: ServiceClass,
                 policy: "PricingPolicy | None" = None) -> float:
    """Convenience wrapper for :meth:`PricingPolicy.point_rate`."""
    if policy is None:
        policy = PricingPolicy()
    return policy.point_rate(point, service_class)
