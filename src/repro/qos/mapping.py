"""QoS Mapping: application-level metrics → resource-level QoS.

Figure 3 lists *QoS Mapping* among the Establishment-phase functions,
and the introduction motivates it: "although issues such as frame-rate
or packet-jitter may be easily quantified, it is more difficult to do
so in the context of Grid-based applications. There is thus a need to
annotate Grid services with QoS related data". G-QoSM's phase 3
("domain-specific QoS requirements for an application framework") is
exactly this layer.

An :class:`ApplicationProfile` declares, per application-level metric
(``frames_per_second``, ``participants``, ``dataset_gb``, ...), how it
translates into resource dimensions — affine coefficients per
dimension plus optional fixed baseline demands. ``map_requirements``
turns a dict of application metrics (scalars or ``(min, desired)``
ranges) into the :class:`~repro.qos.specification.QoSSpecification`
the broker negotiates with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple, Union

from ..errors import QoSSpecificationError
from ..units import isclose
from .parameters import Dimension, exact_parameter, range_parameter
from .specification import QoSSpecification

#: An application metric value: a scalar (exact requirement) or a
#: ``(minimum, desired)`` range.
MetricValue = Union[float, Tuple[float, float]]


@dataclass(frozen=True)
class MetricRule:
    """How one application metric consumes one resource dimension.

    ``demand = coefficient * metric + offset``, rounded up for CPU.
    """

    dimension: Dimension
    coefficient: float
    offset: float = 0.0

    def demand(self, metric: float) -> float:
        """Resource demand implied by a metric value."""
        value = self.coefficient * metric + self.offset
        if value < 0:
            raise QoSSpecificationError(
                f"rule for {self.dimension.value} yields negative demand "
                f"{value:g} at metric {metric:g}")
        if self.dimension is Dimension.CPU:
            return float(math.ceil(value - 1e-9))
        return value


@dataclass(frozen=True)
class ApplicationProfile:
    """A named application type with its metric translation rules.

    Attributes:
        name: Profile name (e.g. ``"collaborative-visualization"``).
        rules: ``metric name -> rules`` — one metric may consume
            several dimensions.
        baseline: Fixed demands added regardless of metrics (e.g. the
            application server's own footprint).
    """

    name: str
    rules: "Mapping[str, Tuple[MetricRule, ...]]"
    baseline: "Mapping[Dimension, float]" = field(default_factory=dict)

    def metrics(self) -> "Tuple[str, ...]":
        """The application metrics this profile understands."""
        return tuple(sorted(self.rules))

    def map_requirements(self, requirements: "Mapping[str, MetricValue]"
                         ) -> QoSSpecification:
        """Translate application requirements into a QoS specification.

        Scalar metrics produce exact parameters; ``(min, desired)``
        ranges produce range parameters — i.e. a controlled-load-style
        specification whose floor honours the minimum metric.

        Raises:
            QoSSpecificationError: On unknown metrics or inverted
                ranges.
        """
        lows: Dict[Dimension, float] = dict(self.baseline)
        highs: Dict[Dimension, float] = dict(self.baseline)
        ranged = False
        for metric, value in sorted(requirements.items()):
            metric_rules = self.rules.get(metric)
            if metric_rules is None:
                raise QoSSpecificationError(
                    f"profile {self.name!r} has no rule for metric "
                    f"{metric!r} (knows: {', '.join(self.metrics())})")
            if isinstance(value, tuple):
                minimum, desired = value
                if minimum > desired:
                    raise QoSSpecificationError(
                        f"metric {metric!r} range is inverted: "
                        f"({minimum}, {desired})")
                ranged = True
            else:
                minimum = desired = float(value)
            for rule in metric_rules:
                lows[rule.dimension] = lows.get(rule.dimension, 0.0) \
                    + rule.demand(minimum)
                highs[rule.dimension] = highs.get(rule.dimension, 0.0) \
                    + rule.demand(desired)
        # Baseline was seeded into both maps once; per-metric demands
        # accumulated on top.
        parameters = []
        for dimension in sorted(lows, key=lambda d: d.value):
            low = lows[dimension]
            high = highs[dimension]
            if not ranged or isclose(low, high):
                parameters.append(exact_parameter(dimension, high))
            else:
                parameters.append(range_parameter(dimension, low, high))
        return QoSSpecification.from_iterable(parameters)


#: Ready-made profile for the paper's motivating application:
#: "collaborative working and visualization" (abstract). Each
#: participant adds a 5 Mbps stream slice; rendering needs one node
#: per 4 fps plus 256 MB per node; datasets are staged to local disk.
COLLABORATIVE_VISUALIZATION = ApplicationProfile(
    name="collaborative-visualization",
    rules={
        "participants": (
            MetricRule(Dimension.BANDWIDTH_MBPS, coefficient=5.0),
        ),
        "frames_per_second": (
            MetricRule(Dimension.CPU, coefficient=0.25),
            MetricRule(Dimension.MEMORY_MB, coefficient=64.0),
        ),
        "dataset_gb": (
            MetricRule(Dimension.DISK_MB, coefficient=1024.0),
        ),
    },
    baseline={Dimension.MEMORY_MB: 256.0},
)

#: Profile for a bulk data-transfer service (the site-B feed of the
#: Section 5.6 experiment): throughput maps straight to bandwidth,
#: plus a staging-disk footprint.
DATA_TRANSFER = ApplicationProfile(
    name="data-transfer",
    rules={
        "throughput_mbps": (
            MetricRule(Dimension.BANDWIDTH_MBPS, coefficient=1.0),
        ),
        "staging_gb": (
            MetricRule(Dimension.DISK_MB, coefficient=1024.0),
        ),
    },
)
