"""QoS parameters and their acceptable-value forms.

Section 5.3: a QoS parameter's acceptable values are recorded in the SLA
either (1) as a range ``Lq <= q <= Hq`` where the high end is "better",
or (2) as a discrete list ``q in {x, .., z}``. Guaranteed-class SLAs pin
a parameter to an exact value. A :class:`QoSParameter` captures one
parameter in any of those three forms and knows, per dimension, whether
larger or smaller values are better.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from ..errors import QoSSpecificationError


class Direction(Enum):
    """Whether quality improves as the parameter value grows or shrinks."""

    HIGHER_IS_BETTER = "higher"
    LOWER_IS_BETTER = "lower"


class Dimension(Enum):
    """The QoS dimensions used across the paper's SLAs."""

    CPU = "cpu"
    MEMORY_MB = "memory_mb"
    DISK_MB = "disk_mb"
    BANDWIDTH_MBPS = "bandwidth_mbps"
    PACKET_LOSS = "packet_loss"
    DELAY_MS = "delay_ms"

    @property
    def direction(self) -> Direction:
        """Quality direction for this dimension."""
        if self in (Dimension.PACKET_LOSS, Dimension.DELAY_MS):
            return Direction.LOWER_IS_BETTER
        return Direction.HIGHER_IS_BETTER

    @property
    def consumes_capacity(self) -> bool:
        """Whether this dimension maps onto a reservable resource.

        Packet loss and delay are *observed* qualities — they constrain
        SLA conformance but are not allocated from a pool.
        """
        return self in (Dimension.CPU, Dimension.MEMORY_MB,
                        Dimension.DISK_MB, Dimension.BANDWIDTH_MBPS)


#: All dimensions, in canonical SLA order.
DIMENSIONS: Tuple[Dimension, ...] = tuple(Dimension)


class Form(Enum):
    """How the SLA records the acceptable values (Section 5.3)."""

    EXACT = "exact"
    RANGE = "range"
    LIST = "list"


@dataclass(frozen=True)
class QoSParameter:
    """One QoS parameter with its acceptable values.

    Construct via the factory helpers :func:`exact_parameter`,
    :func:`range_parameter` and :func:`discrete_parameter` rather than
    directly; they validate per-form invariants.

    Attributes:
        dimension: Which quality axis this parameter constrains.
        form: Exact / range / discrete-list (Section 5.3 forms).
        low: Range low bound (``RANGE`` only).
        high: Range high bound (``RANGE`` only).
        values: Sorted acceptable values (``LIST``), or the single
            pinned value (``EXACT``).
    """

    dimension: Dimension
    form: Form
    low: Optional[float] = None
    high: Optional[float] = None
    values: Tuple[float, ...] = field(default_factory=tuple)

    @property
    def direction(self) -> Direction:
        """Quality direction inherited from the dimension."""
        return self.dimension.direction

    def admissible(self, value: float) -> bool:
        """Whether ``value`` is an acceptable setting for this parameter."""
        if self.form is Form.EXACT:
            return value == self.values[0]
        if self.form is Form.RANGE:
            assert self.low is not None and self.high is not None
            return self.low <= value <= self.high
        return value in self.values

    def best(self) -> float:
        """The highest-quality acceptable value."""
        if self.form is Form.RANGE:
            assert self.low is not None and self.high is not None
            return (self.high if self.direction is Direction.HIGHER_IS_BETTER
                    else self.low)
        ordered = self.values
        return (max(ordered) if self.direction is Direction.HIGHER_IS_BETTER
                else min(ordered))

    def worst(self) -> float:
        """The minimum-quality acceptable value (the SLA floor)."""
        if self.form is Form.RANGE:
            assert self.low is not None and self.high is not None
            return (self.low if self.direction is Direction.HIGHER_IS_BETTER
                    else self.high)
        ordered = self.values
        return (min(ordered) if self.direction is Direction.HIGHER_IS_BETTER
                else max(ordered))

    def levels(self, count: int = 5) -> List[float]:
        """Candidate operating points, worst-to-best, for the optimizer.

        For ``LIST``/``EXACT`` forms these are the listed values; for a
        ``RANGE`` the interval is sampled at ``count`` evenly spaced
        points (CPU-like integer dimensions are rounded and deduplicated).
        """
        if count < 1:
            raise QoSSpecificationError(f"level count must be >= 1: {count}")
        if self.form is Form.EXACT:
            return [self.values[0]]
        if self.form is Form.LIST:
            ordered = sorted(self.values)
            if self.direction is Direction.LOWER_IS_BETTER:
                ordered.reverse()
            return ordered
        assert self.low is not None and self.high is not None
        if count == 1:
            points = [self.worst()]
        else:
            span = self.high - self.low
            points = [self.low + span * i / (count - 1) for i in range(count)]
            if self.direction is Direction.LOWER_IS_BETTER:
                points.reverse()
        if self.dimension is Dimension.CPU:
            rounded: List[float] = []
            for point in points:
                value = float(round(point))
                if self.admissible(value) and value not in rounded:
                    rounded.append(value)
            if rounded:
                points = rounded
        return points

    def clamp(self, value: float) -> float:
        """The admissible value closest to ``value``."""
        if self.form is Form.EXACT:
            return self.values[0]
        if self.form is Form.RANGE:
            assert self.low is not None and self.high is not None
            return min(max(value, self.low), self.high)
        return min(self.values, key=lambda v: (abs(v - value), v))

    def is_better(self, a: float, b: float) -> bool:
        """Whether value ``a`` is strictly better quality than ``b``."""
        if self.direction is Direction.HIGHER_IS_BETTER:
            return a > b
        return a < b

    def describe(self) -> str:
        """Compact human-readable form for logs and offers."""
        name = self.dimension.value
        if self.form is Form.EXACT:
            return f"{name}={self.values[0]:g}"
        if self.form is Form.RANGE:
            return f"{name} in [{self.low:g}, {self.high:g}]"
        return f"{name} in {{{', '.join(f'{v:g}' for v in self.values)}}}"


def exact_parameter(dimension: Dimension, value: float) -> QoSParameter:
    """A parameter pinned to one value (guaranteed-class form)."""
    _check_value(dimension, value)
    return QoSParameter(dimension=dimension, form=Form.EXACT,
                        values=(float(value),))


def range_parameter(dimension: Dimension, low: float,
                    high: float) -> QoSParameter:
    """A parameter acceptable anywhere in ``[low, high]``."""
    if low > high:
        raise QoSSpecificationError(
            f"range low {low} exceeds high {high} for {dimension.value}")
    _check_value(dimension, low)
    _check_value(dimension, high)
    return QoSParameter(dimension=dimension, form=Form.RANGE,
                        low=float(low), high=float(high))


def discrete_parameter(dimension: Dimension,
                       values: Sequence[float]) -> QoSParameter:
    """A parameter restricted to an explicit list of values."""
    if not values:
        raise QoSSpecificationError(
            f"discrete value list for {dimension.value} is empty")
    for value in values:
        _check_value(dimension, value)
    unique = tuple(sorted({float(v) for v in values}))
    return QoSParameter(dimension=dimension, form=Form.LIST, values=unique)


def _check_value(dimension: Dimension, value: float) -> None:
    if value < 0:
        raise QoSSpecificationError(
            f"{dimension.value} value must be non-negative: {value}")
    if dimension is Dimension.PACKET_LOSS and value > 1.0:
        raise QoSSpecificationError(
            f"packet loss is a fraction in [0, 1]: {value}")
    if dimension is Dimension.CPU and value != int(value):
        raise QoSSpecificationError(
            f"CPU counts must be integral: {value}")
