"""Resource demand vectors.

The adaptation algorithm reasons about "resource capacity", which the
paper says "encompasses CPU, network and storage resources"
(Section 5.4). A :class:`ResourceVector` is the common currency between
the QoS layer (what a quality level demands), the GARA slot table (what
a reservation holds) and the adaptation core (what a capacity pool can
still supply).

Vectors support element-wise arithmetic and the partial order
``fits_within`` (every component less-or-equal). Components are:

* ``cpu`` — processor nodes (integer-valued, stored as float for
  arithmetic convenience; the compute RM enforces integrality).
* ``memory_mb`` — megabytes of primary memory.
* ``disk_mb`` — megabytes of disk.
* ``bandwidth_mbps`` — megabits per second of network bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ValidationError

_EPSILON = 1e-9


@dataclass(frozen=True)
class ResourceVector:
    """An element-wise non-negative resource quantity."""

    cpu: float = 0.0
    memory_mb: float = 0.0
    disk_mb: float = 0.0
    bandwidth_mbps: float = 0.0

    _FIELDS = ("cpu", "memory_mb", "disk_mb", "bandwidth_mbps")

    def __post_init__(self) -> None:
        for name in self._FIELDS:
            value = getattr(self, name)
            if value < -_EPSILON:
                raise ValidationError(f"{name} must be non-negative, got {value}")

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The all-zero vector (a shared immutable singleton)."""
        return _ZERO_VECTOR

    def as_tuple(self) -> "tuple[float, float, float, float]":
        """``(cpu, memory_mb, disk_mb, bandwidth_mbps)`` — the form the
        slot-table profile index accumulates internally."""
        return (self.cpu, self.memory_mb, self.disk_mb, self.bandwidth_mbps)

    # The arithmetic below spells the four components out instead of
    # looping over ``_FIELDS`` with getattr: these ops dominate the
    # admission hot path and the unrolled form roughly halves their
    # cost without changing any result.

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.memory_mb + other.memory_mb,
            self.disk_mb + other.disk_mb,
            self.bandwidth_mbps + other.bandwidth_mbps)

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise difference, clamped at zero.

        Clamping (rather than raising) matches how pools use
        subtraction: "what remains after serving this demand".
        Use :meth:`fits_within` first when over-subtraction matters.
        """
        return ResourceVector(
            max(0.0, self.cpu - other.cpu),
            max(0.0, self.memory_mb - other.memory_mb),
            max(0.0, self.disk_mb - other.disk_mb),
            max(0.0, self.bandwidth_mbps - other.bandwidth_mbps))

    def scaled(self, factor: float) -> "ResourceVector":
        """The vector multiplied component-wise by ``factor >= 0``."""
        if factor < 0:
            raise ValidationError(f"scale factor must be non-negative: {factor}")
        return ResourceVector(
            self.cpu * factor,
            self.memory_mb * factor,
            self.disk_mb * factor,
            self.bandwidth_mbps * factor)

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Whether every component is <= the corresponding capacity."""
        return (self.cpu <= capacity.cpu + _EPSILON
                and self.memory_mb <= capacity.memory_mb + _EPSILON
                and self.disk_mb <= capacity.disk_mb + _EPSILON
                and self.bandwidth_mbps <= capacity.bandwidth_mbps + _EPSILON)

    def component_max(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise maximum."""
        return ResourceVector(
            max(self.cpu, other.cpu),
            max(self.memory_mb, other.memory_mb),
            max(self.disk_mb, other.disk_mb),
            max(self.bandwidth_mbps, other.bandwidth_mbps))

    def component_min(self, other: "ResourceVector") -> "ResourceVector":
        """Element-wise minimum."""
        return ResourceVector(
            min(self.cpu, other.cpu),
            min(self.memory_mb, other.memory_mb),
            min(self.disk_mb, other.disk_mb),
            min(self.bandwidth_mbps, other.bandwidth_mbps))

    def is_zero(self) -> bool:
        """Whether every component is (numerically) zero."""
        return (abs(self.cpu) <= _EPSILON
                and abs(self.memory_mb) <= _EPSILON
                and abs(self.disk_mb) <= _EPSILON
                and abs(self.bandwidth_mbps) <= _EPSILON)

    def dominates(self, other: "ResourceVector") -> bool:
        """Whether this vector is >= ``other`` in every component."""
        return other.fits_within(self)

    def as_dict(self) -> "dict[str, float]":
        """Plain-dict form for reports and serialization."""
        return {f: getattr(self, f) for f in self._FIELDS}

    def __str__(self) -> str:
        parts = [f"{name}={getattr(self, name):g}" for name in self._FIELDS
                 if getattr(self, name) > _EPSILON]
        return "ResourceVector(" + (", ".join(parts) or "zero") + ")"


#: Shared zero singleton returned by :meth:`ResourceVector.zero`; the
#: dataclass is frozen, so sharing is safe and saves an allocation plus
#: validation on every hot-path query that starts from zero.
_ZERO_VECTOR = ResourceVector()
