"""Time-weighted metric accumulation.

The synthetic experiments and the telemetry registry integrate
piecewise-constant signals (utilization, violation indicator, pool
occupancy) between event points. :class:`TimeWeightedMetrics` does the
bookkeeping: feed it the signal values at every event time and it
maintains exact integrals over the observation window.

Two semantics are deliberate and explicit (they used to be silent):

* **Late-first signals are zero-filled.** A signal first observed at
  ``t > start`` contributes 0 to its integral over ``[start, t)`` —
  the window is shared by all signals, so a late arrival is treated as
  having been 0 until its first observation. :meth:`first_observed`
  and :meth:`zero_filled` expose the gap so callers can tell a true
  zero from a late start (and re-base their mean if they want one over
  the signal's own lifetime).
* **A window closes exactly once.** :meth:`finalize` integrates the
  tail and seals the window; a second ``finalize`` or any further
  ``observe`` raises :class:`~repro.errors.ValidationError` instead of
  silently extending the window.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ValidationError


class TimeWeightedMetrics:
    """Exact integrals of piecewise-constant signals.

    Usage::

        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(t1, utilization=0.5, violation=0.0)
        metrics.observe(t2, utilization=0.8, violation=1.0)
        metrics.finalize(horizon)
        metrics.mean("utilization")
    """

    def __init__(self, start: float = 0.0) -> None:
        self._start = start
        self._last_time = start
        self._last_values: Dict[str, float] = {}
        self._integrals: Dict[str, float] = {}
        self._first_seen: Dict[str, float] = {}
        self._finalized = False

    def observe(self, time: float, **signals: float) -> None:
        """Record the signal values holding from ``time`` onwards.

        A signal appearing here for the first time after ``start`` is
        zero-filled over the preceding gap (see the module docstring);
        the gap is queryable via :meth:`zero_filled`.

        Raises:
            ValidationError: When ``time`` precedes the last
                observation, or the window is already finalized.
        """
        if self._finalized:
            raise ValidationError(
                f"window closed at {self._last_time}; cannot observe "
                f"at {time}")
        if time < self._last_time:
            raise ValidationError(
                f"observation at {time} precedes last at {self._last_time}")
        span = time - self._last_time
        for name, value in self._last_values.items():
            self._integrals[name] = self._integrals.get(name, 0.0) \
                + value * span
        self._last_time = time
        self._last_values.update(signals)
        for name in signals:
            self._integrals.setdefault(name, 0.0)
            self._first_seen.setdefault(name, time)

    def finalize(self, end: float) -> None:
        """Close the window at ``end`` (integrating the last values).

        Raises:
            ValidationError: On a second ``finalize`` — the window
                boundary is part of every reported mean, so moving it
                silently would corrupt already-read results.
        """
        if self._finalized:
            raise ValidationError(
                f"window already finalized at {self._last_time}; "
                f"cannot re-finalize at {end}")
        self.observe(end)
        self._finalized = True

    @property
    def finalized(self) -> bool:
        """Whether the window has been closed."""
        return self._finalized

    @property
    def elapsed(self) -> float:
        """Window length so far."""
        return self._last_time - self._start

    def first_observed(self, name: str) -> Optional[float]:
        """When the signal was first observed (``None`` if never)."""
        return self._first_seen.get(name)

    def zero_filled(self, name: str) -> float:
        """Length of the zero-filled lead-in gap ``[start, first)``.

        0 for signals present from the window start (and for signals
        never observed, whose integral is 0 anyway).
        """
        first = self._first_seen.get(name)
        if first is None:
            return 0.0
        return max(0.0, first - self._start)

    def integral(self, name: str) -> float:
        """The signal's integral over the window."""
        return self._integrals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Time-average of the signal (0 for an empty window)."""
        if self.elapsed <= 0:
            return 0.0
        return self.integral(name) / self.elapsed
