"""Exporters: JSONL event stream, span trees, Prometheus snapshot.

These render the three telemetry surfaces into deterministic text so
the CLI (``repro telemetry`` / ``repro quickstart --telemetry``) can
emit a Figure-6-style activity report, and so tests can diff the
output byte-for-byte across same-seed runs.
"""

from __future__ import annotations

from typing import List

from .events import EventStream
from .metrics import MetricsRegistry
from .spans import Tracer


def events_jsonl(stream: EventStream) -> str:
    """The event stream as JSON-lines (sorted keys, deterministic)."""
    return stream.to_jsonl()


def span_tree(tracer: Tracer) -> str:
    """All span trees as indented text, one block per trace."""
    return tracer.render_tree()


def prometheus_snapshot(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    return registry.render_prometheus()


def figure6_report(telemetry: "object", *, title: str = "telemetry"
                   ) -> str:
    """A combined activity report: spans, metrics, then raw events.

    ``telemetry`` is the hub (duck-typed: ``tracer``, ``metrics``,
    ``stream``). Sections are separated with underlined headers so the
    report reads like the paper's Figure 6 activity timeline plus the
    capacity/SLA dashboard.
    """
    sections: List[str] = []

    def heading(text: str) -> None:
        sections.append(f"{text}\n{'-' * len(text)}")

    heading(f"{title}: span trees")
    sections.append(span_tree(telemetry.tracer) or "(no spans)")
    heading(f"{title}: metrics snapshot")
    sections.append(prometheus_snapshot(telemetry.metrics)
                    or "(no metrics)")
    heading(f"{title}: event stream (JSONL)")
    sections.append(events_jsonl(telemetry.stream) or "(no events)")
    return "\n\n".join(sections)
