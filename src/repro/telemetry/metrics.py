"""The metrics registry: counters, gauges, histograms, time-weighted
gauges, keyed by ``(name, labels)``.

Naming follows the Prometheus conventions: ``repro_<subsystem>_<what>``
with ``_total`` suffixing monotone counters; labels hold the low-
cardinality dimensions (pool, tier, action, op). The registry is the
*single* counting mechanism for cross-cutting operational stats —
components must not keep private ``self.foo += 1`` counters for them
(enforced by lint rule QLNT113).

Time-weighted gauges wrap
:class:`~repro.telemetry.timeweighted.TimeWeightedMetrics` so the
exported means are exact integrals of the piecewise-constant signal on
the *simulation* clock, not sample averages.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ValidationError
from .timeweighted import TimeWeightedMetrics

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default duration buckets (sim time units), roughly logarithmic.
DEFAULT_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0)

_LabelTuple = Tuple[Tuple[str, str], ...]
_Key = Tuple[str, _LabelTuple]


class Counter:
    """A monotone counter."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValidationError(
                f"counter increments must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta``."""
        self.value += delta


class Histogram:
    """A fixed-bucket histogram (cumulative at render time)."""

    def __init__(self, buckets: "Tuple[float, ...]" = DEFAULT_BUCKETS
                 ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValidationError(
                f"histogram buckets must be a sorted non-empty "
                f"sequence: {buckets}")
        self.buckets = tuple(float(bound) for bound in buckets)
        #: One count per finite bucket, plus the +Inf overflow bucket.
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> "List[Tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        result = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            result.append((bound, running))
        result.append((float("inf"), running + self.counts[-1]))
        return result


class TimeWeightedGauge:
    """A gauge whose mean is an exact time-weighted integral.

    The underlying window opens lazily at the first :meth:`set`, so a
    gauge created late does not dilute its mean with a zero-filled
    lead-in (see
    :meth:`~repro.telemetry.timeweighted.TimeWeightedMetrics.observe`
    for the shared-window semantics this avoids).
    """

    def __init__(self, now: Callable[[], float]) -> None:
        self._now = now
        self._window: Optional[TimeWeightedMetrics] = None
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the value holding from now onwards."""
        time = self._now()
        if self._window is None:
            self._window = TimeWeightedMetrics(start=time)
        self._window.observe(time, value=float(value))
        self.value = float(value)

    def mean(self) -> float:
        """Time-weighted mean from the first set to now."""
        if self._window is None:
            return 0.0
        self._window.observe(self._now())
        return self._window.mean("value")


class MetricsRegistry:
    """Counters, gauges and histograms keyed by ``(name, labels)``.

    Args:
        now: Clock callable feeding the time-weighted gauges; a
            registry built without one treats every instant as ``t=0``
            (plain counters and gauges are unaffected).
    """

    def __init__(self, now: Optional[Callable[[], float]] = None) -> None:
        self._now = now if now is not None else (lambda: 0.0)
        self._kinds: Dict[str, str] = {}
        self._counters: "Dict[_Key, Counter]" = {}
        self._gauges: "Dict[_Key, Gauge]" = {}
        self._histograms: "Dict[_Key, Histogram]" = {}
        self._time_gauges: "Dict[_Key, TimeWeightedGauge]" = {}

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    def _key(self, name: str, kind: str, labels: "Dict[str, Any]") -> _Key:
        if not _NAME_RE.match(name):
            raise ValidationError(f"invalid metric name: {name!r}")
        declared = self._kinds.setdefault(name, kind)
        if declared != kind:
            raise ValidationError(
                f"metric {name!r} already registered as a {declared}, "
                f"cannot reuse it as a {kind}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValidationError(f"invalid label name: {label!r}")
        return name, tuple(sorted(
            (label, str(value)) for label, value in labels.items()))

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create a counter."""
        key = self._key(name, "counter", labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create a gauge."""
        key = self._key(name, "gauge", labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: "Tuple[float, ...]" = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        key = self._key(name, "histogram", labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(buckets)
        return instrument

    def time_gauge(self, name: str, **labels: Any) -> TimeWeightedGauge:
        """Get or create a time-weighted gauge."""
        key = self._key(name, "timegauge", labels)
        instrument = self._time_gauges.get(key)
        if instrument is None:
            instrument = self._time_gauges[key] = TimeWeightedGauge(
                self._now)
        return instrument

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """A counter's value (0 when never incremented)."""
        key = self._key(name, "counter", labels)
        instrument = self._counters.get(key)
        return instrument.value if instrument is not None else 0.0

    def gauge_value(self, name: str, **labels: Any) -> float:
        """A gauge's value (0 when never set)."""
        key = self._key(name, "gauge", labels)
        instrument = self._gauges.get(key)
        return instrument.value if instrument is not None else 0.0

    def as_dict(self) -> "Dict[str, float]":
        """Flat snapshot ``"name{a=b}" -> value`` for assertions."""
        data: Dict[str, float] = {}
        for (name, labels), counter in self._counters.items():
            data[_flat(name, labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            data[_flat(name, labels)] = gauge.value
        for (name, labels), tw in self._time_gauges.items():
            data[_flat(name, labels)] = tw.value
            data[_flat(name + "_timeweighted_mean", labels)] = tw.mean()
        for (name, labels), histogram in self._histograms.items():
            data[_flat(name + "_count", labels)] = float(histogram.count)
            data[_flat(name + "_sum", labels)] = histogram.sum
        return data

    def render_prometheus(self) -> str:
        """Prometheus text-exposition snapshot (sorted, deterministic).

        Time-weighted gauges export two series: the current value under
        their own name and the exact time-weighted mean under
        ``<name>_timeweighted_mean``.
        """
        families: "Dict[str, Tuple[str, List[str]]]" = {}

        def row(family: str, kind: str, name: str, labels: _LabelTuple,
                value: float,
                extra: "Tuple[Tuple[str, str], ...]" = ()) -> None:
            pairs = tuple(sorted(labels + extra))
            rendered = name
            if pairs:
                body = ",".join(f'{label}="{_escape(text)}"'
                                for label, text in pairs)
                rendered = f"{name}{{{body}}}"
            families.setdefault(family, (kind, []))[1].append(
                f"{rendered} {value:g}")

        for (name, labels), counter in sorted(self._counters.items()):
            row(name, "counter", name, labels, counter.value)
        for (name, labels), gauge in sorted(self._gauges.items()):
            row(name, "gauge", name, labels, gauge.value)
        for (name, labels), tw in sorted(self._time_gauges.items()):
            row(name, "gauge", name, labels, tw.value)
            row(name + "_timeweighted_mean", "gauge",
                name + "_timeweighted_mean", labels, tw.mean())
        for (name, labels), histogram in sorted(self._histograms.items()):
            for bound, cumulative in histogram.cumulative():
                le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                row(name, "histogram", name + "_bucket", labels,
                    float(cumulative), (("le", le),))
            row(name, "histogram", name + "_sum", labels, histogram.sum)
            row(name, "histogram", name + "_count", labels,
                float(histogram.count))

        lines: List[str] = []
        for family in sorted(families):
            kind, rows = families[family]
            lines.append(f"# TYPE {family} {kind}")
            lines.extend(rows)
        return "\n".join(lines)


def _flat(name: str, labels: _LabelTuple) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{rendered}}}"


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))
