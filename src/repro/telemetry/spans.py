"""Deterministic spans with parent/child causality.

A :class:`Span` covers one operation on the simulation clock; spans
nest through an explicit context stack kept by the :class:`Tracer`,
and cross *process-boundary* legs (bus envelopes) by carrying the
``trace_id``/``span_id`` pair in the envelope headers — the receiving
side opens its handler span with the sender's span as an explicit
remote parent. One admission or adaptation episode is therefore a
single connected tree even when the transport drops, duplicates or
retries legs: every retry is a fresh child span under the caller's
``call:`` span, and every delivery (including a duplicate) is a
``handle:`` span under the request leg that carried it.

Identifiers are per-tracer counters (``trace-1``, ``span-1``, …), so
a fixed seed yields byte-identical span trees; no wall clock, no
process-global state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .events import EventStream


@dataclass
class Span:
    """One timed operation in a trace.

    Attributes:
        trace_id: The episode this span belongs to.
        span_id: Unique id within the tracer.
        parent_id: The causally-enclosing span (``None`` for roots).
        name: Operation name, e.g. ``"request:service_request"``.
        component: The acting component, e.g. ``"aqos-broker"``.
        start: Sim time the operation began.
        end: Sim time it finished (``None`` while open).
        status: ``"ok"``, or ``"error:<ExceptionName>"``.
        attributes: Structured payload (message ids, attempt counts…).
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    component: str
    start: float
    end: Optional[float] = None
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed sim time (0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start


class Tracer:
    """Creates, nests and finishes spans on the simulation clock.

    Args:
        now: Clock callable (``lambda: sim.now``).
        stream: Optional shared event stream; every finished span is
            emitted there under the ``"span"`` category, so the JSONL
            export carries the full causality record.
    """

    def __init__(self, now: Callable[[], float],
                 stream: Optional[EventStream] = None) -> None:
        self._now = now
        self._stream = stream
        self._trace_counter = 0
        self._span_counter = 0
        self._stack: List[Span] = []
        self._spans: List[Span] = []

    # ------------------------------------------------------------------
    # Creation / completion
    # ------------------------------------------------------------------

    def current(self) -> Optional[Span]:
        """The innermost open span on the context stack."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, *, component: str = "",
              trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              **attributes: Any) -> Span:
        """Open a span.

        Without an explicit ``trace_id``/``parent_id`` the span parents
        to the current context span (same trace); with neither context
        nor explicit ids it roots a fresh trace. Explicit ids are how
        a bus delivery resumes the *sender's* trace (remote parent).
        """
        parent = self.current()
        if parent_id is None and trace_id is None and parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        if trace_id is None:
            self._trace_counter += 1
            trace_id = f"trace-{self._trace_counter}"
        self._span_counter += 1
        span = Span(trace_id=trace_id, span_id=f"span-{self._span_counter}",
                    parent_id=parent_id, name=name, component=component,
                    start=self._now(), attributes=dict(attributes))
        self._spans.append(span)
        return span

    def finish(self, span: Span, *, status: Optional[str] = None) -> None:
        """Close a span (idempotent) and emit it to the event stream."""
        if span.end is not None:
            return
        if status is not None:
            span.status = status
        span.end = self._now()
        if self._stream is not None:
            self._stream.emit(
                span.end, "span",
                f"{span.component or '?'}: {span.name} ({span.status})",
                trace_id=span.trace_id, span_id=span.span_id,
                parent_id=span.parent_id or "", start=span.start,
                duration=span.duration, **span.attributes)

    @contextmanager
    def span(self, name: str, *, component: str = "",
             trace_id: Optional[str] = None,
             parent_id: Optional[str] = None,
             **attributes: Any) -> Iterator[Span]:
        """Open a span, push it as the context, close it on exit.

        An exception escaping the block marks the span
        ``error:<ExceptionName>`` and re-raises — failed legs stay in
        the tree with their failure mode visible.
        """
        opened = self.start(name, component=component, trace_id=trace_id,
                            parent_id=parent_id, **attributes)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException as error:
            self.finish(opened, status=f"error:{type(error).__name__}")
            raise
        finally:
            self._stack.remove(opened)
            self.finish(opened)

    # ------------------------------------------------------------------
    # Introspection / rendering
    # ------------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All spans, in creation order (a copy)."""
        return list(self._spans)

    def trace(self, trace_id: str) -> List[Span]:
        """Spans of one trace, in creation order."""
        return [span for span in self._spans if span.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids, in first-seen order."""
        seen: "Dict[str, None]" = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def render_tree(self, trace_id: Optional[str] = None) -> str:
        """Render span trees as indented text (one block per trace)."""
        trace_ids = ([trace_id] if trace_id is not None
                     else self.trace_ids())
        lines: List[str] = []
        for tid in trace_ids:
            spans = self.trace(tid)
            by_parent: Dict[Optional[str], List[Span]] = {}
            ids = {span.span_id for span in spans}
            for span in spans:
                parent = (span.parent_id
                          if span.parent_id in ids else None)
                by_parent.setdefault(parent, []).append(span)
            lines.append(f"trace {tid}")

            def walk(parent: Optional[str], depth: int) -> None:
                for span in by_parent.get(parent, []):
                    end = ("..." if span.end is None
                           else f"{span.end:g}")
                    attrs = "".join(
                        f" {key}={span.attributes[key]}"
                        for key in sorted(span.attributes))
                    lines.append(
                        f"{'  ' * (depth + 1)}[{span.start:g} .. {end}] "
                        f"{span.component or '?'}: {span.name} "
                        f"({span.status}){attrs}")
                    walk(span.span_id, depth + 1)

            walk(None, 0)
        return "\n".join(lines)
