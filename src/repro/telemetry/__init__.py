"""Deterministic telemetry: spans, metrics, and exporters.

The :class:`Telemetry` hub bundles the three surfaces behind one
handle that components can hold as an optional attribute:

* :attr:`Telemetry.tracer` — sim-clock spans with parent/child
  causality that propagates across bus legs (see
  :mod:`repro.telemetry.spans`);
* :attr:`Telemetry.metrics` — the counters/gauges/histograms registry
  (see :mod:`repro.telemetry.metrics`);
* :attr:`Telemetry.stream` — the shared append-only event log behind
  both the legacy trace and the span export (see
  :mod:`repro.telemetry.events`).

Instrumentation is zero-cost when disabled: components default their
``telemetry`` attribute to ``None`` and guard every hook with a single
``is not None`` check, so the PR-1 hot paths pay one attribute load
when telemetry is off.

The hub *adopts* existing infrastructure rather than replacing it —
pass the broker's registry and the trace recorder's stream so there is
exactly one counting mechanism and one event log per testbed.
"""

from __future__ import annotations

from typing import Callable, Optional

from .capacity import CapacityGauges
from .events import EventStream, TelemetryEvent
from .export import (events_jsonl, figure6_report, prometheus_snapshot,
                     span_tree)
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, TimeWeightedGauge)
from .spans import Span, Tracer
from .timeweighted import TimeWeightedMetrics

__all__ = [
    "CapacityGauges",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventStream",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TelemetryEvent",
    "TimeWeightedGauge",
    "TimeWeightedMetrics",
    "Tracer",
    "events_jsonl",
    "figure6_report",
    "prometheus_snapshot",
    "span_tree",
]


class Telemetry:
    """The telemetry hub: one tracer, one registry, one event stream.

    Args:
        now: Clock callable (``lambda: sim.now``).
        stream: Existing event stream to adopt (e.g. the testbed trace
            recorder's); a fresh one is created when omitted.
        metrics: Existing registry to adopt (e.g. the broker's); a
            fresh one is created when omitted.
    """

    def __init__(self, now: Callable[[], float], *,
                 stream: Optional[EventStream] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.now = now
        self.stream = stream if stream is not None else EventStream()
        self.metrics = (metrics if metrics is not None
                        else MetricsRegistry(now=now))
        self.tracer = Tracer(now, stream=self.stream)
        self.capacity = CapacityGauges(self.metrics)

    def report(self, *, title: str = "telemetry") -> str:
        """The combined Figure-6-style activity report."""
        return figure6_report(self, title=title)
