"""The shared telemetry event stream.

One :class:`EventStream` is the single append-only log behind the
whole observability surface: every trace row the components record,
every finished span the tracer closes, lands here as a
:class:`TelemetryEvent`. The legacy
:class:`~repro.sim.trace.TraceRecorder` is a thin view over this
stream (it aliases :class:`TelemetryEvent` as ``TraceEntry``), so
there is exactly one log, not a bespoke trace plus a parallel
telemetry feed.

Timestamps are **simulation** time — the stream never touches the
wall clock, which is what keeps the exported JSONL byte-deterministic
for a fixed seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List


@dataclass(frozen=True)
class TelemetryEvent:
    """One event row.

    Attributes:
        time: Simulation time of the action.
        category: Coarse grouping, e.g. ``"negotiation"``, ``"gara"``,
            ``"span"``.
        message: Human-readable description.
        details: Structured payload for programmatic assertions.
    """

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)


class EventStream:
    """An append-only, shareable log of telemetry events."""

    def __init__(self) -> None:
        self._events: List[TelemetryEvent] = []

    def emit(self, time: float, category: str, message: str,
             **details: Any) -> TelemetryEvent:
        """Append a new event and return it."""
        event = TelemetryEvent(time=time, category=category,
                               message=message, details=dict(details))
        self._events.append(event)
        return event

    def append(self, event: TelemetryEvent) -> TelemetryEvent:
        """Append an existing event (stream-migration helper)."""
        self._events.append(event)
        return event

    @property
    def events(self) -> List[TelemetryEvent]:
        """All events, in order (a copy; safe to mutate)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TelemetryEvent]:
        return iter(self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()

    def to_jsonl(self) -> str:
        """Render the stream as one JSON object per line.

        Keys are sorted and non-JSON detail values are stringified, so
        equal streams always serialize to equal bytes.
        """
        lines = []
        for event in self._events:
            lines.append(json.dumps(
                {"time": event.time, "category": event.category,
                 "message": event.message, "details": event.details},
                sort_keys=True, default=str))
        return "\n".join(lines)
