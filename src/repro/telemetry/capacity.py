"""Capacity gauges fed by the partition's rebalance reports.

Every :meth:`~repro.core.capacity.CapacityPartition.rebalance` pass
produces a :class:`~repro.core.capacity.RebalanceReport`; wired as the
partition's observer, :class:`CapacityGauges` turns each report into
the Figure-6 dashboard quantities:

* ``repro_capacity_effective{pool}`` — effective Cg/Ca/Cb after
  failures (time-weighted, so the exported mean is the exact
  occupancy-over-time integral);
* ``repro_capacity_allocated{pool,tier}`` — what each pool supplies to
  the guaranteed / excess / best-effort tiers (borrowing made visible:
  a non-zero ``{pool="a",tier="guaranteed"}`` is ``Adapt()`` at work);
* ``repro_capacity_adapt_transfer`` / ``repro_capacity_utilization`` /
  ``repro_capacity_failed`` — the Section 5.6 timeline signals;
* shortfall and preemption counters for the violation bookkeeping.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry

#: Partition pool keys in report order (Cg, Ca, Cb).
POOLS = ("g", "a", "b")


class CapacityGauges:
    """Translates rebalance reports into registry gauges/counters.

    The partition and report are duck-typed (``effective_sizes()``,
    ``utilization()``, ``failed``; ``pools``, ``shortfalls``,
    ``preempted``, ``adapt_transfer``) so this module never imports
    :mod:`repro.core`.
    """

    def __init__(self, metrics: MetricsRegistry) -> None:
        self.metrics = metrics

    def on_rebalance(self, partition: object, report: object) -> None:
        """Record one rebalance outcome (the partition observer hook)."""
        if report is None:
            report = partition.last_report
        if report is None:
            return
        metrics = self.metrics
        effective = partition.effective_sizes()
        for pool_key, size, usage in zip(POOLS, effective, report.pools):
            metrics.time_gauge("repro_capacity_effective",
                               pool=pool_key).set(size)
            for tier, supplied in (("guaranteed", usage.guaranteed),
                                   ("excess", usage.excess),
                                   ("best_effort", usage.best_effort)):
                metrics.time_gauge("repro_capacity_allocated",
                                   pool=pool_key, tier=tier).set(supplied)
            metrics.time_gauge("repro_capacity_idle",
                               pool=pool_key).set(usage.idle)
        metrics.time_gauge("repro_capacity_adapt_transfer").set(
            report.adapt_transfer)
        metrics.time_gauge("repro_capacity_utilization").set(
            partition.utilization())
        metrics.time_gauge("repro_capacity_failed").set(partition.failed)
        metrics.gauge("repro_capacity_shortfall").set(
            sum(report.shortfalls.values()))
        metrics.counter("repro_capacity_rebalances_total").inc()
        if report.shortfalls:
            metrics.counter("repro_capacity_shortfall_events_total").inc()
        if report.preempted:
            metrics.counter("repro_capacity_preemptions_total").inc(
                float(len(report.preempted)))

    def prime(self, partition: object,
              report: Optional[object] = None) -> None:
        """Record the current partition state (installation helper)."""
        self.on_rebalance(partition, report)
