"""Time-ordered event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``: earlier times
first, then lower priority numbers, then insertion order. The sequence
tiebreak makes simulations fully deterministic — two events scheduled
for the same instant always fire in the order they were scheduled.

The heap itself holds flat ``(time, priority, seq)`` tuples, not
:class:`Event` objects: tuple comparisons run at C speed and the sift
operations never call back into Python, which matters when the broker
schedules tens of thousands of window-end events. The ``seq`` component
keys a side table mapping back to the :class:`Event` handle; cancelling
an event removes it from the side table, so dead heap entries are
discarded on pop/peek without touching the handle again.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError

#: Priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at an instant.
PRIORITY_HIGH = -10
#: Priority for sampling/metric events that must observe a settled instant.
PRIORITY_LOW = 10


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time at which the event fires.
        priority: Lower numbers fire first within the same instant.
        seq: Insertion sequence number (engine-assigned tiebreak).
        action: Zero-argument callable run when the event fires.
        label: Human-readable tag for traces and debugging.
        cancelled: Whether the event was cancelled before firing.
    """

    __slots__ = ("time", "priority", "seq", "action", "label", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 action: Callable[[], Any], label: str = "",
                 cancelled: bool = False) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.label = label
        self.cancelled = cancelled

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> "Tuple[float, int, int]":
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.sort_key == other.sort_key
                and self.action == other.action
                and self.label == other.label)

    def __repr__(self) -> str:
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, action={self.action!r}, "
                f"label={self.label!r}, cancelled={self.cancelled!r})")


class EventQueue:
    """A binary-heap event queue with lazy cancellation.

    The heap stores bare ``(time, priority, seq)`` tuples; ``_events``
    maps each live ``seq`` to its :class:`Event`. Cancellation removes
    the side-table entry and leaves the tuple in the heap — pop and
    peek skip tuples whose ``seq`` is no longer mapped (or whose event
    was cancelled directly via :meth:`Event.cancel`).
    """

    def __init__(self) -> None:
        self._heap: "List[Tuple[float, int, int]]" = []
        self._events: "Dict[int, Event]" = {}
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def push(self, time: float, action: Callable[[], Any], *,
             priority: int = PRIORITY_NORMAL, label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, action, label)
        self._events[seq] = event
        heapq.heappush(self._heap, (time, priority, seq))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._events.pop(event.seq, None)
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: If the queue is empty.
        """
        heap = self._heap
        events = self._events
        while heap:
            seq = heapq.heappop(heap)[2]
            event = events.pop(seq, None)
            if event is None or event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        heap = self._heap
        events = self._events
        while heap:
            head = heap[0]
            event = events.get(head[2])
            if event is not None and not event.cancelled:
                return head[0]
            heapq.heappop(heap)
            if event is not None:
                del events[head[2]]
        return None
