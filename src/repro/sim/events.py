"""Time-ordered event queue for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``: earlier times
first, then lower priority numbers, then insertion order. The sequence
tiebreak makes simulations fully deterministic — two events scheduled
for the same instant always fire in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SimulationError

#: Priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping that must run before normal events at an instant.
PRIORITY_HIGH = -10
#: Priority for sampling/metric events that must observe a settled instant.
PRIORITY_LOW = 10


@dataclass(order=False)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time at which the event fires.
        priority: Lower numbers fire first within the same instant.
        seq: Insertion sequence number (engine-assigned tiebreak).
        action: Zero-argument callable run when the event fires.
        label: Human-readable tag for traces and debugging.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any]
    label: str = ""
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it is popped."""
        self.cancelled = True

    @property
    def sort_key(self) -> "tuple[float, int, int]":
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key


class EventQueue:
    """A binary-heap event queue with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: "list[Event]" = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events."""
        return self._live

    def push(self, time: float, action: Callable[[], Any], *,
             priority: int = PRIORITY_NORMAL, label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time=time, priority=priority,
                      seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if already cancelled)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            SimulationError: If the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise SimulationError("pop from an empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
