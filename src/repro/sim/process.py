"""Generator-based simulation processes.

A process is a Python generator that yields :class:`Timeout` objects;
the engine resumes it when the timeout elapses. This is the natural way
to express session workloads ("arrive, hold resources for d time units,
depart") without hand-writing callback chains.

Example::

    def session(sim, broker):
        yield Timeout(2.0)          # think time
        sla = broker.request(...)
        yield Timeout(sla.duration) # hold the allocation
        broker.release(sla)

    sim.spawn(session(sim, broker))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import SimulationError


@dataclass(frozen=True)
class Timeout:
    """Yielded by a process to sleep for ``delay`` simulation time units."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SimulationError(f"negative timeout: {self.delay}")


class Process:
    """A running generator process bound to a simulator.

    The process starts when :meth:`start` is called (``Simulator.spawn``
    does this) and finishes when the generator returns or raises
    ``StopIteration``. Exceptions other than ``StopIteration`` propagate
    out of the engine's ``run`` loop — a failed process fails the
    simulation, loudly.
    """

    def __init__(self, sim, generator: Iterator, *, label: str = "") -> None:
        self._sim = sim
        self._generator = generator
        self.label = label
        self.finished = False
        self.result: Optional[Any] = None
        self._pending_event = None

    def start(self) -> None:
        """Schedule the first resumption at the current instant."""
        self._pending_event = self._sim.schedule(
            0.0, self._resume, label=self.label and f"{self.label}:start")

    def interrupt(self) -> None:
        """Stop the process before its next resumption."""
        if self._pending_event is not None:
            self._sim.cancel(self._pending_event)
            self._pending_event = None
        if not self.finished:
            self.finished = True
            self._generator.close()

    def _resume(self) -> None:
        self._pending_event = None
        if self.finished:
            return
        try:
            yielded = next(self._generator)
        except StopIteration as stop:
            self.finished = True
            self.result = getattr(stop, "value", None)
            return
        if not isinstance(yielded, Timeout):
            raise SimulationError(
                f"process {self.label or self._generator!r} yielded "
                f"{yielded!r}; processes must yield Timeout objects")
        self._pending_event = self._sim.schedule(
            yielded.delay, self._resume,
            label=self.label and f"{self.label}:resume")
