"""Structured trace recording.

Experiments and the Figure 2 sequence-diagram reproduction need an
auditable record of "who did what when". Components append rows to a
shared :class:`TraceRecorder`; the experiment harness renders them as
the broker activity log (the paper's Figure 6 screenshot) or filters
them for assertions.

The recorder is a thin view over the telemetry
:class:`~repro.telemetry.events.EventStream` — there is exactly one
append-only log per testbed, shared with the span layer, and
``TraceEntry`` is an alias of
:class:`~repro.telemetry.events.TelemetryEvent`.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional

from ..telemetry.events import EventStream, TelemetryEvent

#: Backwards-compatible alias: trace rows ARE telemetry events.
TraceEntry = TelemetryEvent


class TraceRecorder:
    """An append-only, filterable log of simulation activity.

    Args:
        stream: Event stream to record into; owns a fresh one when
            omitted. Pass the telemetry hub's stream to interleave
            component trace rows with finished spans in one log.
    """

    def __init__(self, stream: Optional[EventStream] = None) -> None:
        self._stream = stream if stream is not None else EventStream()

    @property
    def stream(self) -> EventStream:
        """The underlying shared event stream."""
        return self._stream

    def record(self, time: float, category: str, message: str,
               **details: Any) -> TraceEntry:
        """Append a row and return it."""
        return self._stream.emit(time, category, message, **details)

    def __len__(self) -> int:
        return len(self._stream)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._stream)

    @property
    def entries(self) -> List[TraceEntry]:
        """All rows, in order (a copy; safe to mutate)."""
        return self._stream.events

    def filter(self, category: Optional[str] = None,
               contains: Optional[str] = None) -> List[TraceEntry]:
        """Rows matching a category and/or a message substring."""
        result: List[TraceEntry] = self._stream.events
        if category is not None:
            result = [entry for entry in result if entry.category == category]
        if contains is not None:
            result = [entry for entry in result if contains in entry.message]
        return list(result)

    def categories(self) -> List[str]:
        """Distinct categories, in first-seen order."""
        seen: "dict[str, None]" = {}
        for entry in self._stream:
            seen.setdefault(entry.category, None)
        return list(seen)

    def render(self, *, width: int = 78) -> str:
        """Render the log as text (the Figure 6 'broker activities' view)."""
        lines = []
        for entry in self._stream:
            prefix = f"[{entry.time:10.3f}] {entry.category:<14} "
            body = entry.message
            lines.append((prefix + body)[:width * 4])
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all recorded rows."""
        self._stream.clear()
