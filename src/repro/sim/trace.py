"""Structured trace recording.

Experiments and the Figure 2 sequence-diagram reproduction need an
auditable record of "who did what when". Components append
:class:`TraceEntry` rows to a shared :class:`TraceRecorder`; the
experiment harness renders them as the broker activity log (the paper's
Figure 6 screenshot) or filters them for assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEntry:
    """One trace row.

    Attributes:
        time: Simulation time of the action.
        category: Coarse grouping, e.g. ``"negotiation"``, ``"gara"``.
        message: Human-readable description.
        details: Structured payload for programmatic assertions.
    """

    time: float
    category: str
    message: str
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """An append-only, filterable log of simulation activity."""

    def __init__(self) -> None:
        self._entries: List[TraceEntry] = []

    def record(self, time: float, category: str, message: str,
               **details: Any) -> TraceEntry:
        """Append a row and return it."""
        entry = TraceEntry(time=time, category=category,
                           message=message, details=dict(details))
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self._entries)

    @property
    def entries(self) -> List[TraceEntry]:
        """All rows, in order (a copy; safe to mutate)."""
        return list(self._entries)

    def filter(self, category: Optional[str] = None,
               contains: Optional[str] = None) -> List[TraceEntry]:
        """Rows matching a category and/or a message substring."""
        result = self._entries
        if category is not None:
            result = [entry for entry in result if entry.category == category]
        if contains is not None:
            result = [entry for entry in result if contains in entry.message]
        return list(result)

    def categories(self) -> List[str]:
        """Distinct categories, in first-seen order."""
        seen: "dict[str, None]" = {}
        for entry in self._entries:
            seen.setdefault(entry.category, None)
        return list(seen)

    def render(self, *, width: int = 78) -> str:
        """Render the log as text (the Figure 6 'broker activities' view)."""
        lines = []
        for entry in self._entries:
            prefix = f"[{entry.time:10.3f}] {entry.category:<14} "
            body = entry.message
            lines.append((prefix + body)[:width * 4])
        return "\n".join(lines)

    def clear(self) -> None:
        """Drop all recorded rows."""
        self._entries.clear()
