"""Seeded randomness for workloads and failure injection.

All stochastic behaviour in the library flows through a
:class:`RandomSource` so that every experiment is reproducible from a
single integer seed. Named substreams (``source.stream("arrivals")``)
decorrelate subsystems: changing how many samples the failure injector
draws does not perturb the arrival process.
"""

from __future__ import annotations

import random as _random
from typing import List, Sequence, TypeVar
from ..errors import ValidationError

T = TypeVar("T")


class RandomSource:
    """A seeded random stream with the distributions workloads need."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = _random.Random(seed)
        self._streams: "dict[str, RandomSource]" = {}

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> "RandomSource":
        """A decorrelated child stream, keyed deterministically by name."""
        if name not in self._streams:
            self._streams[name] = RandomSource(_stable_child_seed(self._seed, name))
        return self._streams[name]

    def uniform(self, low: float, high: float) -> float:
        """Uniform sample in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponential sample with the given mean (mean > 0)."""
        if mean <= 0:
            raise ValidationError(f"exponential mean must be positive: {mean}")
        return self._rng.expovariate(1.0 / mean)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto sample: heavy-tailed service durations."""
        if shape <= 0 or scale <= 0:
            raise ValidationError("pareto shape and scale must be positive")
        return scale * self._rng.paretovariate(shape)

    def normal(self, mean: float, stddev: float) -> float:
        """Gaussian sample."""
        return self._rng.gauss(mean, stddev)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._rng.choice(items)

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        """Weighted choice from a non-empty sequence."""
        return self._rng.choices(items, weights=weights, k=1)[0]

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """``k`` distinct items drawn without replacement."""
        return self._rng.sample(list(items), k)

    def shuffle(self, items: Sequence[T]) -> List[T]:
        """A shuffled copy of ``items`` (the input is not mutated)."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def probability(self, p: float) -> bool:
        """Bernoulli trial: ``True`` with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValidationError(f"probability out of [0, 1]: {p}")
        return self._rng.random() < p


def _stable_child_seed(seed: int, name: str) -> int:
    """Derive a child seed from (seed, name) stably across processes."""
    accumulator = seed & 0x7FFFFFFFFFFFFFFF
    for char in name:
        accumulator = (accumulator * 1099511628211 + ord(char)) & 0x7FFFFFFFFFFFFFFF
    return accumulator
