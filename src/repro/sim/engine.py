"""The discrete-event simulator.

A :class:`Simulator` owns the clock and the event queue. Components
(broker, resource managers, workload generators) schedule callbacks via
:meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`, and the test
or experiment harness drives the run with :meth:`Simulator.run`.

Generator-based processes (:mod:`repro.sim.process`) ride on top of the
same queue, so callback-style and process-style components mix freely.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..errors import SimulationError
from .events import Event, EventQueue, PRIORITY_NORMAL
from .trace import TraceRecorder


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        start_time: Initial value of the simulation clock.
        trace: Optional :class:`TraceRecorder`; when given, every fired
            event with a label is recorded.
    """

    def __init__(self, start_time: float = 0.0,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self.trace = trace

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def running(self) -> bool:
        """Whether :meth:`run` is currently on the call stack."""
        return self._running

    def advance(self, delta: float) -> int:
        """Let ``delta`` time units pass, firing any due events.

        Equivalent to ``run(until=now + delta)``: the clock always ends
        at ``now + delta``. Used by synchronous callers that need to
        wait on the simulation clock (e.g. a retry backoff) while the
        rest of the world keeps moving.

        Raises:
            SimulationError: On a negative delta or when called from
                inside a running event (use :attr:`running` to guard).
        """
        if delta < 0:
            raise SimulationError(f"negative advance: {delta}")
        return self.run(until=self._now + delta)

    def __len__(self) -> int:
        """Number of pending events."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], Any], *,
                 priority: int = PRIORITY_NORMAL, label: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, action,
                                priority=priority, label=label)

    def schedule_at(self, time: float, action: Callable[[], Any], *,
                    priority: int = PRIORITY_NORMAL, label: str = "") -> Event:
        """Schedule ``action`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now={self._now}")
        return self._queue.push(time, action, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Run the simulation.

        Args:
            until: Stop once the clock would pass this time; the clock is
                left at ``until``. When ``None``, run until the queue
                drains.
            max_events: Safety cap on the number of events processed.

        Returns:
            The number of events processed.

        Raises:
            SimulationError: On re-entrant ``run`` calls or when
                ``max_events`` is exceeded.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        processed = 0
        queue = self._queue
        try:
            while len(queue) > 0:
                next_time = queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    break
                event = queue.pop()
                self._now = event.time
                if self.trace is not None and event.label:
                    self.trace.record(self._now, "event", event.label)
                event.action()
                processed += 1
                if max_events is not None and processed >= max_events:
                    if len(self._queue) > 0:
                        raise SimulationError(
                            f"exceeded max_events={max_events} with "
                            f"{len(self._queue)} events still pending")
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return processed

    def step(self) -> bool:
        """Process exactly one event. Returns ``False`` when idle."""
        if len(self._queue) == 0:
            return False
        event = self._queue.pop()
        self._now = event.time
        if self.trace is not None and event.label:
            self.trace.record(self._now, "event", event.label)
        event.action()
        return True

    def spawn(self, generator: Iterable, *, label: str = "") -> "Process":
        """Start a generator-based process (see :mod:`repro.sim.process`)."""
        from .process import Process
        process = Process(self, generator, label=label)
        process.start()
        return process
