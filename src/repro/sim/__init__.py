"""Discrete-event simulation substrate.

The paper's testbed was a live Globus deployment; the reproduction
replays the same component interactions inside a deterministic
discrete-event simulator so experiments are repeatable. The engine is
deliberately small: a time-ordered event queue (:mod:`repro.sim.events`),
a simulator driving it (:mod:`repro.sim.engine`), seeded workload
distributions (:mod:`repro.sim.random`), and a structured trace recorder
(:mod:`repro.sim.trace`).
"""

from .engine import Simulator
from .events import Event, EventQueue
from .process import Process, Timeout
from .random import RandomSource
from .trace import TraceEntry, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "Process",
    "RandomSource",
    "Simulator",
    "Timeout",
    "TraceEntry",
    "TraceRecorder",
]
