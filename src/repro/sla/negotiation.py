"""The client/broker negotiation protocol.

"The AQoS and the client subsequently enter a negotiation phase aimed
at reaching mutual agreement on resource QoS levels and establishing a
Service Level Agreement" (Section 2.1). The protocol implemented here:

1. the client submits a :class:`ServiceRequest` (QoS specification,
   class, window, budget);
2. the broker responds with one or more :class:`Offer` objects —
   an operating point, a price rate, and the adaptation options that
   will be written into the SLA;
3. the client accepts (producing a :class:`~repro.sla.document.ServiceSLA`),
   rejects, or counters with a revised budget/specification, returning
   the negotiation to the offering state.

The paper's client interface exposes exactly the accept / reject /
counter choices (Figure 7's "accepting SLA offers, rejecting SLA
offers" options).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import List, Optional

from ..errors import NegotiationError
from ..qos.classes import ServiceClass
from ..qos.specification import OperatingPoint, QoSSpecification
from .document import AdaptationOptions, NetworkDemand, ServiceSLA

_negotiation_counter = itertools.count(1)


@dataclass(frozen=True)
class ServiceRequest:
    """A client's service request with QoS requirements.

    Attributes:
        client: Client name.
        service_name: Requested service (a UDDIe name or pattern).
        service_class: Desired QoS class.
        specification: Acceptable QoS (exact for guaranteed requests,
            ranges/lists for controlled load, empty for best effort).
        start, end: Desired reservation window.
        budget_rate: Maximum price rate the client will pay
            (``None`` = unconstrained).
        network: Optional network demand.
        adaptation: Adaptation options the client is willing to grant.
    """

    client: str
    service_name: str
    service_class: ServiceClass
    specification: QoSSpecification
    start: float
    end: float
    budget_rate: Optional[float] = None
    network: Optional[NetworkDemand] = None
    adaptation: AdaptationOptions = field(default_factory=AdaptationOptions)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise NegotiationError(
                f"request window ends ({self.end}) before it starts "
                f"({self.start})")

    @property
    def duration(self) -> float:
        """Requested window length."""
        return self.end - self.start


@dataclass(frozen=True)
class Offer:
    """A broker offer: one concrete quality at one price.

    Attributes:
        point: The operating point offered.
        price_rate: Revenue rate the client would pay.
        adaptation: Adaptation options that will bind the SLA.
        note: Human-readable rationale ("best quality", "degraded
            alternative", ...).
    """

    point: OperatingPoint
    price_rate: float
    adaptation: AdaptationOptions = field(default_factory=AdaptationOptions)
    note: str = ""


class NegotiationState(Enum):
    """Protocol states."""

    REQUESTED = "requested"
    OFFERED = "offered"
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    FAILED = "failed"


class Negotiation:
    """One negotiation between a client and the broker.

    The broker drives :meth:`propose`; the client drives
    :meth:`accept`, :meth:`reject` and :meth:`counter`. Transitions are
    enforced; misuse raises :class:`~repro.errors.NegotiationError`.
    """

    def __init__(self, request: ServiceRequest) -> None:
        self.negotiation_id = next(_negotiation_counter)
        self.request = request
        self.state = NegotiationState.REQUESTED
        self.offers: List[Offer] = []
        self.accepted_offer: Optional[Offer] = None
        self.rounds = 0

    def _require(self, *states: NegotiationState) -> None:
        if self.state not in states:
            expected = ", ".join(s.value for s in states)
            raise NegotiationError(
                f"negotiation {self.negotiation_id} is "
                f"{self.state.value}; expected one of: {expected}")

    # ------------------------------------------------------------------
    # Broker side
    # ------------------------------------------------------------------

    def propose(self, offers: List[Offer]) -> None:
        """Broker proposes offers (empty list fails the negotiation)."""
        self._require(NegotiationState.REQUESTED)
        if not offers:
            self.state = NegotiationState.FAILED
            return
        affordable = [offer for offer in offers
                      if self.request.budget_rate is None
                      or offer.price_rate <= self.request.budget_rate]
        if not affordable:
            self.state = NegotiationState.FAILED
            return
        self.offers = affordable
        self.state = NegotiationState.OFFERED
        self.rounds += 1

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def accept(self, offer: Optional[Offer] = None) -> Offer:
        """Client accepts an offer (the first one by default)."""
        self._require(NegotiationState.OFFERED)
        chosen = offer or self.offers[0]
        if chosen not in self.offers:
            raise NegotiationError(
                f"offer was not proposed in negotiation "
                f"{self.negotiation_id}")
        self.accepted_offer = chosen
        self.state = NegotiationState.ACCEPTED
        return chosen

    def reject(self) -> None:
        """Client walks away."""
        self._require(NegotiationState.OFFERED)
        self.state = NegotiationState.REJECTED

    def counter(self, *, budget_rate: Optional[float] = None,
                specification: Optional[QoSSpecification] = None) -> None:
        """Client revises budget and/or specification; broker must
        propose again."""
        self._require(NegotiationState.OFFERED)
        updates = {}
        if budget_rate is not None:
            updates["budget_rate"] = budget_rate
        if specification is not None:
            updates["specification"] = specification
        if not updates:
            raise NegotiationError("a counter must change something")
        self.request = replace(self.request, **updates)
        self.offers = []
        self.state = NegotiationState.REQUESTED

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    def build_sla(self, sla_id: int) -> ServiceSLA:
        """Materialise the accepted offer as an SLA document.

        Raises:
            NegotiationError: Unless the negotiation was accepted.
        """
        self._require(NegotiationState.ACCEPTED)
        assert self.accepted_offer is not None
        offer = self.accepted_offer
        return ServiceSLA(
            sla_id=sla_id,
            client=self.request.client,
            service_name=self.request.service_name,
            service_class=self.request.service_class,
            specification=self.request.specification,
            agreed_point=dict(offer.point),
            start=self.request.start,
            end=self.request.end,
            price_rate=offer.price_rate,
            network=self.request.network,
            adaptation=offer.adaptation,
        )
