"""The SLA repository.

"Once the proposed SLA is approved by the client/application, the AQoS
establishes a final SLA document and saves it in the SLA repository for
subsequent reference" (Section 3.1). The repository also hands out SLA
ids (the paper's example conformance reply references ``SLA-ID 1055``)
and answers the adaptation function's query for "the list of currently
active services" (Scenario 1).
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from ..errors import SLAError
from ..qos.classes import ServiceClass
from .document import ServiceSLA, SlaStatus


class SLARepository:
    """In-memory store of SLA documents.

    Args:
        first_id: First SLA id to assign (default 1000, so ids look
            like the paper's 1055).
    """

    def __init__(self, first_id: int = 1000) -> None:
        self._ids = itertools.count(first_id)
        self._slas: Dict[int, ServiceSLA] = {}

    def next_id(self) -> int:
        """Allocate a fresh SLA id."""
        return next(self._ids)

    def save(self, sla: ServiceSLA) -> ServiceSLA:
        """Store (or overwrite) an SLA document."""
        self._slas[sla.sla_id] = sla
        return sla

    def get(self, sla_id: int) -> ServiceSLA:
        """Look up an SLA by id.

        Raises:
            SLAError: When the id is unknown.
        """
        sla = self._slas.get(sla_id)
        if sla is None:
            raise SLAError(f"no SLA with id {sla_id}")
        return sla

    def __len__(self) -> int:
        return len(self._slas)

    def all(self) -> List[ServiceSLA]:
        """Every stored SLA, ordered by id."""
        return [self._slas[sla_id] for sla_id in sorted(self._slas)]

    def live(self) -> List[ServiceSLA]:
        """SLAs still governing resources (established or active)."""
        return [sla for sla in self.all() if sla.status.is_live]

    def active(self) -> List[ServiceSLA]:
        """SLAs whose sessions are running."""
        return [sla for sla in self.all() if sla.status is SlaStatus.ACTIVE]

    def by_client(self, client: str) -> List[ServiceSLA]:
        """All SLAs (any status) held by a client."""
        return [sla for sla in self.all() if sla.client == client]

    def by_class(self, service_class: ServiceClass,
                 live_only: bool = True) -> List[ServiceSLA]:
        """SLAs of one service class."""
        slas = self.live() if live_only else self.all()
        return [sla for sla in slas if sla.service_class is service_class]

    def degradable(self) -> List[ServiceSLA]:
        """Active SLAs whose adaptation options allow squeezing.

        This is Scenario 1's filter: "the list is filtered to include
        only those services whose SLAs indicate willingness to accept a
        degraded QoS and/or termination of service".
        """
        return [sla for sla in self.active() if sla.adaptation.is_degradable]

    def degraded(self) -> List[ServiceSLA]:
        """Active SLAs currently delivering below their agreed point.

        Scenario 2 upgrades these first when capacity frees up.
        """
        return [sla for sla in self.active() if sla.is_degraded()]

    # ------------------------------------------------------------------
    # Persistence ("saves it in the SLA repository for subsequent
    # reference", Section 3.1) — documents round-trip through the
    # Table 4 XML schema.
    # ------------------------------------------------------------------

    def resume_ids(self, after: int) -> None:
        """Resume id allocation above ``after``.

        Journal replay rebuilds documents out of band and must leave
        the counter past every id it saw, so post-recovery requests
        never collide with a pre-crash SLA.
        """
        self._ids = itertools.count(max(after, 999) + 1)

    def restore(self, other: "SLARepository") -> None:
        """Replace this repository's contents in place.

        Crash recovery rebuilds a repository from journal/snapshot XML
        and then swaps it *into* the live object, so every component
        holding a reference (verifier, gateway, broker) keeps working
        without rewiring.
        """
        self._slas.clear()
        self._slas.update(other._slas)
        self._ids = other._ids

    def export_xml(self) -> str:
        """Serialize every stored SLA as one ``<SLA_Repository>``
        document (statuses included).

        Compact string assembly over :func:`render_service_sla` —
        snapshots export the whole repository, so at 10k live SLAs the
        tree-build-then-serialize route dominates the snapshot cost.
        A property test pins the output byte-identical to
        ``ET.tostring`` of the equivalent element tree;
        :meth:`from_xml` parses both this and the older indented form.
        """
        from ..xmlmsg.codec import render_service_sla
        slas = self.all()
        if not slas:
            return "<SLA_Repository />"
        out = ["<SLA_Repository>"]
        for sla in slas:
            out.append(f'<Entry status="{sla.status.value}">')
            out.append(render_service_sla(sla))
            out.append("</Entry>")
        out.append("</SLA_Repository>")
        return "".join(out)

    @classmethod
    def from_xml(cls, text: str) -> "SLARepository":
        """Rebuild a repository from :meth:`export_xml` output.

        Statuses are restored verbatim; the id counter resumes after
        the highest stored id.
        """
        from ..errors import MessageError
        from ..xmlmsg.codec import decode_service_sla
        from ..xmlmsg.document import parse_xml
        root = parse_xml(text)
        if root.tag != "SLA_Repository":
            raise MessageError(
                f"expected <SLA_Repository>, got <{root.tag}>")
        repository = cls()
        highest = 999
        for entry in root.findall("Entry"):
            documents = entry.findall("Service_SLA")
            if len(documents) != 1:
                raise MessageError(
                    "<Entry> must hold exactly one <Service_SLA>")
            sla = decode_service_sla(documents[0])
            sla.status = SlaStatus(entry.get("status", "proposed"))
            repository.save(sla)
            highest = max(highest, sla.sla_id)
        repository._ids = itertools.count(highest + 1)
        return repository
