"""SLAs: documents, repository, negotiation, lifecycle, violations.

"With the emerging interest in service-oriented Grids, resources may be
advertised and traded as services based on a Service Level Agreement"
(abstract). This package is the SLA half of G-QoSM:

* :mod:`repro.sla.document` — the SLA document model (Tables 1 and 4),
  including the adaptation options negotiated in advance (Section 5.2).
* :mod:`repro.sla.repository` — "the AQoS establishes a final SLA
  document and saves it in the SLA repository" (Section 3.1).
* :mod:`repro.sla.negotiation` — the client/broker negotiation protocol.
* :mod:`repro.sla.lifecycle` — the Establishment / Active / Clearing
  phase machine of Figure 3.
* :mod:`repro.sla.violations` — conformance checking and penalties.
"""

from .document import (
    AdaptationOptions,
    NetworkDemand,
    ServiceSLA,
    SlaStatus,
)
from .lifecycle import Phase, QoSFunction, QoSSession
from .negotiation import Negotiation, NegotiationState, Offer, ServiceRequest
from .repository import SLARepository
from .violations import ConformanceReport, MeasuredQoS, Violation

__all__ = [
    "AdaptationOptions",
    "ConformanceReport",
    "MeasuredQoS",
    "Negotiation",
    "NegotiationState",
    "NetworkDemand",
    "Offer",
    "Phase",
    "QoSFunction",
    "QoSSession",
    "SLARepository",
    "ServiceRequest",
    "ServiceSLA",
    "SlaStatus",
    "Violation",
]
