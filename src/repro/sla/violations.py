"""SLA conformance checking and violations.

The SLA-Verif component performs "a SLA conformance test" comparing
"the actual measured QoS levels to the previously agreed QoS (in the
SLA)" (Section 3.2). :class:`MeasuredQoS` carries one measurement
snapshot; :func:`check_conformance` produces a
:class:`ConformanceReport` listing every :class:`Violation`.

Conformance semantics per dimension:

* capacity dimensions (CPU, memory, disk, bandwidth): measured must be
  at least the *delivered* operating point the provider currently owes
  (the adaptation layer may have legitimately moved a controlled-load
  session below its agreed point — that is not a violation, provided
  the point stays inside the SLA range);
* bounded observations (packet loss, delay): measured must satisfy the
  SLA's bound.

A small relative tolerance absorbs measurement noise (Table 3 reports
9.5 Mbps against a 10 Mbps SLA without raising an alarm, because the
binding constraint there was the loss bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..qos.parameters import Dimension, Direction
from .document import ServiceSLA

#: Default relative slack before a capacity shortfall counts as a
#: violation.
DEFAULT_TOLERANCE = 0.05


@dataclass(frozen=True)
class MeasuredQoS:
    """One measurement snapshot for a session.

    Attributes:
        sla_id: The measured session's SLA.
        values: Measured value per dimension.
        time: Measurement time.
    """

    sla_id: int
    values: "Dict[Dimension, float]"
    time: float = 0.0

    def get(self, dimension: Dimension) -> Optional[float]:
        """Measured value for a dimension, if present."""
        return self.values.get(dimension)


@dataclass(frozen=True)
class Violation:
    """One dimension out of conformance.

    Attributes:
        sla_id: The violated SLA.
        dimension: Which dimension failed.
        expected: What the SLA requires (delivered point or bound value).
        measured: What was observed.
        severity: Shortfall fraction in ``[0, 1]`` — 0.1 means 10%
            below requirement. For bound violations on
            lower-is-better dimensions it is the relative excess.
    """

    sla_id: int
    dimension: Dimension
    expected: float
    measured: float
    severity: float


@dataclass(frozen=True)
class ConformanceReport:
    """Result of one conformance test."""

    sla_id: int
    time: float
    violations: "Tuple[Violation, ...]"
    measured: MeasuredQoS

    @property
    def conformant(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def worst(self) -> Optional[Violation]:
        """The most severe violation, or ``None`` when conformant."""
        if not self.violations:
            return None
        return max(self.violations, key=lambda v: v.severity)


def check_conformance(sla: ServiceSLA, measured: MeasuredQoS, *,
                      tolerance: float = DEFAULT_TOLERANCE
                      ) -> ConformanceReport:
    """Compare a measurement snapshot against what the SLA owes now."""
    violations: List[Violation] = []
    for parameter in sla.specification:
        dimension = parameter.dimension
        observed = measured.get(dimension)
        if observed is None:
            continue
        if dimension.consumes_capacity:
            owed = sla.delivered_point.get(dimension)
            if owed is None or owed <= 0:
                continue
            if observed < owed * (1.0 - tolerance):
                violations.append(Violation(
                    sla_id=sla.sla_id, dimension=dimension,
                    expected=owed, measured=observed,
                    severity=min(1.0, (owed - observed) / owed)))
        else:
            ceiling = sla.agreed_point.get(dimension)
            if ceiling is None:
                continue
            if parameter.direction is Direction.LOWER_IS_BETTER \
                    and observed > ceiling:
                excess = ((observed - ceiling) / ceiling if ceiling > 0
                          else 1.0)
                violations.append(Violation(
                    sla_id=sla.sla_id, dimension=dimension,
                    expected=ceiling, measured=observed,
                    severity=min(1.0, excess)))
    violations.extend(_check_network_bounds(sla, measured))
    # A dimension can fail both the spec check and the network-bound
    # check; keep only the most severe finding per dimension.
    by_dimension: "Dict[Dimension, Violation]" = {}
    for violation in violations:
        incumbent = by_dimension.get(violation.dimension)
        if incumbent is None or violation.severity > incumbent.severity:
            by_dimension[violation.dimension] = violation
    deduped = tuple(sorted(by_dimension.values(),
                           key=lambda v: v.dimension.value))
    return ConformanceReport(sla_id=sla.sla_id, time=measured.time,
                             violations=deduped, measured=measured)


def _check_network_bounds(sla: ServiceSLA,
                          measured: MeasuredQoS) -> List[Violation]:
    """Check the Table 1 network bounds (loss / delay) when present."""
    violations: List[Violation] = []
    network = sla.network
    if network is None:
        return violations
    loss = measured.get(Dimension.PACKET_LOSS)
    if network.packet_loss_bound is not None and loss is not None:
        bound = network.packet_loss_bound
        if not bound.satisfied_by(loss):
            excess = ((loss - bound.value) / bound.value
                      if bound.value > 0 else 1.0)
            violations.append(Violation(
                sla_id=sla.sla_id, dimension=Dimension.PACKET_LOSS,
                expected=bound.value, measured=loss,
                severity=min(1.0, max(0.0, excess))))
    delay = measured.get(Dimension.DELAY_MS)
    if network.delay_bound_ms is not None and delay is not None:
        if delay > network.delay_bound_ms:
            ceiling = network.delay_bound_ms
            excess = (delay - ceiling) / ceiling if ceiling > 0 else 1.0
            violations.append(Violation(
                sla_id=sla.sla_id, dimension=Dimension.DELAY_MS,
                expected=ceiling, measured=delay,
                severity=min(1.0, excess)))
    return violations


def violation_penalty(sla: ServiceSLA, report: ConformanceReport,
                      duration: float, *,
                      penalty_rate: float = 1.0) -> float:
    """Monetary penalty for time spent in violation (Section 5.2 names
    "SLA violation penalties" among the agreed terms).

    The refund is proportional to the worst shortfall, the session's
    price rate, the violated duration, and the policy's penalty rate.
    """
    worst = report.worst()
    if worst is None or duration <= 0:
        return 0.0
    return sla.price_rate * worst.severity * duration * penalty_rate
