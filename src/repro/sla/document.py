"""The SLA document model.

An established SLA records: the service and client, the QoS class
(Section 5.1), the full QoS specification with its acceptable
ranges/lists, the *currently delivered* operating point, the network
demand (Table 1's ``<Network_QoS>`` block), the validity window, the
agreed price rate, and the adaptation options fixed at negotiation time
(Table 4's ``<Adaptation_Options>`` block) — "choosing the appropriate
adaptation strategy and its constituent parameters relies on terms that
have been agreed on, in advance, during SLA establishment"
(Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..errors import SLAError
from ..qos.classes import ServiceClass
from ..qos.specification import OperatingPoint, QoSSpecification
from ..qos.vector import ResourceVector
from ..units import Bound


@dataclass(frozen=True)
class NetworkDemand:
    """The network portion of an SLA (Table 1).

    Attributes:
        source_ip: Source endpoint address.
        dest_ip: Destination endpoint address.
        bandwidth_mbps: Agreed bandwidth.
        packet_loss_bound: e.g. ``LessThan 10%``.
        delay_bound_ms: Optional delay ceiling.
    """

    source_ip: str
    dest_ip: str
    bandwidth_mbps: float
    packet_loss_bound: Optional[Bound] = None
    delay_bound_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise SLAError(
                f"network demand needs positive bandwidth: "
                f"{self.bandwidth_mbps}")


@dataclass(frozen=True)
class AdaptationOptions:
    """Adaptation terms agreed at negotiation time (Section 5.2).

    Attributes:
        alternative_points: Fallback operating points, best-first; the
            Table 4 ``<Alternative_QoS>`` list. Adaptation may move the
            session to one of these without re-negotiation.
        accept_promotion: Whether the client accepts promotion offers
            (controlled-load only; Table 4 ``<Promotion_Offer>``).
        accept_degradation: Scenario 1 — "willingness to accept a
            degraded QoS ... to support compensation".
        accept_termination: Scenario 1 — willingness to be terminated
            outright to free resources.
    """

    alternative_points: "Tuple[OperatingPoint, ...]" = ()
    accept_promotion: bool = False
    accept_degradation: bool = False
    accept_termination: bool = False

    @property
    def is_degradable(self) -> bool:
        """Whether adaptation has any room to squeeze this session."""
        return (self.accept_degradation or self.accept_termination
                or bool(self.alternative_points))


class SlaStatus(Enum):
    """Lifecycle status of an SLA document."""

    PROPOSED = "proposed"
    ESTABLISHED = "established"
    ACTIVE = "active"
    COMPLETED = "completed"
    TERMINATED = "terminated"
    EXPIRED = "expired"

    @property
    def is_live(self) -> bool:
        """Whether the SLA still governs resources."""
        return self in (SlaStatus.ESTABLISHED, SlaStatus.ACTIVE)


@dataclass
class ServiceSLA:
    """An established (or proposed) service-level agreement.

    The document itself is mostly immutable; the mutable parts are the
    *delivered* operating point (the optimizer and adaptation move it
    inside the agreed specification) and the status.

    Attributes:
        sla_id: Repository-assigned id.
        client: Client name.
        service_name: The contracted service.
        service_class: Guaranteed / controlled-load (best-effort
            requests carry no SLA).
        specification: The acceptable QoS (ranges/lists/exact).
        agreed_point: The operating point agreed at establishment — the
            "best" quality the provider committed to aim for.
        delivered_point: The operating point currently delivered.
        network: Optional network demand.
        start, end: Validity window ("resources must be allocated over
            the duration of the experiment [t1, tn]").
        price_rate: Agreed revenue rate at the agreed point.
        adaptation: The pre-agreed adaptation options.
        status: Document status.
    """

    sla_id: int
    client: str
    service_name: str
    service_class: ServiceClass
    specification: QoSSpecification
    agreed_point: OperatingPoint
    start: float
    end: float
    price_rate: float = 0.0
    network: Optional[NetworkDemand] = None
    adaptation: AdaptationOptions = field(default_factory=AdaptationOptions)
    status: SlaStatus = SlaStatus.PROPOSED
    delivered_point: OperatingPoint = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.service_class is ServiceClass.BEST_EFFORT:
            raise SLAError("best-effort requests do not establish SLAs")
        if self.end <= self.start:
            raise SLAError(
                f"SLA window ends ({self.end}) before it starts "
                f"({self.start})")
        if not self.specification.admits(self.agreed_point):
            raise SLAError(
                f"agreed point {self.agreed_point} is outside the "
                f"specification {self.specification.describe()!r}")
        if not self.delivered_point:
            self.delivered_point = dict(self.agreed_point)

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------

    @property
    def duration(self) -> float:
        """Length of the validity window."""
        return self.end - self.start

    def agreed_demand(self) -> ResourceVector:
        """Resource demand of the agreed operating point."""
        return QoSSpecification.point_demand(self.agreed_point)

    def delivered_demand(self) -> ResourceVector:
        """Resource demand of the currently delivered point."""
        return QoSSpecification.point_demand(self.delivered_point)

    def floor_point(self) -> OperatingPoint:
        """The minimum acceptable operating point."""
        return self.specification.worst_point()

    def floor_demand(self) -> ResourceVector:
        """Resource demand of the minimum acceptable point."""
        return QoSSpecification.point_demand(self.floor_point())

    # ------------------------------------------------------------------
    # Delivered-point movement (adaptation / optimization)
    # ------------------------------------------------------------------

    def set_delivered_point(self, point: OperatingPoint) -> None:
        """Move the delivered operating point inside the agreed spec.

        Guaranteed-class SLAs are pinned: "the service provider is
        committed to deliver the service with the exact QoS
        specification described in the SLA" (Section 5.1) — any move
        away from the agreed point raises.

        Raises:
            SLAError: On inadmissible points or guaranteed-class moves.
        """
        if self.service_class is ServiceClass.GUARANTEED \
                and point != self.agreed_point:
            raise SLAError(
                f"SLA {self.sla_id} is guaranteed-class; its operating "
                f"point cannot be moved")
        if not self.specification.admits(point):
            raise SLAError(
                f"point {point} is outside SLA {self.sla_id}'s "
                f"specification")
        self.delivered_point = dict(point)

    def renegotiate_point(self, point: OperatingPoint,
                          price_rate: float) -> None:
        """Raise the agreed terms (an accepted promotion offer).

        Promotions re-negotiate the SLA in place: the agreed point and
        price move together, and delivery follows. Only controlled-load
        SLAs may be promoted (Section 5.2).

        Raises:
            SLAError: On guaranteed-class SLAs or inadmissible points.
        """
        if not self.service_class.may_receive_promotions:
            raise SLAError(
                f"SLA {self.sla_id} ({self.service_class.value}) cannot "
                f"be promoted")
        if not self.specification.admits(point):
            raise SLAError(
                f"promotion point {point} is outside SLA "
                f"{self.sla_id}'s specification")
        self.agreed_point = dict(point)
        self.price_rate = price_rate

    def is_degraded(self) -> bool:
        """Whether the delivered point is below the agreed point on any
        dimension."""
        for parameter in self.specification:
            agreed = self.agreed_point.get(parameter.dimension)
            delivered = self.delivered_point.get(parameter.dimension)
            if agreed is None or delivered is None:
                continue
            if parameter.is_better(agreed, delivered):
                return True
        return False

    # ------------------------------------------------------------------
    # Status transitions
    # ------------------------------------------------------------------

    def establish(self) -> None:
        """Proposed → established (client accepted the offer)."""
        self._move(SlaStatus.PROPOSED, SlaStatus.ESTABLISHED)

    def activate(self) -> None:
        """Established → active (resources allocated, service invoked)."""
        self._move(SlaStatus.ESTABLISHED, SlaStatus.ACTIVE)

    def complete(self) -> None:
        """Active → completed (Grid service finished normally)."""
        self._move(SlaStatus.ACTIVE, SlaStatus.COMPLETED)

    def terminate(self) -> None:
        """Live → terminated (major degradation or client request)."""
        if not self.status.is_live:
            raise SLAError(
                f"SLA {self.sla_id} is {self.status.value}; cannot terminate")
        self.status = SlaStatus.TERMINATED

    def expire(self) -> None:
        """Live → expired (validity window ended)."""
        if not self.status.is_live:
            raise SLAError(
                f"SLA {self.sla_id} is {self.status.value}; cannot expire")
        self.status = SlaStatus.EXPIRED

    def _move(self, expected: SlaStatus, target: SlaStatus) -> None:
        if self.status is not expected:
            raise SLAError(
                f"SLA {self.sla_id} is {self.status.value}; expected "
                f"{expected.value}")
        self.status = target
