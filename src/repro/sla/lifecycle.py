"""The QoS-session phase machine (Figure 3).

"A QoS session consists of three main phases: i) the Establishment
phase, ii) the Active phase and iii) the Clearing phase. Each of these
phases have QoS functions":

* Establishment — specification, mapping, negotiation, reservation.
* Active — allocation, monitoring, re-negotiation, adaptation,
  accounting.
* Clearing — termination, accounting.

:class:`QoSSession` enforces that each function runs only in its phase
and that phases advance in order; the per-session function log is what
the Figure 3 benchmark replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..errors import LifecycleError


class Phase(Enum):
    """The three session phases (plus a terminal closed state)."""

    ESTABLISHMENT = "establishment"
    ACTIVE = "active"
    CLEARING = "clearing"
    CLOSED = "closed"


class QoSFunction(Enum):
    """The QoS management functions of Figure 3."""

    SPECIFICATION = "QoS Specification"
    MAPPING = "QoS Mapping"
    NEGOTIATION = "QoS Negotiation"
    RESERVATION = "Resource Reservation"
    ALLOCATION = "Resource Allocation"
    MONITORING = "QoS Monitoring"
    RENEGOTIATION = "QoS Renegotiation"
    ADAPTATION = "QoS Adaptation"
    ACCOUNTING = "QoS Accounting"
    TERMINATION = "QoS Termination"


#: Which functions are legal in which phase (Figure 3's columns).
PHASE_FUNCTIONS: "Dict[Phase, Tuple[QoSFunction, ...]]" = {
    Phase.ESTABLISHMENT: (
        QoSFunction.SPECIFICATION,
        QoSFunction.MAPPING,
        QoSFunction.NEGOTIATION,
        QoSFunction.RESERVATION,
    ),
    Phase.ACTIVE: (
        QoSFunction.ALLOCATION,
        QoSFunction.MONITORING,
        QoSFunction.RENEGOTIATION,
        QoSFunction.ADAPTATION,
        QoSFunction.ACCOUNTING,
    ),
    Phase.CLEARING: (
        QoSFunction.TERMINATION,
        QoSFunction.ACCOUNTING,
    ),
    Phase.CLOSED: (),
}

#: Legal termination causes (Section 3: "resource reservation
#: expiration, SLA violation or a Grid service completion", plus a
#: client-initiated withdrawal and the federation rolling back a
#: half-delegated cross-domain booking).
TERMINATION_CAUSES = ("expiration", "violation", "completion",
                      "client-request", "delegation-rollback")


@dataclass
class QoSSession:
    """One client session moving through the Figure 3 phases.

    Attributes:
        session_id: Unique id (usually the SLA id).
        phase: Current phase.
        clearing_cause: Why the session entered Clearing.
        history: ``(time, function)`` log of performed functions.
    """

    session_id: int
    phase: Phase = Phase.ESTABLISHMENT
    clearing_cause: Optional[str] = None
    history: "List[Tuple[float, QoSFunction]]" = field(default_factory=list)

    def allows(self, function: QoSFunction) -> bool:
        """Whether ``function`` may run in the current phase."""
        return function in PHASE_FUNCTIONS[self.phase]

    def perform(self, function: QoSFunction, time: float = 0.0) -> None:
        """Record a function execution, enforcing the phase mapping.

        Raises:
            LifecycleError: When the function is illegal in this phase.
        """
        if not self.allows(function):
            raise LifecycleError(
                f"session {self.session_id}: {function.value!r} is not a "
                f"{self.phase.value}-phase function")
        self.history.append((time, function))

    def enter_active(self) -> None:
        """Establishment → Active (SLA established, resources allocated).

        Raises:
            LifecycleError: Unless currently in Establishment.
        """
        if self.phase is not Phase.ESTABLISHMENT:
            raise LifecycleError(
                f"session {self.session_id}: cannot enter Active from "
                f"{self.phase.value}")
        self.phase = Phase.ACTIVE

    def enter_clearing(self, cause: str) -> None:
        """Any pre-clearing phase → Clearing.

        Establishment may clear directly (negotiation failed /
        reservation refused); Active clears on expiry, violation or
        completion.

        Raises:
            LifecycleError: On unknown causes or if already clearing.
        """
        if cause not in TERMINATION_CAUSES:
            raise LifecycleError(
                f"unknown termination cause {cause!r}; expected one of "
                f"{TERMINATION_CAUSES}")
        if self.phase in (Phase.CLEARING, Phase.CLOSED):
            raise LifecycleError(
                f"session {self.session_id} is already {self.phase.value}")
        self.phase = Phase.CLEARING
        self.clearing_cause = cause

    def close(self) -> None:
        """Clearing → Closed (resources freed, accounting settled).

        Raises:
            LifecycleError: Unless currently Clearing.
        """
        if self.phase is not Phase.CLEARING:
            raise LifecycleError(
                f"session {self.session_id}: cannot close from "
                f"{self.phase.value}")
        self.phase = Phase.CLOSED

    def functions_performed(self) -> List[QoSFunction]:
        """The distinct functions performed so far, in first-run order."""
        seen: "Dict[QoSFunction, None]" = {}
        for _time, function in self.history:
            seen.setdefault(function, None)
        return list(seen)
