"""FCFS: one undifferentiated pool, no classes, no guarantees.

Every request — "guaranteed" or best-effort alike — draws from a single
pool in arrival order. Admission always succeeds (there is nothing to
commit against); service is whatever is left when your turn comes.
Under failures, the most recent arrivals are squeezed first. This is
the classless Grid scheduler the paper's class model improves on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import AdmissionError
from .base import AllocatorPolicy, PolicyReport

_EPSILON = 1e-9


class FcfsPolicy(AllocatorPolicy):
    """Single-pool first-come-first-served allocation."""

    name = "fcfs"

    def __init__(self, guaranteed: float, adaptive: float,
                 best_effort: float, *, best_effort_min: float = 0.0) -> None:
        self.capacity = guaranteed + adaptive + best_effort
        self._failed = 0.0
        self._arrival = 0
        #: user -> (arrival order, demand, is_guaranteed)
        self._demands: Dict[str, Tuple[int, float, bool]] = {}
        self._committed: Dict[str, float] = {}
        self._served: Dict[str, float] = {}

    def _effective(self) -> float:
        return max(0.0, self.capacity - self._failed)

    def _rebalance(self) -> PolicyReport:
        remaining = self._effective()
        shortfalls: Dict[str, float] = {}
        best_effort_served = 0.0
        ordered = sorted(self._demands.items(), key=lambda kv: kv[1][0])
        for user, (_order, demand, is_guaranteed) in ordered:
            served = min(demand, remaining)
            remaining -= served
            self._served[user] = served
            if is_guaranteed:
                entitled = min(demand, self._committed.get(user, demand))
                if entitled - served > _EPSILON:
                    shortfalls[user] = entitled - served
            else:
                best_effort_served += served
        return PolicyReport(shortfalls=shortfalls,
                            best_effort_served=best_effort_served)

    # ------------------------------------------------------------------

    def admit_guaranteed(self, user: str, committed: float) -> bool:
        if user in self._committed:
            raise AdmissionError(f"user {user!r} already admitted")
        # FCFS has no admission control: everyone is let in and takes
        # their chances.
        self._committed[user] = committed
        self._arrival += 1
        self._demands[user] = (self._arrival, 0.0, True)
        return True

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        order, _old, _g = self._demands[user]
        self._demands[user] = (order, demand, True)
        return self._rebalance()

    def remove_guaranteed(self, user: str) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        del self._committed[user]
        del self._demands[user]
        self._served.pop(user, None)
        return self._rebalance()

    def set_best_effort_demand(self, user: str,
                               demand: float) -> PolicyReport:
        if demand <= 0:
            self._demands.pop(user, None)
            self._served.pop(user, None)
        elif user in self._demands:
            order, _old, is_g = self._demands[user]
            self._demands[user] = (order, demand, is_g)
        else:
            self._arrival += 1
            self._demands[user] = (self._arrival, demand, False)
        return self._rebalance()

    def apply_failure(self, amount: float) -> PolicyReport:
        self._failed = min(self.capacity, self._failed + amount)
        return self._rebalance()

    def apply_repair(self, amount: Optional[float] = None) -> PolicyReport:
        if amount is None:
            self._failed = 0.0
        else:
            self._failed = max(0.0, self._failed - amount)
        return self._rebalance()

    def served(self, user: str) -> float:
        return self._served.get(user, 0.0)

    def utilization(self) -> float:
        effective = self._effective()
        if effective <= 0:
            return 0.0
        return min(1.0, sum(self._served.values()) / effective)

    def total_capacity(self) -> float:
        return self.capacity
