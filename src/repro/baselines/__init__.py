"""Baseline allocation policies for the comparative evaluation.

The paper argues its dynamic partition beats static provisioning
("resources are never under-utilized due to the dynamic property of
the algorithm") but publishes no comparison; these baselines make that
comparison runnable:

* :mod:`repro.baselines.static` — the same ``Cg``/``Cb`` split with
  **no** adaptive reserve and **no** borrowing.
* :mod:`repro.baselines.fcfs` — one undifferentiated pool, first come
  first served, no classes and no guarantees.
* :mod:`repro.baselines.proportional` — one pool, proportional
  fair-share under overload.

All policies (including the paper's, via
:class:`~repro.baselines.base.AdaptivePolicy`) implement the
:class:`~repro.baselines.base.AllocatorPolicy` interface so the
experiment harness can swap them freely.
"""

from .base import AdaptivePolicy, AllocatorPolicy, PolicyReport
from .fcfs import FcfsPolicy
from .proportional import ProportionalSharePolicy
from .static import StaticPartitionPolicy

__all__ = [
    "AdaptivePolicy",
    "AllocatorPolicy",
    "FcfsPolicy",
    "PolicyReport",
    "ProportionalSharePolicy",
    "StaticPartitionPolicy",
]
