"""The common allocator-policy interface and the paper's policy.

An :class:`AllocatorPolicy` answers the questions the synthetic
experiments ask: admit a guaranteed commitment, move demands, absorb
failures, and report who is served from where. The paper's scheme is
adapted to the interface by :class:`AdaptivePolicy` (a thin wrapper
over :class:`~repro.core.capacity.CapacityPartition`), so every
benchmark compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.capacity import CapacityPartition
from ..errors import AdmissionError


@dataclass(frozen=True)
class PolicyReport:
    """Outcome of one policy mutation.

    Attributes:
        shortfalls: ``user -> entitled-but-unserved capacity`` for
            guaranteed users (an SLA violation while non-empty).
        best_effort_served: Total best-effort capacity served.
    """

    shortfalls: "Dict[str, float]"
    best_effort_served: float

    @property
    def guarantees_honored(self) -> bool:
        return not self.shortfalls


class AllocatorPolicy:
    """Interface every allocation policy implements."""

    #: Short name used in benchmark tables.
    name: str = "abstract"

    def admit_guaranteed(self, user: str, committed: float) -> bool:
        """Try to admit a guaranteed commitment; ``False`` = refused."""
        raise NotImplementedError

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> PolicyReport:
        """Update an admitted user's demand."""
        raise NotImplementedError

    def remove_guaranteed(self, user: str) -> PolicyReport:
        """Release an admitted user."""
        raise NotImplementedError

    def set_best_effort_demand(self, user: str,
                               demand: float) -> PolicyReport:
        """Update a best-effort user's demand (0 removes)."""
        raise NotImplementedError

    def apply_failure(self, amount: float) -> PolicyReport:
        """Lose capacity to failures."""
        raise NotImplementedError

    def apply_repair(self, amount: Optional[float] = None) -> PolicyReport:
        """Recover failed capacity."""
        raise NotImplementedError

    def served(self, user: str) -> float:
        """Capacity currently served to a user (0 if unknown)."""
        raise NotImplementedError

    def utilization(self) -> float:
        """Fraction of effective capacity in use."""
        raise NotImplementedError

    def total_capacity(self) -> float:
        """Nominal capacity."""
        raise NotImplementedError


class AdaptivePolicy(AllocatorPolicy):
    """The paper's Algorithm 1, behind the common interface."""

    name = "adaptive"

    def __init__(self, guaranteed: float, adaptive: float,
                 best_effort: float, *, best_effort_min: float = 0.0) -> None:
        self.partition = CapacityPartition(
            guaranteed, adaptive, best_effort,
            best_effort_min=best_effort_min)

    def _report(self) -> PolicyReport:
        report = self.partition.last_report
        assert report is not None
        return PolicyReport(shortfalls=dict(report.shortfalls),
                            best_effort_served=self.partition
                            .best_effort_served())

    def admit_guaranteed(self, user: str, committed: float) -> bool:
        if not self.partition.available_guaranteed_resource(committed):
            return False
        self.partition.admit_guaranteed(user, committed)
        return True

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> PolicyReport:
        self.partition.set_guaranteed_demand(user, demand)
        return self._report()

    def remove_guaranteed(self, user: str) -> PolicyReport:
        self.partition.remove_guaranteed(user)
        return self._report()

    def set_best_effort_demand(self, user: str,
                               demand: float) -> PolicyReport:
        self.partition.set_best_effort_demand(user, demand)
        return self._report()

    def apply_failure(self, amount: float) -> PolicyReport:
        self.partition.apply_failure(amount)
        return self._report()

    def apply_repair(self, amount: Optional[float] = None) -> PolicyReport:
        self.partition.apply_repair(amount)
        return self._report()

    def served(self, user: str) -> float:
        # The holding getters raise AdmissionError for users this
        # partition does not know; anything else is a real bug and
        # must propagate.
        try:
            return self.partition.guaranteed_holding(user).served
        except AdmissionError:
            pass
        try:
            return self.partition.best_effort_holding(user).served
        except AdmissionError:
            return 0.0

    def utilization(self) -> float:
        return self.partition.utilization()

    def total_capacity(self) -> float:
        return self.partition.total
