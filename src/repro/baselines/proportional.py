"""Proportional share: one pool, fair-share under overload.

Every demand — guaranteed or best-effort — receives
``demand * min(1, capacity / total_demand)``. Nobody is protected, so
guaranteed users degrade with the crowd; nobody starves either, so
best-effort throughput is better than the static split at low load.
This is the "fair scheduler" point in the design space.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import AdmissionError
from .base import AllocatorPolicy, PolicyReport

_EPSILON = 1e-9


class ProportionalSharePolicy(AllocatorPolicy):
    """Single-pool proportional fair-share allocation."""

    name = "proportional"

    def __init__(self, guaranteed: float, adaptive: float,
                 best_effort: float, *, best_effort_min: float = 0.0) -> None:
        self.capacity = guaranteed + adaptive + best_effort
        self._failed = 0.0
        #: user -> (demand, is_guaranteed)
        self._demands: Dict[str, Tuple[float, bool]] = {}
        self._committed: Dict[str, float] = {}
        self._served: Dict[str, float] = {}

    def _effective(self) -> float:
        return max(0.0, self.capacity - self._failed)

    def _rebalance(self) -> PolicyReport:
        total = sum(demand for demand, _g in self._demands.values())
        effective = self._effective()
        scale = 1.0 if total <= effective else (
            effective / total if total > 0 else 1.0)
        shortfalls: Dict[str, float] = {}
        best_effort_served = 0.0
        for user, (demand, is_guaranteed) in self._demands.items():
            served = demand * scale
            self._served[user] = served
            if is_guaranteed:
                entitled = min(demand, self._committed.get(user, demand))
                if entitled - served > _EPSILON:
                    shortfalls[user] = entitled - served
            else:
                best_effort_served += served
        return PolicyReport(shortfalls=shortfalls,
                            best_effort_served=best_effort_served)

    # ------------------------------------------------------------------

    def admit_guaranteed(self, user: str, committed: float) -> bool:
        if user in self._committed:
            raise AdmissionError(f"user {user!r} already admitted")
        self._committed[user] = committed
        self._demands[user] = (0.0, True)
        return True

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        self._demands[user] = (demand, True)
        return self._rebalance()

    def remove_guaranteed(self, user: str) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        del self._committed[user]
        del self._demands[user]
        self._served.pop(user, None)
        return self._rebalance()

    def set_best_effort_demand(self, user: str,
                               demand: float) -> PolicyReport:
        if demand <= 0:
            self._demands.pop(user, None)
            self._served.pop(user, None)
        else:
            self._demands[user] = (demand, False)
        return self._rebalance()

    def apply_failure(self, amount: float) -> PolicyReport:
        self._failed = min(self.capacity, self._failed + amount)
        return self._rebalance()

    def apply_repair(self, amount: Optional[float] = None) -> PolicyReport:
        if amount is None:
            self._failed = 0.0
        else:
            self._failed = max(0.0, self._failed - amount)
        return self._rebalance()

    def served(self, user: str) -> float:
        return self._served.get(user, 0.0)

    def utilization(self) -> float:
        effective = self._effective()
        if effective <= 0:
            return 0.0
        return min(1.0, sum(self._served.values()) / effective)

    def total_capacity(self) -> float:
        return self.capacity
