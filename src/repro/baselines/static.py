"""Static partitioning: the no-adaptation baseline.

The same administrator split as the paper's scheme, but *rigid*: the
guaranteed pool serves only guaranteed users, the best-effort pool only
best-effort users, the adaptive reserve does not exist (its capacity is
folded into the guaranteed pool so totals stay comparable — set
``fold_adaptive=False`` to waste it instead), and nobody borrows idle
capacity. Failures shrink the guaranteed pool directly, with no
compensation — exactly the behaviour the paper's adaptive reserve is
designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import AdmissionError
from .base import AllocatorPolicy, PolicyReport

_EPSILON = 1e-9


class StaticPartitionPolicy(AllocatorPolicy):
    """Rigid two-pool allocation without borrowing."""

    name = "static"

    def __init__(self, guaranteed: float, adaptive: float,
                 best_effort: float, *, fold_adaptive: bool = True,
                 best_effort_min: float = 0.0) -> None:
        # ``best_effort_min`` is accepted for signature parity; a rigid
        # split protects the whole best-effort pool anyway.
        self.cg = guaranteed + (adaptive if fold_adaptive else 0.0)
        self.cb = best_effort
        self._wasted = 0.0 if fold_adaptive else adaptive
        self._failed = 0.0
        self._committed: Dict[str, float] = {}
        self._g_demand: Dict[str, float] = {}
        self._b_demand: Dict[str, float] = {}
        self._g_served: Dict[str, float] = {}
        self._b_served: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def _effective_cg(self) -> float:
        return max(0.0, self.cg - self._failed)

    def _rebalance(self) -> PolicyReport:
        # Guaranteed pool: entitled demand, FCFS by user key for
        # determinism; no borrowing anywhere.
        remaining = self._effective_cg()
        shortfalls: Dict[str, float] = {}
        for user in sorted(self._g_demand):
            entitled = min(self._g_demand[user],
                           self._committed.get(user, 0.0))
            served = min(entitled, remaining)
            remaining -= served
            self._g_served[user] = served
            if entitled - served > _EPSILON:
                shortfalls[user] = entitled - served
        remaining_b = self.cb
        for user in sorted(self._b_demand):
            served = min(self._b_demand[user], remaining_b)
            remaining_b -= served
            self._b_served[user] = served
        return PolicyReport(shortfalls=shortfalls,
                            best_effort_served=sum(self._b_served.values()))

    # ------------------------------------------------------------------

    def admit_guaranteed(self, user: str, committed: float) -> bool:
        if user in self._committed:
            raise AdmissionError(f"user {user!r} already admitted")
        if sum(self._committed.values()) + committed > self.cg + _EPSILON:
            return False
        self._committed[user] = committed
        self._g_demand[user] = 0.0
        return True

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        self._g_demand[user] = demand
        return self._rebalance()

    def remove_guaranteed(self, user: str) -> PolicyReport:
        if user not in self._committed:
            raise AdmissionError(f"user {user!r} is not admitted")
        del self._committed[user]
        del self._g_demand[user]
        self._g_served.pop(user, None)
        return self._rebalance()

    def set_best_effort_demand(self, user: str,
                               demand: float) -> PolicyReport:
        if demand <= 0:
            self._b_demand.pop(user, None)
            self._b_served.pop(user, None)
        else:
            self._b_demand[user] = demand
        return self._rebalance()

    def apply_failure(self, amount: float) -> PolicyReport:
        self._failed = min(self.cg + self.cb, self._failed + amount)
        return self._rebalance()

    def apply_repair(self, amount: Optional[float] = None) -> PolicyReport:
        if amount is None:
            self._failed = 0.0
        else:
            self._failed = max(0.0, self._failed - amount)
        return self._rebalance()

    def served(self, user: str) -> float:
        return self._g_served.get(user, self._b_served.get(user, 0.0))

    def utilization(self) -> float:
        effective = self._effective_cg() + self.cb + self._wasted
        if effective <= 0:
            return 0.0
        used = sum(self._g_served.values()) + sum(self._b_served.values())
        return min(1.0, used / effective)

    def total_capacity(self) -> float:
        return self.cg + self.cb + self._wasted
