"""Broker restart: journal replay plus a reconciliation sweep.

A crash of the AQoS broker loses everything it holds only in memory —
the SLA repository, the allocation manager's sessions, the capacity
partition's holdings, the verifier's session bindings — while the
*authoritative* resource state survives in the GARA slot tables, the
NRM flow tables, the machine, and the launched jobs.  :func:`recover`
rebuilds the volatile half from the write-ahead journal (optionally
shortened by a snapshot) and then reconciles it against the surviving
authoritative half:

* composite reservations whose SLA never reached the repository
  (a journaled ``reserve_begin`` without ``reserve_end`` — the crash
  window inside ``ReservationSystem._reserve``) are cancelled
  leg-by-leg;
* half-confirmed composites are resolved by GARA's actual reservation
  state: a live SLA over a ``temporary`` reservation is re-committed,
  one over a cancelled/expired/vanished reservation is rolled back;
* authoritative bookings owned by no recovered session (the
  mutation-before-journal crash window) are swept and released;
* every outcome lands in the ``repro_recovery_*`` telemetry counters
  and a deterministic :class:`RecoveryReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import AdmissionError, RecoveryError, ReservationNotFound, SLAError
from ..gara.reservation import ReservationHandle, ReservationState
from ..network.interdomain import EndToEndAllocation
from ..sla.document import ServiceSLA, SlaStatus
from ..sla.lifecycle import QoSSession
from ..sla.repository import SLARepository
from .journal import (
    BEST_EFFORT_SET,
    CANCEL,
    COMPUTE_BOOKED,
    CONFIRM,
    Journal,
    NETWORK_BOOKED,
    RECOVERED,
    RESERVE_BEGIN,
    RESERVE_END,
    SLA_SAVED,
)
from .snapshot import Snapshot


@dataclass
class CompositeView:
    """What the journal says about one SLA's composite reservation."""

    sla_id: int
    handle: Optional[int] = None
    flows: List[int] = field(default_factory=list)
    open: bool = False
    confirmed: bool = False
    cancelled: bool = False


@dataclass
class ReplayView:
    """Journal history (plus optional snapshot) folded into state."""

    repository: SLARepository
    composites: "Dict[int, CompositeView]"
    best_effort: "Dict[str, float]"
    replayed: int
    snapshot_lsn: int


@dataclass
class RecoveryReport:
    """Deterministic summary of one recovery pass."""

    time: float
    replayed_records: int
    snapshot_lsn: int
    slas_restored: int = 0
    slas_rolled_back: int = 0
    orphans_cancelled: int = 0
    flows_released: int = 0
    notes: "List[str]" = field(default_factory=list)

    def render(self) -> str:
        """A stable multi-line report for the CLI and tests."""
        lines = [
            "=== recovery report ===",
            f"time: {self.time:g}",
            f"journal records replayed: {self.replayed_records} "
            f"(snapshot lsn {self.snapshot_lsn})",
            f"SLAs restored: {self.slas_restored}",
            f"SLAs rolled back: {self.slas_rolled_back}",
            f"orphan composites cancelled: {self.orphans_cancelled}",
            f"network flows released: {self.flows_released}",
        ]
        lines.extend(self.notes)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Journal installation
# ----------------------------------------------------------------------

def _wire_journal(testbed, journal: Optional[Journal]) -> None:
    """Point every write hook in the control plane at ``journal``."""
    testbed.journal = journal
    broker = testbed.broker
    broker.journal = journal
    broker.reservation_system.journal = journal
    broker.partition.journal = journal
    broker.verifier.journal = journal


def install_journal(testbed, store=None) -> Journal:
    """Wire a write-ahead journal through a testbed's control plane.

    The journal's clock is the simulation clock; ``store`` defaults to
    an in-memory store (pass a
    :class:`~repro.recovery.journal.FileJournalStore` for the CLI's
    cold-restart path).  Idempotent: a second call returns the
    installed journal.
    """
    if testbed.journal is not None:
        return testbed.journal
    sim = testbed.sim
    # Bind the ``now`` property's getter directly instead of a lambda:
    # one fewer frame per append on the admission hot path.
    journal = Journal(store, now=type(sim).now.fget.__get__(sim))
    _wire_journal(testbed, journal)
    return journal


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

def _decode_sla(payload: "Dict[str, object]") -> ServiceSLA:
    from ..xmlmsg.codec import decode_service_sla
    from ..xmlmsg.document import parse_xml
    sla = decode_service_sla(parse_xml(str(payload["xml"])))
    sla.status = SlaStatus(str(payload["status"]))
    return sla


def build_replay_view(journal: Journal, *,
                      snapshot: Optional[Snapshot] = None) -> ReplayView:
    """Fold the journal (from a snapshot, when given) into state.

    Only records with an LSN above the snapshot's are replayed —
    snapshot plus tail replay, never full replay on top of a snapshot.
    """
    if snapshot is not None:
        repository = SLARepository.from_xml(snapshot.repository_xml)
        composites = {
            int(entry["sla_id"]): CompositeView(
                sla_id=int(entry["sla_id"]),
                handle=(int(entry["handle"])
                        if entry.get("handle") is not None else None),
                flows=[int(f) for f in entry.get("flows", [])],
                confirmed=bool(entry.get("confirmed", False)))
            for entry in snapshot.composites}
        best_effort = {
            str(holding["user"]): float(holding["demand"])
            for holding in snapshot.partition.get("best_effort", [])}
        floor = snapshot.lsn
    else:
        repository = SLARepository()
        composites = {}
        best_effort = {}
        floor = 0
    highest = max([sla.sla_id for sla in repository.all()], default=999)
    replayed = 0
    for record in journal.records():
        if record.lsn <= floor:
            continue
        replayed += 1
        payload = record.payload
        if record.type == SLA_SAVED:
            sla = _decode_sla(payload)
            repository.save(sla)
            highest = max(highest, sla.sla_id)
        elif record.type == RESERVE_BEGIN:
            sla_id = int(payload["sla_id"])
            composites[sla_id] = CompositeView(sla_id=sla_id, open=True)
        elif record.type == COMPUTE_BOOKED:
            composites[int(payload["sla_id"])].handle = int(payload["handle"])
        elif record.type == NETWORK_BOOKED:
            composites[int(payload["sla_id"])].flows = [
                int(f) for f in payload["flows"]]
        elif record.type == RESERVE_END:
            composites[int(payload["sla_id"])].open = False
        elif record.type == CONFIRM:
            sla_id = int(payload["sla_id"])
            if sla_id in composites:
                composites[sla_id].confirmed = True
        elif record.type == CANCEL:
            sla_id = int(payload["sla_id"])
            if sla_id in composites:
                composites[sla_id].cancelled = True
        elif record.type == BEST_EFFORT_SET:
            user = str(payload["user"])
            demand = float(payload["demand"])
            if demand <= 0:
                best_effort.pop(user, None)
            else:
                best_effort[user] = demand
        # modify / capacity_rebalanced / violation / restoration /
        # recovered records are informational: GARA, the machine and
        # the verifier's next poll are authoritative for those.
    repository.resume_ids(highest)
    return ReplayView(repository=repository, composites=composites,
                      best_effort=best_effort, replayed=replayed,
                      snapshot_lsn=floor)


# ----------------------------------------------------------------------
# Reconciliation helpers
# ----------------------------------------------------------------------

def _all_nrms(broker) -> "List[object]":
    nrms: "List[object]" = []
    if broker.nrm is not None:
        nrms.append(broker.nrm)
    if broker.coordinator is not None:
        for nrm in broker.coordinator.nrms():
            if nrm not in nrms:
                nrms.append(nrm)
    return nrms


def _surviving_flows(broker, flow_ids: "List[int]"
                     ) -> "Tuple[List[Tuple[object, object]], List[int]]":
    """Split journaled flow ids into (nrm, flow) survivors and missing."""
    pairs: "List[Tuple[object, object]]" = []
    missing: "List[int]" = []
    for flow_id in flow_ids:
        found = None
        owner = None
        for nrm in _all_nrms(broker):
            flow = nrm.flow(flow_id)
            if flow is not None:
                found, owner = flow, nrm
                break
        if found is None:
            missing.append(flow_id)
        else:
            pairs.append((owner, found))
    return pairs, missing


def _rebuild_booking(broker, pairs):
    """Reconstruct the composite's network booking from live flows."""
    if not pairs:
        return None
    if broker.coordinator is not None:
        return EndToEndAllocation(
            source=pairs[0][1].source,
            destination=pairs[-1][1].destination,
            bandwidth_mbps=pairs[0][1].bandwidth_mbps,
            segments=[(nrm, flow) for nrm, flow in pairs])
    return pairs[0][1]


def _gara_state(broker, handle: Optional[ReservationHandle]
                ) -> Optional[ReservationState]:
    if handle is None:
        return None
    try:
        return broker.compute_rm.gara.reservation_status(handle).state
    except ReservationNotFound:
        return None


def _cancel_legs(broker, view: CompositeView, pairs,
                 report: RecoveryReport) -> bool:
    """Release whatever an orphaned composite still holds."""
    released = False
    if view.handle is not None:
        handle = ReservationHandle(view.handle)
        state = _gara_state(broker, handle)
        if state is not None and state.is_live:
            job = broker.compute_rm.running_job_for(handle)
            if job is not None:
                broker.compute_rm.kill(job.job_id)
            else:
                broker.compute_rm.gara.reservation_cancel(handle)
            released = True
    for nrm, flow in pairs:
        nrm.release(flow)
        report.flows_released += 1
        released = True
    return released


def _rollback_sla(testbed, sla: ServiceSLA, view: CompositeView, pairs,
                  report: RecoveryReport, rollbacks: "List[ServiceSLA]",
                  reason: str) -> None:
    """A live SLA whose composite is broken: tear everything down."""
    broker = testbed.broker
    if view.handle is not None:
        handle = ReservationHandle(view.handle)
        job = broker.compute_rm.running_job_for(handle)
        if job is not None:
            broker.compute_rm.kill(job.job_id)
        state = _gara_state(broker, handle)
        if state is not None and state.is_live:
            broker.compute_rm.gara.reservation_cancel(handle)
    for nrm, flow in pairs:
        nrm.release(flow)
        report.flows_released += 1
    sla.terminate()
    rollbacks.append(sla)
    report.slas_rolled_back += 1
    report.notes.append(f"SLA {sla.sla_id}: rolled back ({reason})")


def _restore_session(testbed, sla: ServiceSLA, composite,
                     state: Optional[ReservationState],
                     report: RecoveryReport, rollbacks: "List[ServiceSLA]",
                     activate_now: "List[int]", expire_now: "List[int]"
                     ) -> None:
    """Re-open the allocation/session book-keeping for a live SLA."""
    from ..core.broker import (  # noqa: SLF001 — same package family
        _SessionComputeSensor,
        _SessionNetworkSensor,
    )
    broker = testbed.broker
    sim = testbed.sim
    sla_id = sla.sla_id
    session = QoSSession(session_id=sla_id)
    resources = broker.allocation.open_session(sla_id, session)
    resources.reservation = composite

    if sla.status is SlaStatus.ACTIVE:
        committed = (sla.floor_demand().cpu if sla.service_class.adjustable
                     else sla.agreed_demand().cpu)
        user_key = broker._user_key(sla_id)  # noqa: SLF001
        if committed > 0:
            try:
                broker.engine.admit_guaranteed(user_key, committed)
            except AdmissionError as error:
                broker.allocation.close_session(sla_id)
                _rollback_sla(testbed, sla, CompositeView(sla_id=sla_id),
                              [], report, rollbacks,
                              f"re-admission failed: {error}")
                return
        session.enter_active()
        if committed > 0:
            broker.engine.allocate_guaranteed_resource(
                user_key, sla.delivered_demand().cpu)
        if composite.compute_handle is not None:
            job = broker.compute_rm.running_job_for(composite.compute_handle)
            if (job is None and state is ReservationState.COMMITTED
                    and sla.end > sim.now + 1e-9):
                job = broker.compute_rm.launch(
                    sla.service_name, composite.compute_handle,
                    duration=sla.end - sim.now, dsrt_fraction=0.8)
            resources.job = job
        compute_sensor = _SessionComputeSensor(
            f"session/{sla_id}/compute", sim, broker, sla_id)
        broker.verifier.attach_sensor(sla_id, compute_sensor)
        resources.sensor_names.append(compute_sensor.name)
        if composite.network_booking is not None:
            network_sensor = _SessionNetworkSensor(
                f"session/{sla_id}/network", sim, broker, sla_id)
            broker.verifier.attach_sensor(sla_id, network_sensor)
            resources.sensor_names.append(network_sensor.name)
        # The ledger survives the crash; only a session that crashed
        # between activation and its first accrual needs (re)opening.
        if broker.ledger.account(sla_id).open_since is None:
            broker.ledger.session_started(sla_id, sim.now, sla.price_rate)
        report.notes.append(f"SLA {sla_id}: restored (active)")
    else:  # ESTABLISHED — activation has not happened (or re-happens)
        if sla.start > sim.now + 1e-9:
            sim.schedule_at(
                sla.start,
                lambda sla_id=sla_id: broker._activate_session(  # noqa: SLF001
                    sla_id),
                label=f"sla:{sla_id}:activate")
            report.notes.append(f"SLA {sla_id}: restored "
                                f"(activation re-scheduled)")
        else:
            activate_now.append(sla_id)
            report.notes.append(f"SLA {sla_id}: restored "
                                f"(activation re-run)")
    report.slas_restored += 1

    if sla.end > sim.now + 1e-9:
        sim.schedule_at(
            sla.end,
            lambda sla_id=sla_id: broker._on_window_end(  # noqa: SLF001
                sla_id),
            label=f"sla:{sla_id}:window-end")
    else:
        expire_now.append(sla_id)


def _reconcile_composite(testbed, view: CompositeView,
                         report: RecoveryReport, *, confirms: "List[int]",
                         cancels: "List[int]",
                         rollbacks: "List[ServiceSLA]",
                         activate_now: "List[int]",
                         expire_now: "List[int]") -> None:
    broker = testbed.broker
    try:
        sla: Optional[ServiceSLA] = broker.repository.get(view.sla_id)
    except SLAError:
        sla = None
    pairs, missing = _surviving_flows(broker, view.flows)

    if view.cancelled or sla is None or not sla.status.is_live:
        if _cancel_legs(broker, view, pairs, report):
            report.orphans_cancelled += 1
            cancels.append(view.sla_id)
            report.notes.append(
                f"SLA {view.sla_id}: orphaned composite cancelled")
        return

    handle = (ReservationHandle(view.handle)
              if view.handle is not None else None)
    state = _gara_state(broker, handle)
    compute_broken = handle is not None and (state is None
                                             or not state.is_live)
    if view.open:
        _rollback_sla(testbed, sla, view, pairs, report, rollbacks,
                      "reserve never completed")
        return
    if compute_broken:
        _rollback_sla(testbed, sla, view, pairs, report, rollbacks,
                      "compute leg lost")
        return
    if missing:
        _rollback_sla(testbed, sla, view, pairs, report, rollbacks,
                      "network leg lost")
        return

    if state is ReservationState.TEMPORARY:
        # Crash between GARA create and the broker's confirm: the SLA
        # is established, so finish the commit before the deadline
        # cancels it out from under the session.
        broker.compute_rm.gara.reservation_commit(handle)
        confirms.append(view.sla_id)
    booking = _rebuild_booking(broker, pairs)
    if booking is not None:
        booking.commit()
    from ..core.reservation_system import CompositeReservation
    composite = CompositeReservation(sla_id=view.sla_id,
                                     compute_handle=handle,
                                     network_booking=booking,
                                     confirmed=True)
    _restore_session(testbed, sla, composite,
                     _gara_state(broker, handle), report, rollbacks,
                     activate_now, expire_now)


def _sweep_unowned(testbed, report: RecoveryReport) -> None:
    """Release authoritative bookings no recovered session owns.

    This closes the mutation-before-journal crash window: a GARA
    reservation or NRM flow created an instant before its journal
    record was appended belongs to nobody after replay.
    """
    from ..core.reservation_system import booking_flow_ids
    broker = testbed.broker
    owned_handles = set()
    owned_flows = set()
    for resources in broker.allocation.open_sessions():
        composite = resources.reservation
        if composite is None:
            continue
        if composite.compute_handle is not None:
            owned_handles.add(composite.compute_handle.value)
        for flow_id in booking_flow_ids(composite.network_booking):
            owned_flows.add(flow_id)
    for job in list(broker.compute_rm.running_jobs()):
        if job.handle.value not in owned_handles:
            broker.compute_rm.kill(job.job_id)
            report.orphans_cancelled += 1
    for reservation in list(broker.compute_rm.gara.live_reservations()):
        if reservation.handle.value not in owned_handles:
            broker.compute_rm.gara.reservation_cancel(reservation.handle)
            report.orphans_cancelled += 1
    for nrm in _all_nrms(broker):
        for flow in list(nrm.flows()):
            if flow.flow_id not in owned_flows:
                nrm.release(flow)
                report.flows_released += 1


def _wipe_volatile_state(testbed) -> None:
    broker = testbed.broker
    broker.allocation.reset()
    broker.verifier.reset_sessions()
    broker._closing.clear()  # noqa: SLF001 — same package family
    broker._journal_xml_cache.clear()  # noqa: SLF001
    broker.partition.clear_holdings()


def _restore_partition_failure(testbed) -> None:
    """Re-derive lost capacity from the machine (authoritative)."""
    partition = testbed.broker.partition
    partition.apply_repair()
    lost = max(0.0, partition.total - testbed.machine.grid_capacity().cpu)
    if lost > 0:
        partition.apply_failure(lost)


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------

def recover(testbed, *, journal: Optional[Journal] = None,
            snapshot: Optional[Snapshot] = None) -> RecoveryReport:
    """Rebuild a crashed broker's state and reconcile it.

    Args:
        testbed: The testbed whose broker restarts.  Authoritative
            state (GARA, NRMs, machine, jobs, simulator) is read, the
            broker-volatile half is rebuilt in place.
        journal: The write-ahead journal to replay; defaults to the
            installed one.
        snapshot: Optional checkpoint to start from; defaults to the
            snapshot keeper's latest when periodic snapshots run.

    Raises:
        RecoveryError: When no journal is available.
    """
    broker = testbed.broker
    if journal is None:
        journal = testbed.journal if testbed.journal is not None \
            else broker.journal
    if journal is None:
        raise RecoveryError(
            "recover() needs a journal: pass one, or run "
            "install_journal(testbed) before the workload")
    if snapshot is None and testbed.snapshots is not None:
        snapshot = testbed.snapshots.latest

    view = build_replay_view(journal, snapshot=snapshot)
    report = RecoveryReport(time=testbed.sim.now,
                            replayed_records=view.replayed,
                            snapshot_lsn=view.snapshot_lsn)
    confirms: "List[int]" = []
    cancels: "List[int]" = []
    rollbacks: "List[ServiceSLA]" = []
    activate_now: "List[int]" = []
    expire_now: "List[int]" = []

    # Rebuild silently: reconstruction must not re-journal history.
    _wire_journal(testbed, None)
    try:
        _wipe_volatile_state(testbed)
        broker.repository.restore(view.repository)
        _restore_partition_failure(testbed)
        for user, demand in view.best_effort.items():
            broker.partition.set_best_effort_demand(user, demand)
        for sla_id in sorted(view.composites):
            _reconcile_composite(testbed, view.composites[sla_id], report,
                                 confirms=confirms, cancels=cancels,
                                 rollbacks=rollbacks,
                                 activate_now=activate_now,
                                 expire_now=expire_now)
        # A live SLA with no reservation history at all (its reserve
        # records predate a truncated journal) cannot be trusted.
        for sla in list(broker.repository.live()):
            if not broker.allocation.has(sla.sla_id):
                sla.terminate()
                rollbacks.append(sla)
                report.slas_rolled_back += 1
                report.notes.append(f"SLA {sla.sla_id}: rolled back "
                                    f"(no reservation history)")
        _sweep_unowned(testbed, report)
    finally:
        _wire_journal(testbed, journal)
    journal.resync()

    # Compensating records: the journal must describe the reconciled
    # state so a second crash recovers from here, not from history.
    for sla_id in cancels:
        journal.append(CANCEL, sla_id=sla_id)
    for sla_id in confirms:
        journal.append(CONFIRM, sla_id=sla_id)
    for sla in rollbacks:
        broker._journal_sla(sla)  # noqa: SLF001 — same package family
    # Past-due transitions re-run with the journal attached, so their
    # own write points record normally.
    for sla_id in activate_now:
        broker._activate_session(sla_id)  # noqa: SLF001
    for sla_id in expire_now:
        broker._on_window_end(sla_id)  # noqa: SLF001

    metrics = broker.metrics
    # The active-sessions gauge is maintained incrementally on the
    # admission path; replay restores ACTIVE sessions without passing
    # through the activation hook, so re-seed it absolutely here.
    metrics.gauge("repro_sla_active_sessions").set(
        float(len(broker.repository.active())))
    metrics.counter("repro_recovery_runs_total").inc()
    metrics.counter("repro_recovery_slas_restored").inc(
        float(report.slas_restored))
    metrics.counter("repro_recovery_slas_rolled_back").inc(
        float(report.slas_rolled_back))
    metrics.counter("repro_recovery_orphans_cancelled").inc(
        float(report.orphans_cancelled))
    metrics.counter("repro_recovery_flows_released").inc(
        float(report.flows_released))
    journal.append(RECOVERED,
                   replayed=report.replayed_records,
                   snapshot_lsn=report.snapshot_lsn,
                   slas_restored=report.slas_restored,
                   slas_rolled_back=report.slas_rolled_back,
                   orphans_cancelled=report.orphans_cancelled,
                   flows_released=report.flows_released)
    broker.record(f"recovery: {report.slas_restored} restored, "
                  f"{report.slas_rolled_back} rolled back, "
                  f"{report.orphans_cancelled} orphan(s) cancelled")
    return report
