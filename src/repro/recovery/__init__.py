"""Crash consistency for the AQoS control plane.

The broker's durable truth lives in three places: the write-ahead
:mod:`journal <repro.recovery.journal>` (every state-changing event,
in LSN order), periodic :mod:`snapshots <repro.recovery.snapshot>`
(so replay starts from a checkpoint, not from the beginning of time),
and the authoritative resource managers themselves (GARA slot tables,
NRM flow tables, the machine).  After a crash,
:func:`repro.recovery.recover.recover` folds the first two together
and reconciles the result against the third.

Only the journal and snapshot layers are imported here: the core
broker modules import :mod:`repro.recovery.journal` for their write
hooks, so pulling :mod:`repro.recovery.recover` (which imports those
core modules back) into the package namespace would create an import
cycle.  Consumers import the recovery entry points explicitly::

    from repro.recovery.recover import install_journal, recover
"""

from __future__ import annotations

from .journal import (
    FileJournalStore,
    Journal,
    JournalRecord,
    JournalStore,
    MemoryJournalStore,
)
from .snapshot import (
    Snapshot,
    SnapshotKeeper,
    decode_snapshot,
    encode_snapshot,
    start_snapshots,
    take_snapshot,
)

__all__ = [
    "FileJournalStore",
    "Journal",
    "JournalRecord",
    "JournalStore",
    "MemoryJournalStore",
    "Snapshot",
    "SnapshotKeeper",
    "decode_snapshot",
    "encode_snapshot",
    "start_snapshots",
    "take_snapshot",
]
