"""Crash-at-every-journal-write-point harness.

The chaos layer (PR 3) perturbs the *transport*; this module perturbs
the *broker process*: a :class:`CrashingJournalStore` kills the broker
at a chosen journal write point (before or after the record becomes
durable), :func:`crash` wipes everything the process held only in
memory, and :func:`repro.recovery.recover.recover` rebuilds it.
:func:`sweep_crash_points` drives one scripted episode and replays it
with a crash at *every* write point in turn, checking after each
recovery that the system-wide invariants hold:

* capacity conservation — ``Cg + Ca + Cb == C - failed``;
* commitments within the guaranteed partition;
* the GARA slot table holds exactly the live reservations' entries
  (no double-booked and no leaked slots), and its indexed usage
  matches a naive recount over those entries;
* every active NRM flow is owned by exactly one recovered session;
* SLA atomicity — every live SLA is fully live (session, confirmed
  composite, live GARA state) and every dead SLA holds nothing.

Everything is a function of the seeds and the crash point, so a crash
run is as replayable as a chaos run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import BrokerCrash, RecoveryError
from ..gara.reservation import ReservationState
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter, range_parameter
from ..qos.specification import QoSSpecification
from ..sla.document import NetworkDemand, SlaStatus
from ..sla.repository import SLARepository
from ..units import parse_bound
from .journal import JournalStore, MemoryJournalStore
from .recover import RecoveryReport, _wire_journal, install_journal, recover
from .snapshot import start_snapshots

#: Crash placement relative to the journal append.
CRASH_MODES = ("before", "after")

#: Simulation horizon of the scripted episode.
EPISODE_HORIZON = 120.0


class CrashingJournalStore(JournalStore):
    """A journal store that kills the broker at the Nth append.

    ``mode="before"`` loses the record (a torn write: the
    authoritative mutation that preceded the append survives, the
    journal never hears of it); ``mode="after"`` persists the record
    and dies immediately after.  The store disarms once it has fired,
    so post-recovery appends go through.
    """

    def __init__(self, *, crash_lsn: int = 0, mode: str = "before",
                 inner: Optional[JournalStore] = None) -> None:
        if mode not in CRASH_MODES:
            raise RecoveryError(
                f"crash mode must be one of {CRASH_MODES}: {mode!r}")
        if crash_lsn < 0:
            raise RecoveryError(f"crash_lsn must be >= 0: {crash_lsn}")
        self.inner = inner if inner is not None else MemoryJournalStore()
        self.crash_lsn = crash_lsn
        self.mode = mode
        self.appends = 0
        self.fired = False

    def append(self, data: bytes) -> None:
        self.appends += 1
        if (not self.fired and self.crash_lsn
                and self.appends == self.crash_lsn):
            self.fired = True
            if self.mode == "after":
                self.inner.append(data)
            raise BrokerCrash(
                f"broker killed at journal write point {self.crash_lsn} "
                f"({self.mode} the append became durable)")
        self.inner.append(data)

    def records(self) -> "Iterator[bytes]":
        return self.inner.records()


def crash(testbed) -> None:
    """Kill the broker process: its in-memory state is gone.

    Authoritative state — the GARA slot table and reservations, the
    NRM flow tables, the machine, launched jobs, the accounting
    ledger, the simulator's event queue and the journal's durable
    store — belongs to other processes and survives untouched.
    """
    broker = testbed.broker
    journal = testbed.journal
    _wire_journal(testbed, None)
    try:
        broker.repository.restore(SLARepository())
        broker.allocation.reset()
        broker.verifier.reset_sessions()
        broker._closing.clear()  # noqa: SLF001 — same package family
        broker.partition.clear_holdings()
    finally:
        _wire_journal(testbed, journal)


# ----------------------------------------------------------------------
# The scripted episode (touches every journal record type)
# ----------------------------------------------------------------------

def _guaranteed_request(client: str):
    from ..sla.negotiation import ServiceRequest
    return ServiceRequest(
        client=client, service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.CPU, 4),
            exact_parameter(Dimension.MEMORY_MB, 64)),
        start=1.0, end=100.0,
        network=NetworkDemand(
            source_ip="135.200.50.101", dest_ip="192.200.168.33",
            bandwidth_mbps=10.0,
            packet_loss_bound=parse_bound("LessThan 10%")))


def _controlled_load_request(client: str):
    from ..sla.negotiation import ServiceRequest
    return ServiceRequest(
        client=client, service_name="visualization-service",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=QoSSpecification.of(
            range_parameter(Dimension.CPU, 2, 6),
            range_parameter(Dimension.MEMORY_MB, 32, 128)),
        start=5.0, end=80.0)


def _advance_request(client: str):
    from ..sla.negotiation import ServiceRequest
    return ServiceRequest(
        client=client, service_name="data-transfer-service",
        service_class=ServiceClass.GUARANTEED,
        specification=QoSSpecification.of(
            exact_parameter(Dimension.CPU, 3)),
        start=50.0, end=90.0)


def schedule_episode(testbed) -> None:
    """Script the crash episode's workload onto the simulator.

    A guaranteed session with a network leg, a controlled-load session
    the adaptation layer can squeeze, an advance reservation that
    activates mid-run, a time-boxed best-effort demand, and a node
    failure/repair pair — together they drive every journal record
    type, so a crash sweep over this episode covers every write point
    the control plane has.
    """
    broker = testbed.broker
    sim = testbed.sim
    broker.verifier.start_polling(5.0)
    sim.schedule_at(
        1.0, lambda: broker.request_service(_guaranteed_request("user1")),
        label="episode:guaranteed")
    sim.schedule_at(
        2.0, lambda: broker.request_best_effort("batch", 2.0,
                                                duration=40.0),
        label="episode:best-effort")
    sim.schedule_at(
        5.0,
        lambda: broker.request_service(_controlled_load_request("user2")),
        label="episode:controlled-load")
    sim.schedule_at(
        8.0, lambda: broker.request_service(_advance_request("user3")),
        label="episode:advance")
    # 14 of 26 grid nodes: deep enough to force the adaptation layer
    # to squeeze (``modify`` records) and the verifier to see the
    # degradation (``violation``/``restoration`` records).
    sim.schedule_at(30.0, lambda: testbed.machine.fail_nodes(14),
                    label="episode:node-failure")
    sim.schedule_at(60.0, lambda: testbed.machine.repair_nodes(),
                    label="episode:node-repair")


@dataclass
class EpisodeResult:
    """One crash-episode run (or the no-crash baseline)."""

    testbed: object
    crashed: bool
    crash_lsn: Optional[int]
    mode: str
    report: Optional[RecoveryReport]

    @property
    def journal(self):
        return self.testbed.journal


def run_episode(*, crash_lsn: Optional[int] = None, mode: str = "before",
                seed: int = 0,
                snapshot_interval: float = 0.0) -> EpisodeResult:
    """Run the scripted episode, optionally crashing and recovering.

    With ``crash_lsn`` set, the broker dies at that journal write
    point (``mode`` places the death before or after the record is
    durable), is wiped with :func:`crash`, recovered with
    :func:`~repro.recovery.recover.recover`, and the episode then runs
    to its horizon.
    """
    from ..core.testbed import build_testbed
    testbed = build_testbed(seed=seed)
    store = CrashingJournalStore(crash_lsn=crash_lsn or 0, mode=mode)
    install_journal(testbed, store)
    if snapshot_interval > 0:
        start_snapshots(testbed, snapshot_interval)
    schedule_episode(testbed)
    crashed = False
    report: Optional[RecoveryReport] = None
    try:
        testbed.sim.run(until=EPISODE_HORIZON)
    except BrokerCrash:
        crashed = True
        crash(testbed)
        report = recover(testbed)
        testbed.sim.run(until=EPISODE_HORIZON)
    return EpisodeResult(testbed=testbed, crashed=crashed,
                         crash_lsn=crash_lsn, mode=mode, report=report)


def count_write_points(*, seed: int = 0,
                       snapshot_interval: float = 0.0) -> int:
    """Journal write points in one no-crash episode (its final LSN)."""
    baseline = run_episode(seed=seed, snapshot_interval=snapshot_interval)
    return baseline.journal.last_lsn


# ----------------------------------------------------------------------
# Invariant verification
# ----------------------------------------------------------------------

def verify_recovered(testbed) -> "List[str]":
    """Check the recovered system's invariants; returns violations.

    An empty list means the state is indistinguishable — by these
    invariants — from one that never crashed.
    """
    problems: "List[str]" = []
    broker = testbed.broker
    partition = broker.partition
    now = testbed.sim.now

    # Capacity conservation: the partition sums to what the machine
    # actually has.
    eff_g, eff_a, eff_b = partition.effective_sizes()
    expected_total = partition.total - partition.failed
    if abs((eff_g + eff_a + eff_b) - expected_total) > 1e-6:
        problems.append(
            f"capacity not conserved: Cg+Ca+Cb = "
            f"{eff_g + eff_a + eff_b:g} != C - failed = "
            f"{expected_total:g}")
    if partition.committed_total() > partition.cg + 1e-6:
        problems.append(
            f"commitments {partition.committed_total():g} exceed "
            f"Cg={partition.cg:g}")

    # The slot table holds exactly the live reservations' entries.
    gara = broker.compute_rm.gara
    table = gara.slot_table
    live_entries = {r.entry.entry_id for r in gara.live_reservations()}
    table_entries = {entry.entry_id for entry in table.entries()}
    for orphan in sorted(table_entries - live_entries):
        problems.append(f"slot entry {orphan} booked by no live "
                        f"reservation (leaked slot)")
    for missing in sorted(live_entries - table_entries):
        problems.append(f"live reservation entry {missing} missing "
                        f"from the slot table")
    # The index agrees with a naive recount over its own entries.
    entries = table.entries()
    for sample in (now, now + 1.0, now + 10.0, now + 40.0):
        naive = sum(entry.demand.cpu for entry in entries
                    if entry.active_at(sample))
        indexed = table.usage_at(sample).cpu
        if abs(naive - indexed) > 1e-6:
            problems.append(
                f"slot-table usage at t={sample:g} diverges from the "
                f"naive recount: {indexed:g} != {naive:g}")

    # Every active NRM flow belongs to exactly one recovered session.
    owned_flows: "List[int]" = []
    for resources in broker.allocation.open_sessions():
        composite = resources.reservation
        if composite is None:
            continue
        from ..core.reservation_system import booking_flow_ids
        owned_flows.extend(booking_flow_ids(composite.network_booking))
    duplicates = {f for f in owned_flows if owned_flows.count(f) > 1}
    for flow_id in sorted(duplicates):
        problems.append(f"flow {flow_id} owned by more than one session")
    owned = set(owned_flows)
    for flow in testbed.nrm.flows():
        if flow.flow_id not in owned:
            problems.append(f"active flow {flow.flow_id} owned by no "
                            f"session (leaked bandwidth)")

    # SLA atomicity: live SLAs are fully live, dead SLAs hold nothing.
    for sla in broker.repository.all():
        sla_id = sla.sla_id
        if sla.status.is_live:
            if not broker.allocation.has(sla_id):
                problems.append(f"live SLA {sla_id} has no session")
                continue
            composite = broker.allocation.get(sla_id).reservation
            if composite is None or not composite.confirmed:
                problems.append(f"live SLA {sla_id} has no confirmed "
                                f"composite")
                continue
            if composite.compute_handle is not None:
                state = gara.reservation_status(
                    composite.compute_handle).state
                if state not in (ReservationState.COMMITTED,
                                 ReservationState.BOUND):
                    problems.append(
                        f"live SLA {sla_id}'s reservation is "
                        f"{state.value}, not committed/bound")
            if (sla.status is SlaStatus.ACTIVE
                    and broker.partition_holding(sla_id) is None
                    and sla.floor_demand().cpu > 0):
                problems.append(f"active SLA {sla_id} holds no "
                                f"partition capacity")
        else:
            if broker.allocation.has(sla_id):
                problems.append(f"dead SLA {sla_id} still has an open "
                                f"session")
            if broker.partition_holding(sla_id) is not None:
                problems.append(f"dead SLA {sla_id} still holds "
                                f"partition capacity")

    # Partition holdings all belong to known owners.
    live_keys = {f"sla-{sla.sla_id}"
                 for sla in broker.repository.live()}
    for holding in partition.guaranteed_holdings():
        if holding.user not in live_keys:
            problems.append(f"guaranteed holding {holding.user!r} has "
                            f"no live SLA behind it")

    # The journal itself stayed coherent: LSNs strictly increase even
    # across the crash (a mode="after" crash persists the record but
    # loses the in-memory counter — recovery must resync it).
    if testbed.journal is not None:
        previous = 0
        for record in testbed.journal.records():
            if record.lsn <= previous:
                problems.append(
                    f"journal LSN not strictly increasing: {record.lsn} "
                    f"after {previous}")
            previous = record.lsn
    return problems


def sweep_crash_points(*, seed: int = 0, modes: "Tuple[str, ...]" = CRASH_MODES,
                       snapshot_interval: float = 0.0
                       ) -> "List[EpisodeResult]":
    """Crash the episode at every write point in turn and verify.

    Raises:
        RecoveryError: When any recovered run violates an invariant
            (the message names the crash point and the violations).
    """
    total = count_write_points(seed=seed,
                               snapshot_interval=snapshot_interval)
    results: "List[EpisodeResult]" = []
    for lsn in range(1, total + 1):
        for mode in modes:
            result = run_episode(crash_lsn=lsn, mode=mode, seed=seed,
                                 snapshot_interval=snapshot_interval)
            if not result.crashed:
                raise RecoveryError(
                    f"crash at LSN {lsn} ({mode}) never fired — the "
                    f"episode only has {total} write points")
            problems = verify_recovered(result.testbed)
            if problems:
                raise RecoveryError(
                    f"crash at LSN {lsn} ({mode}) broke invariants: "
                    + "; ".join(problems))
            results.append(result)
    return results
