"""Periodic checkpoints of the broker's durable state.

A snapshot captures everything :func:`repro.recovery.recover.recover`
would otherwise reconstruct from the journal's full history: the SLA
repository (through its own Table 4 XML codec, so the checkpoint and
the wire format cannot drift), the capacity partition's configuration
and holdings, and the composite-reservation handles of every open
session.  Recovery then becomes snapshot + tail replay — only journal
records with an LSN above the checkpoint's are re-applied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import RecoveryError
from .journal import Journal


@dataclass(frozen=True)
class Snapshot:
    """One checkpoint of the broker's durable state.

    Attributes:
        time: Simulation time of the checkpoint.
        lsn: The journal LSN the checkpoint covers — every record with
            a lower-or-equal LSN is folded into this state.
        repository_xml: The full ``<SLA_Repository>`` document.
        partition: Partition configuration, failure level, guaranteed
            holdings and best-effort demands.
        composites: One entry per open session: SLA id, compute handle
            value, network flow ids and the confirmed flag.
    """

    time: float
    lsn: int
    repository_xml: str
    partition: "Mapping[str, object]" = field(default_factory=dict)
    composites: "Tuple[Mapping[str, object], ...]" = ()


def take_snapshot(broker, *, journal: Optional[Journal] = None) -> Snapshot:
    """Checkpoint a live broker.

    Args:
        broker: The :class:`~repro.core.broker.AQoSBroker` to capture.
        journal: The journal whose LSN the snapshot covers; defaults
            to the broker's installed journal.

    Raises:
        RecoveryError: When no journal is available to anchor the LSN.
    """
    journal = journal if journal is not None else broker.journal
    if journal is None:
        raise RecoveryError(
            "cannot snapshot a broker without an installed journal")
    partition = broker.partition
    holdings = [{"user": h.user, "committed": h.committed,
                 "demand": h.demand}
                for h in partition.guaranteed_holdings()]
    best_effort = [{"user": h.user, "demand": h.demand}
                   for h in partition.best_effort_holdings()]
    composites: List[Dict[str, object]] = []
    for resources in broker.allocation.open_sessions():
        composite = resources.reservation
        if composite is None:
            continue
        handle = composite.compute_handle
        composites.append({
            "sla_id": composite.sla_id,
            "handle": handle.value if handle is not None else None,
            "flows": _booking_flow_ids(composite.network_booking),
            "confirmed": composite.confirmed,
        })
    return Snapshot(
        time=broker.sim.now,
        lsn=journal.last_lsn,
        repository_xml=broker.repository.export_xml(),
        partition={
            "cg": partition.cg, "ca": partition.ca, "cb": partition.cb,
            "best_effort_min": partition.best_effort_min,
            "failed": partition.failed,
            "holdings": holdings,
            "best_effort": best_effort,
        },
        composites=tuple(composites),
    )


def _booking_flow_ids(booking) -> "List[int]":
    """Flow ids behind a network booking (empty when there is none)."""
    if booking is None:
        return []
    segments = getattr(booking, "segments", None)
    if segments is not None:
        return [flow.flow_id for _nrm, flow in segments]
    return [booking.flow_id]


def encode_snapshot(snapshot: Snapshot) -> str:
    """Serialize a snapshot deterministically (sorted-key JSON)."""
    return json.dumps({
        "time": snapshot.time,
        "lsn": snapshot.lsn,
        "repository_xml": snapshot.repository_xml,
        "partition": dict(snapshot.partition),
        "composites": [dict(entry) for entry in snapshot.composites],
    }, sort_keys=True, separators=(",", ":"))


def decode_snapshot(text: str) -> Snapshot:
    """Rebuild a snapshot from :func:`encode_snapshot` output.

    Raises:
        RecoveryError: On malformed input.
    """
    try:
        body = json.loads(text)
        return Snapshot(
            time=float(body["time"]),
            lsn=int(body["lsn"]),
            repository_xml=str(body["repository_xml"]),
            partition=body.get("partition", {}),
            composites=tuple(body.get("composites", ())),
        )
    except (ValueError, KeyError, TypeError) as error:
        raise RecoveryError(f"unreadable snapshot: {error}")


class SnapshotKeeper:
    """Holds the latest checkpoint and takes new ones on a timer.

    Built by :func:`start_snapshots`; recovery consults
    :attr:`latest` to shorten replay to the journal tail.
    """

    def __init__(self, broker, journal: Journal) -> None:
        self._broker = broker
        self._journal = journal
        self.latest: Optional[Snapshot] = None
        self.taken = 0

    def checkpoint(self) -> Snapshot:
        """Take (and keep) a fresh snapshot now."""
        self.latest = take_snapshot(self._broker, journal=self._journal)
        self.taken += 1
        return self.latest


def start_snapshots(testbed, interval: float) -> SnapshotKeeper:
    """Schedule periodic checkpoints of the testbed's broker.

    Requires :func:`repro.recovery.recover.install_journal` to have
    run first (snapshots are anchored to journal LSNs).

    Raises:
        RecoveryError: Without a journal, or on a non-positive
            interval.
    """
    if testbed.journal is None:
        raise RecoveryError(
            "install_journal(testbed) must run before start_snapshots")
    if interval <= 0:
        raise RecoveryError(
            f"snapshot interval must be positive: {interval}")
    keeper = SnapshotKeeper(testbed.broker, testbed.journal)

    def tick() -> None:
        keeper.checkpoint()
        testbed.sim.schedule(interval, tick, label="recovery:snapshot")

    testbed.sim.schedule(interval, tick, label="recovery:snapshot")
    testbed.snapshots = keeper
    return keeper
