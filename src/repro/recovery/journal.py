"""The write-ahead journal for the AQoS control plane.

Every durable state transition — an SLA saved, a composite
reservation's legs booked, a confirm/cancel/modify, a capacity
rebalance, a violation transition — is appended to the journal
*after* the authoritative mutation, so the journal is a replayable
history of what the broker believed.  Records carry the simulation
time and a monotonic log sequence number (LSN); recovery is snapshot
plus tail replay (:mod:`repro.recovery.recover`).

Two stores ship: :class:`MemoryJournalStore` (tests and the in-process
crash harness) and :class:`FileJournalStore`, an append-only
length-prefixed binary log for the CLI's cold-restart path.  A torn
trailing record (crash mid-write) is tolerated and ignored on read,
which is exactly the write-ahead contract: an unreadable suffix means
the transition never durably happened.
"""

from __future__ import annotations

import json
import pathlib
import struct
from typing import Callable, Iterator, List, Mapping, NamedTuple, Optional

from ..errors import RecoveryError

#: Record type for an SLA document written to the repository (the
#: payload carries the full Table 4 XML plus the lifecycle status).
SLA_SAVED = "sla_saved"
#: The Reservation System opened a multi-leg reserve for an SLA.
RESERVE_BEGIN = "reserve_begin"
#: The compute leg was booked with GARA (payload: handle value).
COMPUTE_BOOKED = "compute_booked"
#: The network leg(s) were booked with the NRM (payload: flow ids).
NETWORK_BOOKED = "network_booked"
#: The multi-leg reserve completed; the composite is whole.
RESERVE_END = "reserve_end"
#: The composite was confirmed (GARA commit + network commit).
CONFIRM = "confirm"
#: The composite was cancelled leg-by-leg.
CANCEL = "cancel"
#: The compute leg was resized (adaptation squeeze/upgrade).
MODIFY = "modify"
#: The capacity partition re-ran its water-fill.
CAPACITY_REBALANCED = "capacity_rebalanced"
#: The verifier detected a new SLA violation.
VIOLATION = "violation"
#: The verifier saw a violating SLA return to conformance.
RESTORATION = "restoration"
#: A best-effort demand was set (or cleared at zero demand).
BEST_EFFORT_SET = "best_effort_set"
#: A recovery pass completed (payload: the reconciliation counters).
RECOVERED = "recovered"
#: A cross-domain delegation opened (home side: intent to delegate to
#: a peer; peer side: intent to admit on a home's behalf).  Written
#: *before* the first admission mutation, so a rejoining broker can
#: always tell a delegated booking from a local one.
DELEGATION_BEGIN = "delegation_begin"
#: The peer admitted the delegated request (payload links the
#: delegation id to the SLA the admission produced).
DELEGATION_ACCEPTED = "delegation_accepted"
#: The home domain confirmed the delegation end-to-end (both sides
#: write one; a booking without it is half-delegated and gets
#: cancelled by reconciliation on rejoin).
DELEGATION_CONFIRMED = "delegation_confirmed"
#: The delegation was abandoned — peer unreachable, confirm lost, or
#: reconciliation rolled back a half-delegated booking.
DELEGATION_CANCELLED = "delegation_cancelled"

#: Every record type the journal accepts.
RECORD_TYPES = frozenset({
    SLA_SAVED, RESERVE_BEGIN, COMPUTE_BOOKED, NETWORK_BOOKED,
    RESERVE_END, CONFIRM, CANCEL, MODIFY, CAPACITY_REBALANCED,
    VIOLATION, RESTORATION, BEST_EFFORT_SET, RECOVERED,
    DELEGATION_BEGIN, DELEGATION_ACCEPTED, DELEGATION_CONFIRMED,
    DELEGATION_CANCELLED,
})

#: Length prefix: 4-byte big-endian record size.
_LENGTH = struct.Struct(">I")


class JournalRecord(NamedTuple):
    """One journal entry.

    A ``NamedTuple`` rather than a dataclass: records are built on
    every journal write, and tuple construction is ~3x cheaper than a
    frozen dataclass's ``__init__``.

    Attributes:
        lsn: Monotonic log sequence number (1-based).
        time: Simulation time when the record was appended.
        type: One of :data:`RECORD_TYPES`.
        payload: JSON-safe record body (scalars and flat lists); never
            mutated after construction, so the shared default is safe.
    """

    lsn: int
    time: float
    type: str
    payload: "Mapping[str, object]" = {}


class DeferredValue:
    """A payload value rendered at encode time, not append time.

    Wraps a zero-argument callable over *immutable* (point-in-time
    snapshot) state; the result is memoized, so every encoding of the
    record yields identical bytes.  A store that defers byte-encoding
    (:class:`MemoryJournalStore`) never pays the rendering cost on the
    hot path; a durable store resolves it inside the append, so the
    write-ahead contract — bytes exist before the append returns — is
    unchanged.
    """

    __slots__ = ("_fn", "_value")

    def __init__(self, fn: "Callable[[], object]") -> None:
        self._fn = fn
        self._value: Optional[object] = None

    def resolve(self) -> object:
        if self._value is None:
            self._value = self._fn()
        return self._value


#: Shared encoder: ``json.dumps`` with non-default options builds a
#: fresh ``JSONEncoder`` on every call, which is measurable on the
#: admission hot path (a reserve appends several records).
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))


def encode_record(record: JournalRecord) -> bytes:
    """Serialize a record deterministically (sorted-key JSON)."""
    payload = dict(record.payload)
    for key, value in payload.items():
        if isinstance(value, DeferredValue):
            payload[key] = value.resolve()
    body = {"lsn": record.lsn, "time": record.time, "type": record.type,
            "payload": payload}
    return _ENCODER.encode(body).encode("utf-8")


def decode_record(data: bytes) -> JournalRecord:
    """Rebuild a record from :func:`encode_record` output.

    Raises:
        RecoveryError: On malformed bytes or an unknown record type.
    """
    try:
        body = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise RecoveryError(f"unreadable journal record: {error}")
    record_type = body.get("type")
    if record_type not in RECORD_TYPES:
        raise RecoveryError(f"unknown journal record type: {record_type!r}")
    return JournalRecord(lsn=int(body["lsn"]), time=float(body["time"]),
                         type=record_type, payload=body.get("payload", {}))


class JournalStore:
    """Abstract append-only byte-record store."""

    def append(self, data: bytes) -> None:
        """Durably append one encoded record."""
        raise RecoveryError(
            f"{type(self).__name__} does not implement append")

    def append_record(self, record: JournalRecord) -> None:
        """Append one typed record.

        The default encodes eagerly and delegates to :meth:`append`,
        which is the write-ahead contract a durable store needs: the
        bytes exist before the append returns.  A store whose records
        never leave process memory may override this to skip the
        encoding on the hot path.
        """
        self.append(encode_record(record))

    def append_group(self, records: "List[JournalRecord]") -> None:
        """Append a batch of typed records as one group commit.

        The default simply appends each record in order, so every
        store — including test harnesses that intercept single appends
        to inject crashes — sees the same per-record byte stream as a
        sequential caller.  Stores with a cheaper bulk path (one
        ``extend``, one file write) override this.
        """
        for record in records:
            self.append_record(record)

    def records(self) -> "Iterator[bytes]":
        """Yield every durable record, oldest first."""
        raise RecoveryError(
            f"{type(self).__name__} does not implement records")


class MemoryJournalStore(JournalStore):
    """In-memory store: the default for tests and the crash harness.

    Typed appends keep the record object and defer byte-encoding to
    :meth:`records` — for an in-process store "durable" already means
    "still referenced", so eager serialization would only tax the
    admission hot path.  Payloads must therefore be JSON-safe and
    never mutated after the append (every record the control plane
    writes is built from fresh scalars/strings).  Subclasses that
    intercept writes must override :meth:`append_record` too; byte
    appends only arrive via the eager base-class path.
    """

    def __init__(self) -> None:
        self._records: "List[bytes | JournalRecord]" = []
        # Typed appends go straight to ``list.append`` — no Python
        # frame on the hot path.  Only when the class itself doesn't
        # override ``append_record``: an instance attribute would
        # silently shadow a subclass's interception otherwise.
        if type(self).append_record is MemoryJournalStore.append_record:
            self.append_record = self._records.append  # type: ignore[method-assign]

    def append(self, data: bytes) -> None:
        self._records.append(data)

    def append_record(self, record: JournalRecord) -> None:
        self._records.append(record)

    def append_group(self, records: "List[JournalRecord]") -> None:
        # One C-level extend per group; encoding stays deferred. The
        # same subclass guard as ``append_record`` applies: a store
        # that intercepts appends inherits the per-record loop instead.
        if type(self).append_record is MemoryJournalStore.append_record:
            self._records.extend(records)
        else:
            super().append_group(records)

    def records(self) -> "Iterator[bytes]":
        return iter([item if isinstance(item, bytes)
                     else encode_record(item)
                     for item in self._records])

    def __len__(self) -> int:
        return len(self._records)


class FileJournalStore(JournalStore):
    """Append-only length-prefixed binary log on disk.

    Each record is ``>I`` (big-endian length) followed by the encoded
    body.  Reads tolerate a torn trailing record: a prefix or body cut
    short by a crash mid-write is silently dropped, never surfaced as
    a half-applied transition.
    """

    def __init__(self, path: "pathlib.Path | str") -> None:
        self.path = pathlib.Path(path)

    def append(self, data: bytes) -> None:
        with self.path.open("ab") as handle:
            handle.write(_LENGTH.pack(len(data)))
            handle.write(data)

    def append_group(self, records: "List[JournalRecord]") -> None:
        """Group commit: encode every record, then one write syscall.

        The frames are identical to per-record appends — a reader
        cannot tell a group from a sequence of singles — but the group
        reaches the file in a single ``write``, so a crash tears at
        most the trailing record of the group, never its middle.
        """
        frames = bytearray()
        for record in records:
            data = encode_record(record)
            frames += _LENGTH.pack(len(data))
            frames += data
        with self.path.open("ab") as handle:
            handle.write(frames)

    def records(self) -> "Iterator[bytes]":
        if not self.path.exists():
            return iter(())
        raw = self.path.read_bytes()
        out: List[bytes] = []
        offset = 0
        while offset + _LENGTH.size <= len(raw):
            (size,) = _LENGTH.unpack_from(raw, offset)
            start = offset + _LENGTH.size
            if start + size > len(raw):
                break  # torn trailing record — crash mid-write
            out.append(raw[start:start + size])
            offset = start + size
        return iter(out)


class Journal:
    """The typed write-ahead journal façade.

    Args:
        store: Record store; a fresh :class:`MemoryJournalStore` when
            omitted.  A non-empty store resumes the LSN after its
            highest durable record.
        now: Clock callable (the simulation clock in practice).
    """

    def __init__(self, store: Optional[JournalStore] = None, *,
                 now: "Callable[[], float]" = lambda: 0.0) -> None:
        self.store = store if store is not None else MemoryJournalStore()
        # Bound once: the admission path appends several records per
        # reserve, and the two attribute lookups per append add up.
        self._sink = self.store.append_record
        self._now = now
        self._lsn = 0
        self._group: "Optional[List[JournalRecord]]" = None
        for data in self.store.records():
            self._lsn = decode_record(data).lsn

    @property
    def last_lsn(self) -> int:
        """The highest LSN durably appended (0 when empty)."""
        return self._lsn

    def resync(self) -> int:
        """Re-read the store and resume the LSN after its durable tail.

        A crash *during* an append can leave the in-memory LSN behind
        the store (the bytes landed but the raise beat the counter
        update); recovery calls this before writing compensating
        records so LSNs stay unique.
        """
        self._lsn = 0
        for data in self.store.records():
            self._lsn = decode_record(data).lsn
        return self._lsn

    def append(self, record_type: str, **payload: object) -> JournalRecord:
        """Append one typed record and return it.

        The LSN only advances after the store accepts the bytes, so a
        store that crashes mid-append leaves the journal consistent.

        Raises:
            RecoveryError: On an unknown record type.
        """
        if record_type not in RECORD_TYPES:
            raise RecoveryError(
                f"unknown journal record type: {record_type!r}")
        group = self._group
        if group is not None:
            record = JournalRecord(self._lsn + 1 + len(group), self._now(),
                                   record_type, payload)
            group.append(record)
            return record
        record = JournalRecord(self._lsn + 1, self._now(), record_type,
                               payload)
        self._sink(record)
        self._lsn = record.lsn
        return record

    def begin_group(self) -> None:
        """Start buffering appends for one group commit.

        Records appended inside a group receive the same LSNs they
        would get from sequential appends — the numbering is fixed at
        append time — but nothing reaches the store until
        :meth:`commit_group`.  Groups do not nest.

        Raises:
            RecoveryError: When a group is already open.
        """
        if self._group is not None:
            raise RecoveryError("journal group commits do not nest")
        self._group = []

    def commit_group(self) -> "List[JournalRecord]":
        """Flush the buffered group to the store in one bulk append.

        The LSN advances once, after the store accepts the whole
        group.  A crash inside the store's bulk append therefore leaves
        the in-memory LSN behind the durable tail — the same torn state
        a crash inside a single append produces — and recovery's
        :meth:`resync` absorbs it.  Group mode always ends, even when
        the store raises, so the journal never sticks in buffering.

        Raises:
            RecoveryError: When no group is open.
        """
        group = self._group
        if group is None:
            raise RecoveryError("no journal group to commit")
        self._group = None
        if group:
            self.store.append_group(group)
            self._lsn = group[-1].lsn
        return group

    @property
    def in_group(self) -> bool:
        """Whether a group commit is currently buffering appends."""
        return self._group is not None

    def records(self) -> "List[JournalRecord]":
        """Every durable record, oldest first."""
        return [decode_record(data) for data in self.store.records()]

    def __len__(self) -> int:
        return self._lsn
