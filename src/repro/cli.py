"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart`` — one full QoS session; prints the Table 1 / Table 3
  XML and the broker activity log.
* ``example56`` — replay the Section 5.6 worked example and print the
  timeline table.
* ``sweep`` — run the X1 adaptation-vs-baselines load sweep and print
  the comparison table.
* ``reserve`` — run the X3 reserve-sizing ablation table.
* ``recover`` — summarize an on-disk write-ahead journal (written by
  ``quickstart --crash SEED --journal PATH``).

All commands are deterministic; ``--seed`` perturbs the stochastic
ones.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional

from .baselines import (
    AdaptivePolicy,
    FcfsPolicy,
    ProportionalSharePolicy,
    StaticPartitionPolicy,
)
from .experiments.example56 import format_example56, run_example56
from .experiments.harness import run_policy_workload
from .experiments.reporting import format_table
from .sim.random import RandomSource
from .workloads.generators import (
    WorkloadConfig,
    arrival_rate_for_load,
    generate_workload,
)


def _cmd_quickstart(args: argparse.Namespace) -> int:
    if getattr(args, "crash", None) is not None:
        from .experiments.crash_demo import run_crash_quickstart
        print(run_crash_quickstart(args.crash,
                                   journal_path=args.journal))
        return 0
    if getattr(args, "telemetry", False):
        from .experiments.telemetry_demo import run_telemetry_quickstart
        print(run_telemetry_quickstart(
            chaos_seed=getattr(args, "chaos", None)))
        return 0
    if getattr(args, "chaos", None) is not None:
        from .experiments.chaos_demo import run_chaos_quickstart
        print(run_chaos_quickstart(args.chaos))
        return 0
    import importlib.util
    import pathlib
    # The quickstart example is the canonical walkthrough; reuse it.
    candidates = [
        pathlib.Path(__file__).resolve().parents[2] / "examples"
        / "quickstart.py",
        pathlib.Path.cwd() / "examples" / "quickstart.py",
    ]
    for path in candidates:
        if path.exists():
            spec = importlib.util.spec_from_file_location("quickstart",
                                                          path)
            module = importlib.util.module_from_spec(spec)
            assert spec.loader is not None
            spec.loader.exec_module(module)
            module.main()
            return 0
    print("examples/quickstart.py not found; run from the repository "
          "root", file=sys.stderr)
    return 1


def _cmd_example56(_args: argparse.Namespace) -> int:
    result = run_example56()
    print("Section 5.6 worked example — replayed timeline")
    print(format_example56(result))
    print()
    print(f"guarantees always honored: {result.guarantees_always_honored}")
    print(f"resources never under-utilized: {result.never_underutilized}")
    return 0


_POLICIES = {
    "adaptive": AdaptivePolicy,
    "static": StaticPartitionPolicy,
    "fcfs": FcfsPolicy,
    "proportional": ProportionalSharePolicy,
}


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = WorkloadConfig(horizon=args.horizon)
    failures = [(args.horizon * 0.2, -4.0), (args.horizon * 0.4, 4.0),
                (args.horizon * 0.6, -4.0), (args.horizon * 0.8, 4.0)]
    rows = []
    for load in args.loads:
        rate = arrival_rate_for_load(load, 26.0, config)
        workload = generate_workload(replace(config, arrival_rate=rate),
                                     RandomSource(args.seed))
        for name, policy_class in _POLICIES.items():
            policy = policy_class(15, 6, 5, best_effort_min=2)
            result = run_policy_workload(policy, workload,
                                         failures=failures)
            rows.append([load, name,
                         round(result.guaranteed_acceptance, 3),
                         round(result.violation_time_fraction, 3),
                         round(result.mean_utilization, 3),
                         round(result.best_effort_cpu_time, 0),
                         round(result.revenue, 0)])
    print(format_table(["load", "policy", "acc(G)", "viol-frac", "util",
                        "BE cpu-time", "revenue"],
                       rows,
                       title="X1 — adaptation vs baselines "
                             "(4-node failures injected)"))
    return 0


def _cmd_reserve(args: argparse.Namespace) -> int:
    config = WorkloadConfig(horizon=args.horizon,
                            class_mix=(0.8, 0.1, 0.1),
                            guaranteed_cpu=(3, 8))
    rate = arrival_rate_for_load(1.6, 26.0, config)
    workload = generate_workload(replace(config, arrival_rate=rate),
                                 RandomSource(args.seed))
    rows = []
    for magnitude in (4, 8, 12):
        rng = RandomSource(magnitude)
        events = []
        time = 0.0
        for _ in range(5):
            time += rng.exponential(args.horizon / 6)
            if time >= args.horizon - 20:
                break
            repair = min(args.horizon - 1, time + rng.uniform(20, 60))
            events.append((time, -float(magnitude)))
            events.append((repair, float(magnitude)))
            time = repair
        for ca in (0, 2, 4, 6, 8):
            policy = AdaptivePolicy(21 - ca, ca, 5, best_effort_min=2)
            result = run_policy_workload(policy, workload,
                                         failures=events)
            rows.append([magnitude, 21 - ca, ca,
                         round(result.guaranteed_acceptance, 3),
                         round(result.violation_time_fraction, 4)])
    print(format_table(["failure size", "Cg", "Ca", "acc(G)",
                        "viol-frac"],
                       rows,
                       title="X3 — sizing the adaptive reserve "
                             "(Cg + Ca = 21)"))
    return 0


def _cmd_diagram(_args: argparse.Namespace) -> int:
    from .core.testbed import build_testbed
    from .experiments.sequence import figure2_diagram
    from .qos.classes import ServiceClass
    from .qos.parameters import Dimension, exact_parameter
    from .qos.specification import QoSSpecification
    from .sla.document import NetworkDemand
    from .sla.negotiation import ServiceRequest

    testbed = build_testbed()
    spec = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 10),
        exact_parameter(Dimension.MEMORY_MB, 2048))
    outcome = testbed.broker.request_service(ServiceRequest(
        client="scientists", service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED, specification=spec,
        start=0.0, end=100.0,
        network=NetworkDemand("135.200.50.101", "192.200.168.33",
                              100.0)))
    assert outcome.accepted, outcome.reason
    testbed.broker.conformance_test(outcome.sla.sla_id)
    testbed.sim.run(until=120.0)
    print("Figure 2 — component interaction sequence "
          "(one full session):\n")
    print(figure2_diagram(testbed.trace))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="G-QoSM reproduction: demos and experiments")
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser(
        "quickstart", help="run one full QoS session end to end")
    quickstart.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="run the session over a lossy control plane with "
             "seeded fault injection")
    quickstart.add_argument(
        "--telemetry", action="store_true",
        help="run with the telemetry hub installed and print the "
             "span-tree / metrics / event-stream activity report")
    quickstart.add_argument(
        "--crash", type=int, default=None, metavar="SEED",
        help="kill the broker at a seed-chosen journal write point, "
             "recover from the write-ahead journal, and finish the "
             "session")
    quickstart.add_argument(
        "--journal", type=str, default=None, metavar="PATH",
        help="with --crash: also write the durable journal to PATH "
             "(readable later via 'repro recover PATH')")

    recover = subparsers.add_parser(
        "recover", help="summarize an on-disk write-ahead journal "
                        "(cold-restart replay, no testbed)")
    recover.add_argument("journal", metavar="JOURNAL",
                         help="path to a journal written by "
                              "'quickstart --crash ... --journal PATH'")

    telemetry = subparsers.add_parser(
        "telemetry", help="quickstart with spans, metrics, and the "
                          "event stream rendered (Figure 6 style)")
    telemetry.add_argument("--seed", type=int, default=0)
    telemetry.add_argument(
        "--chaos", type=int, default=None, metavar="SEED",
        help="overlay seeded fault injection on the control plane")

    subparsers.add_parser(
        "example56", help="replay the Section 5.6 worked example")
    subparsers.add_parser(
        "diagram", help="print the Figure 2 sequence diagram")

    sweep = subparsers.add_parser(
        "sweep", help="adaptation vs baselines load sweep (X1)")
    sweep.add_argument("--loads", type=float, nargs="+",
                       default=[0.4, 0.8, 1.2])
    sweep.add_argument("--horizon", type=float, default=600.0)
    sweep.add_argument("--seed", type=int, default=99)

    reserve = subparsers.add_parser(
        "reserve", help="adaptive-reserve sizing ablation (X3)")
    reserve.add_argument("--horizon", type=float, default=600.0)
    reserve.add_argument("--seed", type=int, default=77)

    obs = subparsers.add_parser(
        "obs", help="flight recorder: replay an atlas scenario with "
                    "decision provenance and query the causal record")
    obs.add_argument("verb", choices=("why", "timeline", "slo"),
                     help="why <sla-id|client|all>: explain every "
                          "verdict; timeline <sla-id>: join decisions "
                          "+ journal + spans; slo: per-class error "
                          "budgets and alerts")
    obs.add_argument("target", nargs="?", default="all",
                     help="an SLA id, a client name, or 'all' "
                          "(why only; default: all)")
    obs.add_argument("--scenario", type=str, default="diurnal_day",
                     help="atlas scenario to replay "
                          "(default: diurnal_day)")
    obs.add_argument("--seed", type=int, default=2003,
                     help="replay seed (default: 2003)")

    federate = subparsers.add_parser(
        "federate", help="federated control plane: N broker domains, "
                         "one crashed at t=30 and rejoined at t=60, "
                         "with cross-domain rerouting explained")
    federate.add_argument("--domains", type=int, default=3,
                          help="number of broker domains (default: 3)")
    federate.add_argument("--crash", type=int, default=7, metavar="SEED",
                          help="seed picking the crashed domain and "
                               "the tenant workload (default: 7)")
    federate.add_argument("--horizon", type=float, default=120.0,
                          help="episode horizon (default: 120)")
    return parser


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .experiments.telemetry_demo import run_telemetry_quickstart
    print(run_telemetry_quickstart(seed=args.seed,
                                   chaos_seed=args.chaos))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    import pathlib
    from .experiments.crash_demo import summarize_journal
    if not pathlib.Path(args.journal).exists():
        print(f"no journal at {args.journal}", file=sys.stderr)
        return 1
    print(summarize_journal(args.journal))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs import FlightRecorder
    from .workloads.replay import replay_scenario

    result = replay_scenario(args.scenario, seed=args.seed,
                             with_journal=True)
    testbed = result.testbed
    assert testbed.decisions is not None
    recorder = FlightRecorder(
        decisions=testbed.decisions,
        tracer=(testbed.telemetry.tracer
                if testbed.telemetry is not None else None),
        journal=testbed.journal, slo=testbed.slo)
    print(f"# scenario: {args.scenario} seed={args.seed}")
    if args.verb == "why":
        print(recorder.why(args.target), end="")
    elif args.verb == "timeline":
        if not args.target.isdigit():
            print("timeline needs a numeric SLA id", file=sys.stderr)
            return 1
        print(recorder.timeline(int(args.target)), end="")
    else:
        print(recorder.slo_report(testbed.sim.now), end="")
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    from .federation.demo import run_federate_demo
    result = run_federate_demo(domains=args.domains,
                               crash_seed=args.crash,
                               horizon=args.horizon)
    print(result.text, end="")
    return 1 if (result.problems or result.unexplained_reroutes) else 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "telemetry": _cmd_telemetry,
    "recover": _cmd_recover,
    "example56": _cmd_example56,
    "diagram": _cmd_diagram,
    "sweep": _cmd_sweep,
    "reserve": _cmd_reserve,
    "obs": _cmd_obs,
    "federate": _cmd_federate,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
