"""The UDDIe registry.

Services register with a name, a provider, free-form properties, and an
advertised QoS *capability* (a :class:`~repro.qos.QoSSpecification`
describing what the provider can deliver). Discovery returns the
records whose name, properties and capability match a
:class:`~repro.registry.query.ServiceQuery` — the "list of matching
services" the AQoS receives in Figure 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..errors import RegistryError, ServiceNotFound
from ..qos.specification import QoSSpecification
from .query import PropertyValue, ServiceQuery

_record_counter = itertools.count(1)


@dataclass(frozen=True)
class ServiceRecord:
    """One registered service.

    Attributes:
        record_id: Registry-assigned id (the UDDI serviceKey analogue).
        name: Service name.
        provider: Owning business/provider name.
        endpoint: Logical bus endpoint handling invocations.
        capability: Advertised QoS the provider can deliver.
        properties: Free-form QoS/metadata properties (UDDIe pages).
    """

    record_id: int
    name: str
    provider: str
    endpoint: str
    capability: QoSSpecification
    properties: "Dict[str, PropertyValue]" = field(default_factory=dict)


class UddieRegistry:
    """An in-memory UDDIe instance."""

    def __init__(self) -> None:
        self._records: Dict[int, ServiceRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def register(self, name: str, provider: str, *,
                 endpoint: str = "",
                 capability: Optional[QoSSpecification] = None,
                 properties: Optional[Mapping[str, PropertyValue]] = None
                 ) -> ServiceRecord:
        """Register a service and return its record.

        Raises:
            RegistryError: On a duplicate (name, provider) pair.
        """
        for record in self._records.values():
            if record.name == name and record.provider == provider:
                raise RegistryError(
                    f"service {name!r} by {provider!r} already registered")
        record = ServiceRecord(
            record_id=next(_record_counter), name=name, provider=provider,
            endpoint=endpoint,
            capability=capability or QoSSpecification.of(),
            properties=dict(properties or {}))
        self._records[record.record_id] = record
        return record

    def unregister(self, record_id: int) -> None:
        """Remove a registration.

        Raises:
            ServiceNotFound: When the record does not exist.
        """
        if record_id not in self._records:
            raise ServiceNotFound(f"no service record {record_id}")
        del self._records[record_id]

    def get(self, record_id: int) -> ServiceRecord:
        """Look up a record by id."""
        record = self._records.get(record_id)
        if record is None:
            raise ServiceNotFound(f"no service record {record_id}")
        return record

    def find(self, query: ServiceQuery) -> List[ServiceRecord]:
        """All records matching a query, ordered by record id.

        A record matches when its name matches the pattern, every
        property constraint holds, and its advertised capability
        dominates the query's QoS floor (when one is given).
        """
        matches: List[ServiceRecord] = []
        for record_id in sorted(self._records):
            record = self._records[record_id]
            if not query.matches_name(record.name):
                continue
            if not all(constraint.matches(record.properties.get(constraint.name))
                       for constraint in query.constraints):
                continue
            if query.qos is not None and not record.capability.dominates(query.qos):
                continue
            matches.append(record)
        return matches

    def records(self) -> List[ServiceRecord]:
        """All registrations, ordered by id."""
        return [self._records[record_id] for record_id in sorted(self._records)]
