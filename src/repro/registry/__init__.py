"""UDDIe — the QoS-property-extended service registry.

"To support discovery of services based on their properties, the UDDI
registry has been extended as UDDIe — service users can now also
specify particular service properties, such as QoS parameters, with
which services are registered, and based on which services can
subsequently be discovered" (Section 2.1).

* :mod:`repro.registry.uddie` — the registry and its records.
* :mod:`repro.registry.query` — the property-constraint query model.
"""

from .query import PropertyConstraint, ServiceQuery
from .uddie import ServiceRecord, UddieRegistry

__all__ = [
    "PropertyConstraint",
    "ServiceQuery",
    "ServiceRecord",
    "UddieRegistry",
]
