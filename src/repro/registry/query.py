"""Queries against the UDDIe registry.

A :class:`ServiceQuery` combines a name pattern, arbitrary property
constraints (UDDIe's "blue pages" extension) and a QoS specification
that a matching service's advertised capability must dominate.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..errors import RegistryError
from ..qos.specification import QoSSpecification

PropertyValue = Union[str, float, int, bool]

_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class PropertyConstraint:
    """One constraint over a registered service property."""

    name: str
    operator: str
    value: PropertyValue

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise RegistryError(f"unknown operator {self.operator!r}")

    def matches(self, offered: Optional[PropertyValue]) -> bool:
        """Whether a service's property value satisfies the constraint."""
        if offered is None:
            return False
        wanted = self.value
        if isinstance(offered, (int, float)) and isinstance(wanted, (int, float)) \
                and not isinstance(offered, bool) and not isinstance(wanted, bool):
            comparisons = {
                "=": offered == wanted,
                "!=": offered != wanted,
                "<": offered < wanted,
                "<=": offered <= wanted,
                ">": offered > wanted,
                ">=": offered >= wanted,
            }
            return comparisons[self.operator]
        if self.operator == "=":
            return str(offered) == str(wanted)
        if self.operator == "!=":
            return str(offered) != str(wanted)
        raise RegistryError(
            f"operator {self.operator!r} needs numeric operands: "
            f"{offered!r} vs {wanted!r}")


@dataclass(frozen=True)
class ServiceQuery:
    """A discovery query.

    Attributes:
        name_pattern: Glob over service names (``"*"`` matches all).
        constraints: Property constraints, all of which must hold.
        qos: Optional QoS floor; a match's capability must dominate it.
    """

    name_pattern: str = "*"
    constraints: "Tuple[PropertyConstraint, ...]" = ()
    qos: Optional[QoSSpecification] = None

    def matches_name(self, name: str) -> bool:
        """Whether a service name matches the pattern."""
        return fnmatch.fnmatchcase(name, self.name_pattern)
