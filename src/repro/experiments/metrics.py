"""Time-weighted metric accumulation (compatibility shim).

:class:`TimeWeightedMetrics` moved to
:mod:`repro.telemetry.timeweighted` so the telemetry registry's
time-weighted gauges and the synthetic experiments share one exact
integrator. This module re-exports it for existing imports; new code
should import from :mod:`repro.telemetry`.
"""

from __future__ import annotations

from ..telemetry.timeweighted import TimeWeightedMetrics

__all__ = ["TimeWeightedMetrics"]
