"""Time-weighted metric accumulation.

The synthetic experiments integrate piecewise-constant signals
(utilization, violation indicator, best-effort throughput) between
event points. :class:`TimeWeightedMetrics` does the bookkeeping: feed
it the signal values at every event time and it maintains exact
integrals over the observation window.
"""

from __future__ import annotations

from typing import Dict
from ..errors import ValidationError


class TimeWeightedMetrics:
    """Exact integrals of piecewise-constant signals.

    Usage::

        metrics = TimeWeightedMetrics(start=0.0)
        metrics.observe(t1, utilization=0.5, violation=0.0)
        metrics.observe(t2, utilization=0.8, violation=1.0)
        metrics.finalize(horizon)
        metrics.mean("utilization")
    """

    def __init__(self, start: float = 0.0) -> None:
        self._start = start
        self._last_time = start
        self._last_values: Dict[str, float] = {}
        self._integrals: Dict[str, float] = {}
        self._finalized = False

    def observe(self, time: float, **signals: float) -> None:
        """Record the signal values holding from ``time`` onwards."""
        if time < self._last_time:
            raise ValidationError(
                f"observation at {time} precedes last at {self._last_time}")
        span = time - self._last_time
        for name, value in self._last_values.items():
            self._integrals[name] = self._integrals.get(name, 0.0) \
                + value * span
        self._last_time = time
        self._last_values.update(signals)
        for name in signals:
            self._integrals.setdefault(name, 0.0)

    def finalize(self, end: float) -> None:
        """Close the window at ``end`` (integrating the last values)."""
        self.observe(end)
        self._finalized = True

    @property
    def elapsed(self) -> float:
        """Window length so far."""
        return self._last_time - self._start

    def integral(self, name: str) -> float:
        """The signal's integral over the window."""
        return self._integrals.get(name, 0.0)

    def mean(self, name: str) -> float:
        """Time-average of the signal (0 for an empty window)."""
        if self.elapsed <= 0:
            return 0.0
        return self.integral(name) / self.elapsed
