"""Plain-text result tables for benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import List, Sequence, Union

Cell = Union[str, int, float]


def _render_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == int(cell) and abs(cell) < 1e15:
            return str(int(cell))
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Cell]], *,
                 title: str = "") -> str:
    """Render an aligned plain-text table.

    Column widths fit the longest cell; numbers are right-aligned,
    text left-aligned.
    """
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    numeric = [all(isinstance(row[index], (int, float))
                   for row in rows) if rows else False
               for index in range(len(headers))]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * width for width in widths))
    for row in rendered:
        out.append(line(row))
    return "\n".join(out)
