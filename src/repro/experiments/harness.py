"""Drive synthetic workloads through policies and through the broker.

Two execution paths, matched so their headline metrics are comparable:

* :func:`run_policy_workload` — the fast path: drive the workload's
  arrival/departure/failure events directly against an
  :class:`~repro.baselines.base.AllocatorPolicy`. Used for the load
  sweeps (X1) where dozens of (policy, load) points are needed.
* :func:`run_broker_workload` — the full-stack path: issue real
  :class:`~repro.sla.negotiation.ServiceRequest` objects against a
  wired testbed, exercising discovery, negotiation, GARA, monitoring
  and the scenario handlers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.base import AllocatorPolicy
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter, range_parameter
from ..qos.specification import QoSSpecification
from ..sla.document import AdaptationOptions
from ..sla.negotiation import ServiceRequest
from ..workloads.sessions import SessionSpec, Workload
from .metrics import TimeWeightedMetrics

_EPSILON = 1e-9

#: Revenue-rate multipliers per class (mirrors the default pricing
#: policy's class multipliers; absolute scale is arbitrary).
CLASS_RATES: "Dict[ServiceClass, float]" = {
    ServiceClass.GUARANTEED: 1.5,
    ServiceClass.CONTROLLED_LOAD: 1.0,
    ServiceClass.BEST_EFFORT: 0.25,
}


@dataclass
class PolicyRunResult:
    """Headline metrics of one (policy, workload) run."""

    policy_name: str
    offered_load: float
    guaranteed_requests: int = 0
    guaranteed_accepted: int = 0
    controlled_requests: int = 0
    controlled_accepted: int = 0
    best_effort_requests: int = 0
    best_effort_accepted: int = 0
    mean_utilization: float = 0.0
    violation_time_fraction: float = 0.0
    violation_user_time: float = 0.0
    best_effort_cpu_time: float = 0.0
    revenue: float = 0.0

    @property
    def guaranteed_acceptance(self) -> float:
        """Acceptance rate of guaranteed requests (1.0 when none)."""
        if self.guaranteed_requests == 0:
            return 1.0
        return self.guaranteed_accepted / self.guaranteed_requests

    @property
    def controlled_acceptance(self) -> float:
        """Acceptance rate of controlled-load requests."""
        if self.controlled_requests == 0:
            return 1.0
        return self.controlled_accepted / self.controlled_requests

    @property
    def best_effort_acceptance(self) -> float:
        """Acceptance rate of best-effort requests."""
        if self.best_effort_requests == 0:
            return 1.0
        return self.best_effort_accepted / self.best_effort_requests


def run_policy_workload(policy: AllocatorPolicy, workload: Workload, *,
                        failures: Sequence["Tuple[float, float]"] = ()
                        ) -> PolicyRunResult:
    """Replay a workload against an allocation policy.

    Args:
        policy: The policy under test (fresh instance).
        workload: The synthetic workload.
        failures: ``(time, delta)`` capacity events — negative deltas
            fail capacity, positive deltas repair it.
    """
    result = PolicyRunResult(
        policy_name=policy.name,
        offered_load=workload.offered_cpu_load(policy.total_capacity()))
    metrics = TimeWeightedMetrics(start=0.0)

    # Event list: (time, order, kind, payload). Departures before
    # arrivals at the same instant, failures first of all.
    events: List[Tuple[float, int, str, object]] = []
    for time, delta in failures:
        events.append((time, 0, "capacity", delta))
    for session in workload.sessions:
        events.append((session.arrival, 2, "arrive", session))
        events.append((min(session.end, workload.horizon), 1, "depart",
                       session))
    events.sort(key=lambda item: (item[0], item[1]))

    active: Dict[str, SessionSpec] = {}
    admitted: Dict[str, bool] = {}

    def observe(time: float) -> None:
        shortfall_users = 0
        shortfall_total = 0.0
        revenue_rate = 0.0
        best_effort_served = 0.0
        for user, session in active.items():
            served = policy.served(user)
            rate = CLASS_RATES[session.service_class]
            revenue_rate += served * rate
            if session.service_class is ServiceClass.BEST_EFFORT:
                best_effort_served += served
            else:
                entitled = min(session.cpu_best, session.cpu_floor)
                if served < entitled - _EPSILON:
                    shortfall_users += 1
                    shortfall_total += entitled - served
        metrics.observe(
            time,
            utilization=policy.utilization(),
            violation=1.0 if shortfall_total > _EPSILON else 0.0,
            shortfall_users=float(shortfall_users),
            best_effort_served=best_effort_served,
            revenue_rate=revenue_rate)

    for time, _order, kind, payload in events:
        if time > workload.horizon:
            break
        if kind == "capacity":
            delta = float(payload)  # type: ignore[arg-type]
            if delta < 0:
                policy.apply_failure(-delta)
            else:
                policy.apply_repair(delta)
        elif kind == "arrive":
            session = payload  # type: ignore[assignment]
            assert isinstance(session, SessionSpec)
            user = session.user
            if session.service_class is ServiceClass.BEST_EFFORT:
                result.best_effort_requests += 1
                policy.set_best_effort_demand(user, session.cpu_best)
                active[user] = session
                admitted[user] = True
                if policy.served(user) >= session.cpu_best - _EPSILON:
                    result.best_effort_accepted += 1
            else:
                if session.service_class is ServiceClass.GUARANTEED:
                    result.guaranteed_requests += 1
                else:
                    result.controlled_requests += 1
                if policy.admit_guaranteed(user, session.cpu_floor):
                    policy.set_guaranteed_demand(user, session.cpu_best)
                    active[user] = session
                    admitted[user] = True
                    if session.service_class is ServiceClass.GUARANTEED:
                        result.guaranteed_accepted += 1
                    else:
                        result.controlled_accepted += 1
        elif kind == "depart":
            session = payload  # type: ignore[assignment]
            assert isinstance(session, SessionSpec)
            user = session.user
            if not admitted.pop(user, False):
                continue
            active.pop(user, None)
            if session.service_class is ServiceClass.BEST_EFFORT:
                policy.set_best_effort_demand(user, 0.0)
            else:
                policy.remove_guaranteed(user)
        observe(time)

    metrics.finalize(workload.horizon)
    result.mean_utilization = metrics.mean("utilization")
    result.violation_time_fraction = metrics.mean("violation")
    result.violation_user_time = metrics.integral("shortfall_users")
    result.best_effort_cpu_time = metrics.integral("best_effort_served")
    result.revenue = metrics.integral("revenue_rate")
    return result


# ----------------------------------------------------------------------
# Full-stack path
# ----------------------------------------------------------------------


def request_from_spec(session: SessionSpec, *,
                      service_name: str = "simulation-service"
                      ) -> ServiceRequest:
    """Translate a synthetic session into a broker ServiceRequest."""
    parameters = []
    if session.service_class is ServiceClass.CONTROLLED_LOAD \
            and session.cpu_best > session.cpu_floor:
        parameters.append(range_parameter(Dimension.CPU, session.cpu_floor,
                                          session.cpu_best))
    else:
        parameters.append(exact_parameter(Dimension.CPU, session.cpu_best))
    if session.memory_mb > 0:
        parameters.append(exact_parameter(Dimension.MEMORY_MB,
                                          session.memory_mb))
    return ServiceRequest(
        client=session.user,
        service_name=service_name,
        service_class=session.service_class,
        specification=QoSSpecification.from_iterable(parameters),
        start=session.arrival,
        end=session.end,
        adaptation=AdaptationOptions(
            accept_degradation=session.accept_degradation,
            accept_termination=session.accept_termination,
            accept_promotion=session.accept_promotion),
    )


def run_broker_workload(testbed, workload: Workload, *,
                        sample_interval: float = 5.0) -> PolicyRunResult:
    """Replay a workload through a full testbed broker.

    Requests are scheduled at their arrival times on the testbed's
    simulator; a periodic sampler integrates utilization and violation
    signals; revenue comes from the broker's real accounting ledger.
    """
    broker = testbed.broker
    sim = testbed.sim
    result = PolicyRunResult(
        policy_name="broker",
        offered_load=workload.offered_cpu_load(testbed.partition.total))
    metrics = TimeWeightedMetrics(start=sim.now)

    def issue(session: SessionSpec) -> None:
        if session.service_class is ServiceClass.BEST_EFFORT:
            result.best_effort_requests += 1
            granted = broker.request_best_effort(
                session.user, session.cpu_best, duration=session.duration)
            if granted:
                result.best_effort_accepted += 1
            return
        request = request_from_spec(session)
        outcome = broker.request_service(request)
        if session.service_class is ServiceClass.GUARANTEED:
            result.guaranteed_requests += 1
            if outcome.accepted:
                result.guaranteed_accepted += 1
        else:
            result.controlled_requests += 1
            if outcome.accepted:
                result.controlled_accepted += 1

    for session in workload.sessions:
        sim.schedule_at(session.arrival,
                        lambda s=session: issue(s),
                        label=f"workload:arrive:{session.session_id}")

    def sample() -> None:
        report = testbed.partition.last_report
        shortfall = (sum(report.shortfalls.values())
                     if report is not None else 0.0)
        metrics.observe(
            sim.now,
            utilization=testbed.partition.utilization(),
            violation=1.0 if shortfall > _EPSILON else 0.0,
            best_effort_served=testbed.partition.best_effort_served())
        sim.schedule(sample_interval, sample, label="workload:sample")

    sim.schedule(sample_interval, sample, label="workload:sample")
    sim.run(until=workload.horizon)
    metrics.finalize(workload.horizon)
    result.mean_utilization = metrics.mean("utilization")
    result.violation_time_fraction = metrics.mean("violation")
    result.best_effort_cpu_time = metrics.integral("best_effort_served")
    result.revenue = broker.ledger.provider_net(sim.now)
    return result
