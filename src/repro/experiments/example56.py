"""The Section 5.6 worked example, replayed.

The paper's example: a 64-node SGI machine exposes 26 processor nodes
to Grid users, partitioned ``Cg=15, Ca=6, Cb=5``. A composite SLA is
negotiated; its compute sub-SLA (``SLA3``) books 10 processor nodes.
Measurements are reported at five instants ``t1..t5``:

* ``t1`` — SLA3 runs at 10 nodes; best-effort work soaks idle capacity.
* ``t2`` — guaranteed demand drops to 4 nodes ("best effort users use
  resources in an unpredicted pattern" — the borrowers expand).
* ``t3`` — three processors in the guaranteed pool become inaccessible
  (``Cg`` effectively 12) while guaranteed demand rises to 14; the
  deficit is "brought from ``Ca``" — ``Adapt()`` in action.
* ``t4`` — the three processors recover; guaranteed demand is served
  from ``Cg`` alone again.
* ``t5`` — SLA3 completes its validity period; its 10 nodes return to
  the pool and best-effort borrowing expands.

The scanned pseudo-table in the paper is OCR-garbled; the replay pins
the *legible* anchors (the partition sizes, the 3-node failure, the
zero-shortfall guarantee through the failure, the ``min(g(u), c(u,t))
= 10`` allocation, the post-``t5`` release) and reports the full
per-pool sourcing at each instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.capacity import CapacityPartition
from ..errors import InstantNotFound
from ..units import iszero

#: The paper's partition.
CG, CA, CB = 15.0, 6.0, 5.0
#: Guaranteed demand besides SLA3 at each instant (reconstruction).
OTHER_DEMAND = {"t1": 0.0, "t2": 4.0, "t3": 4.0, "t4": 4.0, "t5": 4.0}
#: SLA3's demand: 10 nodes while its sub-SLA is valid.
SLA3_DEMAND = {"t1": 10.0, "t2": 10.0, "t3": 10.0, "t4": 10.0, "t5": 0.0}
#: Best-effort offered demand (always enough to soak what is idle).
BEST_EFFORT_DEMAND = {"t1": 26.0, "t2": 26.0, "t3": 26.0, "t4": 26.0,
                      "t5": 26.0}
#: Failed nodes at each instant (the t3 failure, repaired at t4).
FAILED = {"t1": 0.0, "t2": 0.0, "t3": 3.0, "t4": 0.0, "t5": 0.0}

INSTANTS = ("t1", "t2", "t3", "t4", "t5")


@dataclass(frozen=True)
class TimelineRow:
    """One instant's allocation state."""

    instant: str
    effective_cg: float
    guaranteed_demand: float
    guaranteed_served: float
    sla3_served: float
    from_cg: float
    from_ca: float
    from_cb: float
    best_effort_served: float
    adapt_transfer: float
    shortfall: float
    idle: float


@dataclass(frozen=True)
class Example56Result:
    """The replayed timeline plus the anchors the paper states."""

    rows: "Tuple[TimelineRow, ...]"

    def row(self, instant: str) -> TimelineRow:
        """The row for one instant."""
        for row in self.rows:
            if row.instant == instant:
                return row
        raise InstantNotFound(instant)

    @property
    def guarantees_always_honored(self) -> bool:
        """Whether no instant shows a guaranteed shortfall."""
        return all(iszero(row.shortfall) for row in self.rows)

    @property
    def never_underutilized(self) -> bool:
        """The paper's claim (a): free capacity is always consumed by
        best-effort borrowers (idle stays zero while demand exists)."""
        return all(iszero(row.idle) for row in self.rows)


def run_example56() -> Example56Result:
    """Replay the Section 5.6 timeline on a fresh partition."""
    partition = CapacityPartition(CG, CA, CB, best_effort_min=0.0)
    partition.admit_guaranteed("sla3", 10.0)
    partition.admit_guaranteed("other", 4.0)
    rows: List[TimelineRow] = []
    for instant in INSTANTS:
        # Apply the instant's state.
        target_failed = FAILED[instant]
        if partition.failed < target_failed:
            partition.apply_failure(target_failed - partition.failed)
        elif partition.failed > target_failed:
            partition.apply_repair(partition.failed - target_failed)
        # SLA3 allocation: the paper's min(g(u), c(u,t)).
        partition.set_guaranteed_demand("sla3",
                                        min(10.0, SLA3_DEMAND[instant]))
        partition.set_guaranteed_demand("other", OTHER_DEMAND[instant])
        report = partition.set_best_effort_demand(
            "be", BEST_EFFORT_DEMAND[instant])
        sla3 = partition.guaranteed_holding("sla3")
        other = partition.guaranteed_holding("other")
        eff_g, _eff_a, _eff_b = partition.effective_sizes()
        rows.append(TimelineRow(
            instant=instant,
            effective_cg=eff_g,
            guaranteed_demand=sla3.demand + other.demand,
            guaranteed_served=sla3.served + other.served,
            sla3_served=sla3.served,
            from_cg=sla3.from_g + other.from_g,
            from_ca=sla3.from_a + other.from_a,
            from_cb=sla3.from_b + other.from_b,
            best_effort_served=partition.best_effort_served(),
            adapt_transfer=report.adapt_transfer,
            shortfall=sum(report.shortfalls.values()),
            idle=partition.idle_capacity(),
        ))
    return Example56Result(rows=tuple(rows))


def format_example56(result: Example56Result) -> str:
    """Render the replayed timeline as the paper-style table."""
    header = (f"{'t':<4}{'Cg_eff':>7}{'G demand':>9}{'G served':>9}"
              f"{'SLA3':>6}{'fromCg':>7}{'fromCa':>7}{'fromCb':>7}"
              f"{'BE':>6}{'Adapt':>7}{'short':>6}{'idle':>6}")
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.instant:<4}{row.effective_cg:>7g}"
            f"{row.guaranteed_demand:>9g}{row.guaranteed_served:>9g}"
            f"{row.sla3_served:>6g}{row.from_cg:>7g}{row.from_ca:>7g}"
            f"{row.from_cb:>7g}{row.best_effort_served:>6g}"
            f"{row.adapt_transfer:>7g}{row.shortfall:>6g}{row.idle:>6g}")
    return "\n".join(lines)
