"""The quickstart episode with a broker crash and recovery.

``python -m repro quickstart --crash SEED`` replays the scripted
crash episode — three SLAs, a best-effort demand, a deep node failure
— but kills the broker at a seed-chosen journal write point, wipes its
in-memory state, recovers from the write-ahead journal, and lets the
episode run to its horizon.  The report shows the recovery
reconciliation, the post-recovery invariant audit and the final SLA
outcomes.

Everything is a function of the two seeds (workload seed and crash
seed), so two runs with the same ``--crash SEED`` print byte-identical
reports — a crashed run is still a replayable test case.  With
``--journal PATH`` the durable journal is also written to disk so
``python -m repro recover PATH`` can summarize it cold.
"""

from __future__ import annotations

from typing import List, Optional

from ..recovery.crashpoints import (
    CRASH_MODES,
    count_write_points,
    run_episode,
    verify_recovered,
)
from ..recovery.journal import FileJournalStore, Journal, encode_record
from ..recovery.recover import build_replay_view


def run_crash_quickstart(crash_seed: int, *, seed: int = 0,
                         snapshot_interval: float = 20.0,
                         journal_path: Optional[str] = None) -> str:
    """Run the crash episode at a seed-chosen write point; returns the
    printable report."""
    total = count_write_points(seed=seed,
                               snapshot_interval=snapshot_interval)
    crash_lsn = (crash_seed % total) + 1
    mode = CRASH_MODES[crash_seed % len(CRASH_MODES)]
    result = run_episode(crash_lsn=crash_lsn, mode=mode, seed=seed,
                         snapshot_interval=snapshot_interval)
    testbed = result.testbed
    broker = testbed.broker

    lines: List[str] = []
    lines.append("=" * 70)
    lines.append(f"Quickstart with a broker crash (crash seed "
                 f"{crash_seed}: write point {crash_lsn}/{total}, "
                 f"{mode} the record became durable)")
    lines.append("=" * 70)
    lines.append("")
    assert result.report is not None
    lines.append(result.report.render())
    lines.append("")

    problems = verify_recovered(testbed)
    lines.append("post-recovery invariant audit")
    lines.append("-" * 70)
    if problems:
        for problem in problems:
            lines.append(f"  VIOLATED: {problem}")
    else:
        lines.append("  capacity conserved (Cg+Ca+Cb == C - failed): OK")
        lines.append("  commitments within Cg: OK")
        lines.append("  slot table == live reservations: OK")
        lines.append("  every active flow owned by one session: OK")
        lines.append("  SLA atomicity (fully live or fully rolled "
                     "back): OK")
    lines.append("")

    lines.append("final SLA outcomes")
    lines.append("-" * 70)
    for sla in broker.repository.all():
        lines.append(f"  SLA {sla.sla_id} ({sla.client!r}, "
                     f"{sla.service_class.value}): {sla.status.value}")
    metrics = broker.metrics
    lines.append("")
    lines.append("recovery counters")
    lines.append("-" * 70)
    for name in ("repro_recovery_runs_total",
                 "repro_recovery_slas_restored",
                 "repro_recovery_slas_rolled_back",
                 "repro_recovery_orphans_cancelled",
                 "repro_recovery_flows_released"):
        lines.append(f"  {name}: {metrics.counter_value(name):g}")
    lines.append(f"  journal records (durable): "
                 f"{len(result.journal.records())}")
    lines.append("")
    lines.append("activity log")
    lines.append("-" * 70)
    lines.append(testbed.trace.render())

    if journal_path is not None:
        store = FileJournalStore(journal_path)
        for record in result.journal.records():
            store.append(encode_record(record))
        lines.append("")
        lines.append(f"journal written to {journal_path}")
    return "\n".join(lines)


def summarize_journal(journal_path: str) -> str:
    """Cold-restart summary of an on-disk journal (``repro recover``).

    Replays the journal without a testbed and reports what a recovery
    pass would start from: the SLA documents and statuses, composite
    reservation views (including orphaned half-open reserves), and
    best-effort demands.
    """
    journal = Journal(FileJournalStore(journal_path))
    view = build_replay_view(journal)
    by_type: "dict[str, int]" = {}
    for record in journal.records():
        by_type[record.type] = by_type.get(record.type, 0) + 1

    lines: List[str] = []
    lines.append(f"journal {journal_path}: {journal.last_lsn} durable "
                 f"record(s)")
    lines.append("-" * 70)
    for record_type in sorted(by_type):
        lines.append(f"  {record_type}: {by_type[record_type]}")
    lines.append("")
    lines.append(f"replayed state ({view.replayed} record(s) folded)")
    lines.append("-" * 70)
    for sla in view.repository.all():
        lines.append(f"  SLA {sla.sla_id} ({sla.client!r}): "
                     f"{sla.status.value}")
    for sla_id in sorted(view.composites):
        composite = view.composites[sla_id]
        if composite.cancelled:
            disposition = "cancelled"
        elif composite.open:
            disposition = "ORPHANED (reserve never completed)"
        elif composite.confirmed:
            disposition = "confirmed"
        else:
            disposition = "unconfirmed"
        lines.append(f"  composite for SLA {sla_id}: {disposition} "
                     f"(handle={composite.handle}, "
                     f"flows={composite.flows})")
    for user in view.best_effort:
        lines.append(f"  best-effort {user!r}: "
                     f"{view.best_effort[user]:g} node(s)")
    return "\n".join(lines)
