"""The quickstart session with full telemetry enabled.

``python -m repro quickstart --telemetry`` (or ``repro telemetry``)
replays the quickstart walkthrough — one guaranteed session with a
network demand, a mid-run node failure at t=30 and a repair at t=60 —
with the control plane on the message bus and the telemetry hub
installed, then renders the Figure-6-style activity report:

* the **span trees**, one connected tree per control-plane episode
  (admission spans broker → GARA → NRM; the §5.6 adaptation episode
  spans capacity-change → rebalance → degradation handling →
  reservation modify);
* the **metrics snapshot** in Prometheus text format, including the
  time-weighted Cg/Ca/Cb occupancy gauges fed by every rebalance;
* the raw **JSONL event stream** interleaving component trace rows
  with finished spans.

Everything runs on the simulation clock from fixed seeds, so two runs
print byte-identical reports; add ``--chaos SEED`` to overlay fault
injection and watch retries appear as sibling spans under one call.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.testbed import (attach_control_plane, build_testbed,
                            install_chaos, install_telemetry)
from ..errors import CircuitOpenError
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, range_parameter
from ..qos.specification import QoSSpecification
from ..sla.document import AdaptationOptions
from ..sla.negotiation import ServiceRequest
from .chaos_demo import quickstart_request


def degradable_request(client: str = "user2") -> ServiceRequest:
    """A controlled-load companion session that adaptation may squeeze.

    The CPU range (2..8) plus ``accept_degradation`` is exactly what
    Scenario 1/3 look for when a failure leaves the guaranteed session
    short: this session gets resized to its floor so the guarantee is
    restored instead of terminated.
    """
    specification = QoSSpecification.of(
        range_parameter(Dimension.CPU, 2, 8),
        range_parameter(Dimension.MEMORY_MB, 32, 128),
    )
    return ServiceRequest(
        client=client,
        service_name="simulation-service",
        service_class=ServiceClass.CONTROLLED_LOAD,
        specification=specification,
        start=0.0, end=100.0,
        adaptation=AdaptationOptions(accept_degradation=True),
    )


def run_telemetry_quickstart(*, seed: int = 0,
                             chaos_seed: Optional[int] = None) -> str:
    """Run the quickstart with telemetry on; returns the report."""
    testbed = build_testbed(seed=seed)
    if chaos_seed is not None:
        install_chaos(testbed, chaos_seed)
    else:
        attach_control_plane(testbed)
    telemetry = install_telemetry(testbed)
    assert testbed.bus is not None and testbed.gateway is not None
    broker = testbed.broker

    lines: List[str] = []
    lines.append("=" * 70)
    chaos_note = (f" under chaos seed {chaos_seed}"
                  if chaos_seed is not None else "")
    lines.append(f"Quickstart with telemetry (seed {seed}{chaos_note})")
    lines.append("=" * 70)

    broker.verifier.start_polling(5.0)
    # A §5.6-sized outage: 16 of 26 grid nodes fail at t=30, so the two
    # sessions' 12 delivered CPUs no longer fit in the 10 that remain
    # and the broker must adapt; the repair at t=60 restores them.
    testbed.sim.schedule_at(30.0, lambda: testbed.machine.fail_nodes(16),
                            label="inject:node-failure")
    testbed.sim.schedule_at(60.0, lambda: testbed.machine.repair_nodes(),
                            label="inject:node-repair")

    sla_ids: List[int] = []
    for request in (quickstart_request(), degradable_request()):
        session_client = testbed.client(request.client)
        try:
            negotiation_id, offers, reason = session_client.request_service(
                request)
            if negotiation_id is None:
                lines.append(f"service request refused: {reason}")
                continue
            sla, establish_reason = session_client.accept_offer(
                negotiation_id)
            if sla is None:
                lines.append(f"establishment failed: {establish_reason}")
                continue
            sla_ids.append(sla.sla_id)
            lines.append(f"SLA {sla.sla_id} established for "
                         f"{sla.client!r} ({sla.service_class.value})")
        except CircuitOpenError as circuit_error:
            lines.append(f"session abandoned: {circuit_error}")

    testbed.sim.run(until=120.0)
    testbed.gateway.sweep_stale(0.0)

    for sla_id in sla_ids:
        final = broker.repository.get(sla_id)
        lines.append(f"final SLA {sla_id} status: {final.status.value}")
    lines.append(f"violations detected: "
                 f"{broker.metrics.counter_value('repro_sla_violations_detected_total'):g}"
                 f", restorations: "
                 f"{broker.metrics.counter_value('repro_sla_restorations_total'):g}")
    lines.append("")
    lines.append(telemetry.report(title="quickstart"))
    return "\n".join(lines)
