"""Render a trace as an ASCII sequence diagram (the Figure 2 view).

The broker's trace rows are mapped onto actor-to-actor interactions
(Client, AQoS, RM, NRM, Service) and drawn as a lifeline diagram, so
``bench_fig2_sequence.py`` regenerates the paper's sequence figure
rather than a flat log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.trace import TraceRecorder

#: The paper's actors, in Figure 2's left-to-right order.
ACTORS: "Tuple[str, ...]" = ("Client", "AQoS", "RM", "NRM", "Service")


@dataclass(frozen=True)
class Interaction:
    """One arrow of the sequence diagram."""

    time: float
    source: str
    target: str
    label: str


#: (category, message-substring) -> (source, target, arrow label).
_RULES: "Tuple[Tuple[str, str, str, str, str], ...]" = (
    ("broker", "discovery for", "Client", "AQoS", "QueryServices()"),
    ("broker", "insufficient resources", "AQoS", "AQoS", "Adapt()"),
    ("broker", "proposed", "AQoS", "Client", "SLAnegotiation()"),
    ("reservation", "temporarily reserved compute", "AQoS", "RM",
     "ResourceAllocation()"),
    ("reservation", "reserved network", "AQoS", "NRM",
     "ResourceAllocation()"),
    ("compute", "launched", "RM", "Service", "ServiceInvocation()"),
    ("broker", "established", "AQoS", "Client", "SLA established"),
    ("sla-verif", "conformance test", "AQoS", "RM", "QoSmanagement()"),
    ("sla-verif", "NRM degradation", "NRM", "AQoS",
     "DegradationNotice()"),
    ("broker", "Scenario 3", "AQoS", "Service", "QoSadaptation()"),
    ("broker", "delivered point moved", "AQoS", "RM",
     "ModifyReservation()"),
    ("broker", "re-negotiated", "AQoS", "Client", "Renegotiation()"),
    ("compute", "completed", "Service", "RM", "completion"),
    ("broker", "closed", "AQoS", "Client", "QoStermination()"),
)


def extract_interactions(trace: TraceRecorder, *,
                         limit: Optional[int] = None
                         ) -> List[Interaction]:
    """Map trace rows onto Figure 2 interactions (unmatched rows are
    skipped)."""
    interactions: List[Interaction] = []
    for entry in trace:
        for category, needle, source, target, label in _RULES:
            if entry.category == category and needle in entry.message:
                interactions.append(Interaction(
                    time=entry.time, source=source, target=target,
                    label=label))
                break
        if limit is not None and len(interactions) >= limit:
            break
    return interactions


def render_sequence_diagram(interactions: Sequence[Interaction], *,
                            column_width: int = 16) -> str:
    """Draw the interactions as an ASCII lifeline diagram."""
    positions = {actor: index * column_width + column_width // 2
                 for index, actor in enumerate(ACTORS)}
    total_width = column_width * len(ACTORS)

    def lifeline_row() -> List[str]:
        row = [" "] * total_width
        for actor in ACTORS:
            row[positions[actor]] = "|"
        return row

    prefix_width = 9  # matches the f"{time:8.2f} " arrow prefix
    blank_prefix = " " * prefix_width
    lines: List[str] = []
    header = [" "] * total_width
    for actor in ACTORS:
        start = positions[actor] - len(actor) // 2
        header[start:start + len(actor)] = actor
    lines.append((blank_prefix + "".join(header)).rstrip())
    lines.append((blank_prefix + "".join(lifeline_row())).rstrip())

    for interaction in interactions:
        source = positions[interaction.source]
        target = positions[interaction.target]
        row = lifeline_row()
        if source == target:
            # Self-call: a small loop marker.
            row[source] = "*"
            text = f" {interaction.label}"
            for offset, char in enumerate(text):
                slot = source + 1 + offset
                if slot < total_width:
                    row[slot] = char
        else:
            low, high = sorted((source, target))
            for slot in range(low + 1, high):
                row[slot] = "-"
            row[target] = ">" if target > source else "<"
            label = interaction.label[:high - low - 3]
            start = (low + high) // 2 - len(label) // 2
            for offset, char in enumerate(label):
                slot = start + offset
                if low < slot < high:
                    row[slot] = char
        time_prefix = f"{interaction.time:8.2f} "
        lines.append((time_prefix + "".join(row)).rstrip())
        lines.append((blank_prefix + "".join(lifeline_row())).rstrip())
    return "\n".join(lines)


def figure2_diagram(trace: TraceRecorder, *,
                    limit: Optional[int] = 24) -> str:
    """One-call helper: extract and render."""
    return render_sequence_diagram(extract_interactions(trace,
                                                        limit=limit))
