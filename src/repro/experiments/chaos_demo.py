"""The quickstart session under deterministic chaos.

``python -m repro quickstart --chaos SEED`` replays the quickstart
walkthrough — one guaranteed session with a network demand, a mid-run
node failure and repair — but with the control plane on the message
bus and seeded fault injection armed: requests are dropped, duplicated,
delayed and error-replied; the client rides retries with backoff;
endpoints answer re-deliveries from their dedup caches; lost
notifications land in the dead-letter record and are covered by the
verifier's polling.

Everything is a pure function of the two seeds (testbed workload seed
and chaos seed), so two runs with the same ``--chaos SEED`` print the
same report — a chaotic run is still a replayable test case.
"""

from __future__ import annotations

from typing import List

from ..core.testbed import build_testbed, install_chaos
from ..errors import CircuitOpenError
from ..qos.classes import ServiceClass
from ..qos.parameters import Dimension, exact_parameter
from ..qos.specification import QoSSpecification
from ..sla.document import NetworkDemand
from ..sla.negotiation import ServiceRequest
from ..units import parse_bound


def quickstart_request(client: str = "user1") -> ServiceRequest:
    """The quickstart walkthrough's service request (Table 1 shape)."""
    specification = QoSSpecification.of(
        exact_parameter(Dimension.CPU, 4),
        exact_parameter(Dimension.MEMORY_MB, 64),
    )
    return ServiceRequest(
        client=client,
        service_name="simulation-service",
        service_class=ServiceClass.GUARANTEED,
        specification=specification,
        start=0.0, end=100.0,
        network=NetworkDemand(
            source_ip="135.200.50.101", dest_ip="192.200.168.33",
            bandwidth_mbps=10.0,
            packet_loss_bound=parse_bound("LessThan 10%")),
    )


def run_chaos_quickstart(chaos_seed: int, *, drop: float = 0.1,
                         duplicate: float = 0.05, delay: float = 0.1,
                         error: float = 0.05, reorder: float = 0.05,
                         seed: int = 0) -> str:
    """Run the quickstart session under fault injection; returns the
    printable report (trace plus chaos accounting)."""
    testbed = build_testbed(seed=seed)
    plan = install_chaos(testbed, chaos_seed, drop=drop,
                         duplicate=duplicate, delay=delay, error=error,
                         reorder=reorder)
    assert testbed.bus is not None and testbed.gateway is not None
    broker = testbed.broker
    client = testbed.client("user1")

    lines: List[str] = []
    lines.append("=" * 70)
    lines.append(f"Quickstart under chaos (chaos seed {chaos_seed}: "
                 f"drop={drop:g} duplicate={duplicate:g} delay={delay:g} "
                 f"error={error:g} reorder={reorder:g})")
    lines.append("=" * 70)

    broker.verifier.start_polling(5.0)
    testbed.sim.schedule_at(30.0, lambda: testbed.machine.fail_nodes(3),
                            label="inject:node-failure")
    testbed.sim.schedule_at(60.0, lambda: testbed.machine.repair_nodes(),
                            label="inject:node-repair")

    sla_id = None
    try:
        negotiation_id, offers, reason = client.request_service(
            quickstart_request())
        if negotiation_id is None:
            lines.append(f"service request refused: {reason}")
        else:
            sla, establish_reason = client.accept_offer(negotiation_id)
            if sla is None:
                lines.append(f"establishment failed: {establish_reason}")
            else:
                sla_id = sla.sla_id
                lines.append(f"SLA {sla_id} established for "
                             f"{sla.client!r} over a lossy control plane")
    except CircuitOpenError as circuit_error:
        # The transport ate every attempt; the session is cleanly
        # abandoned (and any stale negotiation swept below).
        lines.append(f"session abandoned: {circuit_error}")

    testbed.sim.run(until=120.0)
    swept = testbed.gateway.sweep_stale(0.0)

    if sla_id is not None:
        final = broker.repository.get(sla_id)
        lines.append(f"final SLA status: {final.status.value}")
    partition = testbed.partition
    effective_g, effective_a, effective_b = partition.effective_sizes()
    conserved = abs((effective_g + effective_a + effective_b)
                    - (partition.total - partition.failed)) < 1e-9
    lines.append("")
    lines.append("chaos accounting")
    lines.append("-" * 70)
    for key, value in sorted(plan.stats.as_dict().items()):
        lines.append(f"  faults.{key}: {value}")
    for key, value in sorted(client.caller.stats.as_dict().items()):
        lines.append(f"  caller.{key}: {value}")
    lines.append(f"  dead_letters: {len(testbed.bus.dead_letters)}")
    lines.append(f"  stale_negotiations_swept: {swept}")
    lines.append(f"  capacity_conserved (Cg+Ca+Cb == C): {conserved}")
    lines.append("")
    lines.append("activity log")
    lines.append("-" * 70)
    lines.append(testbed.trace.render())
    return "\n".join(lines)
