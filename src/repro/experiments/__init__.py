"""Experiment harness: metrics, policy runner, the Section 5.6 replay.

* :mod:`repro.experiments.metrics` — time-weighted accumulators
  (re-exported from :mod:`repro.telemetry.timeweighted`).
* :mod:`repro.experiments.harness` — drive a workload through an
  allocation policy (fast path) or a full broker testbed.
* :mod:`repro.experiments.example56` — the paper's worked example.
* :mod:`repro.experiments.reporting` — plain-text result tables.
* :mod:`repro.experiments.chaos_demo` /
  :mod:`repro.experiments.telemetry_demo` — the quickstart session
  under fault injection / with the telemetry hub installed.
"""

from .chaos_demo import run_chaos_quickstart
from .example56 import Example56Result, TimelineRow, run_example56
from .harness import PolicyRunResult, run_broker_workload, run_policy_workload
from .metrics import TimeWeightedMetrics
from .reporting import format_table
from .sequence import figure2_diagram
from .telemetry_demo import run_telemetry_quickstart

__all__ = [
    "Example56Result",
    "PolicyRunResult",
    "TimeWeightedMetrics",
    "TimelineRow",
    "figure2_diagram",
    "format_table",
    "run_broker_workload",
    "run_chaos_quickstart",
    "run_example56",
    "run_policy_workload",
    "run_telemetry_quickstart",
]
