"""Experiment harness: metrics, policy runner, the Section 5.6 replay.

* :mod:`repro.experiments.metrics` — time-weighted accumulators.
* :mod:`repro.experiments.harness` — drive a workload through an
  allocation policy (fast path) or a full broker testbed.
* :mod:`repro.experiments.example56` — the paper's worked example.
* :mod:`repro.experiments.reporting` — plain-text result tables.
"""

from .example56 import Example56Result, TimelineRow, run_example56
from .harness import PolicyRunResult, run_broker_workload, run_policy_workload
from .metrics import TimeWeightedMetrics
from .reporting import format_table
from .sequence import figure2_diagram

__all__ = [
    "Example56Result",
    "PolicyRunResult",
    "TimeWeightedMetrics",
    "TimelineRow",
    "figure2_diagram",
    "format_table",
    "run_broker_workload",
    "run_example56",
    "run_policy_workload",
]
