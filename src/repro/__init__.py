"""Reproduction of "QoS Adaptation in Service-Oriented Grids"
(Al-Ali, Hafid, Rana, Walker — Middleware 2003).

The package implements the G-QoSM framework on a simulated Grid
substrate: a discrete-event engine, a GARA-like advance-reservation
layer, compute and network resource managers, a UDDIe-style registry,
SLA negotiation and monitoring, and — the paper's contribution — the
capacity-partition adaptation algorithm (Algorithm 1) and the
revenue-optimization heuristic (Section 5.3), orchestrated by the AQoS
broker.

Quickstart::

    from repro import build_testbed

    testbed = build_testbed(total_cpu=26, guaranteed_cpu=15,
                            adaptive_cpu=6, best_effort_cpu=5)
    broker = testbed.broker
    offer = broker.request_service(...)

See ``examples/quickstart.py`` for the full walkthrough.
"""

__version__ = "1.0.0"

from .qos import (
    Dimension,
    PricingPolicy,
    QoSParameter,
    QoSSpecification,
    ResourceVector,
    ServiceClass,
    discrete_parameter,
    exact_parameter,
    range_parameter,
)

__all__ = [
    "Dimension",
    "PricingPolicy",
    "QoSParameter",
    "QoSSpecification",
    "ResourceVector",
    "ServiceClass",
    "__version__",
    "build_testbed",
    "discrete_parameter",
    "exact_parameter",
    "range_parameter",
]


def build_testbed(*args, **kwargs):
    """Build a fully wired single-domain testbed (lazy import).

    See :func:`repro.core.testbed.build_testbed` for parameters.
    """
    from .core.testbed import build_testbed as _build
    return _build(*args, **kwargs)
