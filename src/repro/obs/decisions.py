"""Decision provenance: *why* the control plane did what it did.

PR-4 spans record *that* an admission or adaptation happened; the PR-5
journal records *what* state it durably changed.  Neither records the
inputs of the choice — which candidate levels were considered, how much
head-room each pool had at that instant, which constraint refused the
request, what the accepted point earns.  A :class:`DecisionRecord`
captures exactly that, one record per admit/reject/degrade/rebalance
verdict, stamped with the active span and the newest durable journal
LSN so the three surfaces join into one causal episode.

The log follows the telemetry guard discipline: components default
their ``decisions`` attribute to ``None`` and pay a single
``is not None`` check when provenance is off (QLNT116 enforces that no
reject/degrade path skips the call).  Records are JSON-safe at emit
time — operating points keyed by :class:`~repro.qos.parameters.Dimension`
are re-keyed by the dimension's unit name — and flow into the shared
:class:`~repro.telemetry.EventStream` under the ``"decision"``
category, so the JSONL export stays the single byte-deterministic log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..telemetry.events import EventStream
from ..telemetry.spans import Tracer

__all__ = [
    "DecisionLog",
    "DecisionRecord",
    "point_payload",
]


def point_payload(point: "Mapping[Any, float]") -> "Dict[str, float]":
    """An operating point as a JSON-safe dict (unit-name keys, sorted).

    Accepts both raw ``{Dimension: value}`` points and already-string
    keyed dicts, so emit sites can pass whichever they hold.
    """
    flat = {}
    for dimension, value in point.items():
        key = dimension.value if isinstance(dimension, Enum) else str(dimension)
        flat[key] = value
    return {key: flat[key] for key in sorted(flat)}


def _jsonify(value: Any) -> Any:
    """Recursively re-key enums and stringify exotic values."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {(_jsonify(key) if not isinstance(key, str) else key):
                _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class DecisionRecord:
    """One control-plane verdict with its full context.

    Attributes:
        decision_id: Monotonic per-log sequence number.
        time: Simulation time of the verdict.
        action: What kind of choice this was (``"admission"``,
            ``"best_effort"``, ``"activation"``, ``"optimizer"``,
            ``"rebalance"``, ``"violation"``, ``"restoration"``,
            ``"adaptation"``, ``"promotion"``, ``"renegotiation"``).
        outcome: The verdict (``"accept"``, ``"reject"``, ``"grant"``,
            ``"squeeze"``, ``"detected"``, ...).
        subject: Who the verdict is about — a client name for
            pre-SLA rejects, ``"sla-<id>"`` afterwards,
            ``"partition"`` for rebalances.
        sla_id: The owning SLA id when one exists.
        constraint: The specific constraint that failed on a reject
            (``"discovery"``, ``"capacity"``, ``"negotiation"``,
            ``"reservation"``, ...); empty on success.
        reason: Human-readable explanation.
        candidates: The quality levels that were on the table, each a
            JSON-safe dict (point, demand, revenue rate).
        chosen: The accepted point/level with its revenue value
            (``None`` on rejects).
        headroom: Per-pool capacity context at decision time (only
            non-flushing partition reads — see :class:`DecisionLog`).
        trace_id / span_id: The enclosing PR-4 span, empty strings
            when no span was open.
        lsn: The newest durably-appended PR-5 journal LSN at emit time
            (0 when no journal is installed).
    """

    decision_id: int
    time: float
    action: str
    outcome: str
    subject: str = ""
    sla_id: Optional[int] = None
    constraint: str = ""
    reason: str = ""
    candidates: "Tuple[Dict[str, Any], ...]" = ()
    chosen: "Optional[Dict[str, Any]]" = None
    headroom: "Dict[str, float]" = field(default_factory=dict)
    trace_id: str = ""
    span_id: str = ""
    lsn: int = 0

    def to_dict(self) -> "Dict[str, Any]":
        """The record as a plain JSON-safe dict."""
        return {
            "decision_id": self.decision_id,
            "time": self.time,
            "action": self.action,
            "outcome": self.outcome,
            "subject": self.subject,
            "sla_id": self.sla_id,
            "constraint": self.constraint,
            "reason": self.reason,
            "candidates": list(self.candidates),
            "chosen": self.chosen,
            "headroom": dict(self.headroom),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "lsn": self.lsn,
        }


class DecisionLog:
    """The append-only decision-provenance log.

    Args:
        now: Clock callable (``lambda: sim.now``).
        stream: Optional shared event stream; every record is also
            emitted there under the ``"decision"`` category so the
            JSONL export carries the provenance feed.
        tracer: Optional tracer; records are stamped with the
            innermost open span at emit time.
        journal_getter: Optional callable returning the live journal
            (or ``None``); resolved per record so a journal installed
            *after* the log still stamps LSNs.  Inside a PR-6 group
            commit the stamp is the newest *durable* LSN — buffered
            group records have not reached the store yet.

    Emit sites must pass only **non-flushing** capacity reads in
    ``headroom`` (``effective_sizes()``, ``committed_total()``, the
    nominal pool sizes) — a flushing read (``idle_capacity()``,
    ``snapshot()``) would settle a deferred batch rebalance mid-batch
    and change the journal record sequence.
    """

    def __init__(self, now: "Callable[[], float]", *,
                 stream: Optional[EventStream] = None,
                 tracer: Optional[Tracer] = None,
                 journal_getter: "Optional[Callable[[], Any]]" = None
                 ) -> None:
        self._now = now
        self._stream = stream
        self._tracer = tracer
        self._journal_getter = journal_getter
        self._records: "List[DecisionRecord]" = []

    @property
    def records(self) -> "List[DecisionRecord]":
        """All records, in emit order (a copy)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def decide(self, action: str, outcome: str, *, subject: str = "",
               sla_id: Optional[int] = None, constraint: str = "",
               reason: str = "",
               candidates: "Sequence[Mapping[str, Any]]" = (),
               chosen: "Optional[Mapping[str, Any]]" = None,
               headroom: "Optional[Mapping[str, float]]" = None
               ) -> DecisionRecord:
        """Append one verdict and return the stamped record."""
        trace_id = ""
        span_id = ""
        if self._tracer is not None:
            span = self._tracer.current()
            if span is not None:
                trace_id = span.trace_id
                span_id = span.span_id
        lsn = 0
        if self._journal_getter is not None:
            journal = self._journal_getter()
            if journal is not None:
                lsn = journal.last_lsn
        record = DecisionRecord(
            decision_id=len(self._records) + 1,
            time=self._now(),
            action=action,
            outcome=outcome,
            subject=subject,
            sla_id=sla_id,
            constraint=constraint,
            reason=reason,
            candidates=tuple(_jsonify(dict(candidate))
                             for candidate in candidates),
            chosen=_jsonify(dict(chosen)) if chosen is not None else None,
            headroom={key: float(value)
                      for key, value in (headroom or {}).items()},
            trace_id=trace_id,
            span_id=span_id,
            lsn=lsn,
        )
        self._records.append(record)
        if self._stream is not None:
            details = record.to_dict()
            # The event carries the same timestamp positionally.
            del details["time"]
            self._stream.emit(record.time, "decision",
                              f"{action} {outcome}: "
                              f"{subject or record.sla_id or '?'}",
                              **details)
        return record

    # ------------------------------------------------------------------
    # Query helpers (the flight recorder's substrate)
    # ------------------------------------------------------------------

    def for_sla(self, sla_id: int) -> "List[DecisionRecord]":
        """Records about one SLA (by id or ``sla-<id>`` subject)."""
        key = f"sla-{sla_id}"
        return [record for record in self._records
                if record.sla_id == sla_id or record.subject == key]

    def for_subject(self, subject: str) -> "List[DecisionRecord]":
        """Records about one subject (client name, user key, ...)."""
        return [record for record in self._records
                if record.subject == subject]

    def by_action(self, action: str) -> "List[DecisionRecord]":
        """Records of one action kind, in emit order."""
        return [record for record in self._records
                if record.action == action]
