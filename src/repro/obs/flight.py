"""The flight recorder: one causal report per control-plane episode.

Three logs exist after PR-4/PR-5/this PR: spans (what happened, with
causality), journal records (what durably changed), and decision
records (why).  Each alone answers a different question; an operator
asking "why was SLA 1007 squeezed at t=340?" needs the *join*.  The
:class:`FlightRecorder` performs that join read-only over the live
objects — no extra storage, no extra cost when unused — and renders it
three ways:

* :meth:`why` — every verdict about one SLA (or client, or all of
  them), citing the failing constraint or the chosen point with its
  revenue value, plus the span and LSN stamps;
* :meth:`timeline` — a chronological merge of decisions, journal
  records and spans touching one SLA;
* :meth:`slo_report` — the per-class SLO state with its alert history.

All output is plain deterministic text (``%g`` floats, sorted keys),
so a fixed seed reproduces the report byte-for-byte — the property the
``scripts/check.sh`` obs smoke pins.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .decisions import DecisionLog, DecisionRecord
from .slo import SloEngine

__all__ = [
    "FlightRecorder",
]


def _fmt_value(value: Any) -> str:
    """Compact deterministic scalar rendering (``%g`` floats).

    Long payloads (journaled SLA XML runs to kilobytes) are truncated
    deterministically so a timeline stays one line per entry.
    """
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return f"{value:g}"
    text = str(value)
    if len(text) > 96:
        return f"{text[:93]}... (+{len(text) - 93} chars)"
    return text


def _fmt_mapping(payload: Any) -> str:
    """``k=v`` pairs in sorted key order."""
    if not isinstance(payload, dict) or not payload:
        return _fmt_value(payload)
    return " ".join(f"{key}={_fmt_value(payload[key])}"
                    for key in sorted(payload))


class FlightRecorder:
    """Joins decisions, spans, journal and SLO state into reports.

    Args:
        decisions: The decision-provenance log (required — it carries
            the verdicts everything else annotates).
        tracer: Optional tracer for span context in timelines.
        journal: Optional journal for durable-record context.
        slo: Optional SLO engine for :meth:`slo_report`.
    """

    def __init__(self, *, decisions: DecisionLog,
                 tracer: Optional[Any] = None,
                 journal: Optional[Any] = None,
                 slo: Optional[SloEngine] = None) -> None:
        self.decisions = decisions
        self.tracer = tracer
        self.journal = journal
        self.slo = slo

    # ------------------------------------------------------------------
    # why
    # ------------------------------------------------------------------

    def _explain(self, record: DecisionRecord) -> "List[str]":
        """Render one decision record as an indented block."""
        subject = record.subject or (f"sla-{record.sla_id}"
                                     if record.sla_id is not None
                                     else "?")
        header = (f"== {record.action} {record.outcome}: {subject} "
                  f"@ t={record.time:g}")
        lines = [header]
        if record.outcome in ("reject", "refuse", "terminate"):
            constraint = record.constraint or "unspecified"
            reason = record.reason or "no reason recorded"
            lines.append(f"   constraint: {constraint} — {reason}")
        elif record.reason:
            lines.append(f"   because: {record.reason}")
        if record.chosen is not None:
            lines.append(f"   chosen: {_fmt_mapping(record.chosen)}")
        if record.candidates:
            lines.append(f"   candidates ({len(record.candidates)}):")
            for candidate in record.candidates:
                lines.append(f"     - {_fmt_mapping(candidate)}")
        if record.headroom:
            lines.append(f"   headroom: {_fmt_mapping(record.headroom)}")
        stamps = []
        if record.trace_id:
            stamps.append(f"trace {record.trace_id}/{record.span_id}")
        if record.lsn:
            stamps.append(f"lsn {record.lsn}")
        if stamps:
            lines.append(f"   [{'] ['.join(stamps)}]")
        return lines

    def why(self, target: "Any" = "all") -> str:
        """Explain every verdict about ``target``.

        ``target`` is an SLA id (int or numeric string), a client-name
        string (pre-SLA rejects are recorded under the client name),
        or ``"all"`` for every admission-path verdict in emit order.
        """
        if isinstance(target, str) and target.isdigit():
            target = int(target)
        if target == "all":
            records = [record for record in self.decisions.records
                       if record.action in ("admission", "best_effort",
                                            "activation", "federation")]
            title = "all admission outcomes"
        elif isinstance(target, int):
            records = self.decisions.for_sla(target)
            title = f"sla-{target}"
        else:
            records = self.decisions.for_subject(str(target))
            title = str(target)
        lines = [f"# why: {title} — {len(records)} decision(s)"]
        for record in records:
            lines.append("")
            lines.extend(self._explain(record))
        if not records:
            lines.append("(no decisions recorded)")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # timeline
    # ------------------------------------------------------------------

    def timeline(self, sla_id: int) -> str:
        """Chronological decisions + journal records + spans for an SLA.

        Entries are merged by ``(time, source priority, source
        sequence)`` with journal first at equal times (the durable
        record precedes the verdict that observed it), then decisions,
        then spans.
        """
        entries: "List[Tuple[float, int, int, str]]" = []
        if self.journal is not None:
            for record in self.journal.records():
                if record.payload.get("sla_id") == sla_id:
                    entries.append((
                        record.time, 0, record.lsn,
                        f"journal  lsn={record.lsn} {record.type}: "
                        f"{_fmt_mapping(record.payload)}"))
        for index, record in enumerate(self.decisions.for_sla(sla_id)):
            summary = record.constraint or (
                _fmt_mapping(record.chosen)
                if record.chosen is not None else record.reason)
            stamp = (f" [{record.trace_id}/{record.span_id}]"
                     if record.trace_id else "")
            entries.append((
                record.time, 1, index,
                f"decision {record.action} {record.outcome}"
                f"{': ' + summary if summary else ''}{stamp}"))
        if self.tracer is not None:
            for index, span in enumerate(self.tracer.spans):
                if span.attributes.get("sla_id") != sla_id:
                    continue
                entries.append((
                    span.start, 2, index,
                    f"span     {span.trace_id}/{span.span_id} "
                    f"{span.name} ({span.component}) "
                    f"dur={span.duration:g} status={span.status}"))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        lines = [f"# timeline: sla-{sla_id} — {len(entries)} entries"]
        for time, _, _, text in entries:
            lines.append(f"t={time:<10g} {text}")
        if not entries:
            lines.append("(no entries)")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # slo
    # ------------------------------------------------------------------

    def slo_report(self, time: Optional[float] = None) -> str:
        """Per-class SLO state plus the alert history."""
        if self.slo is None:
            return "# slo\n(no SLO engine installed)\n"
        snapshot = self.slo.snapshot(time)
        lines = ["# slo"]
        for service_class in sorted(snapshot):
            entry = snapshot[service_class]
            if service_class == "_occupancy":
                lines.append(f"occupancy: {_fmt_mapping(entry)}")
                continue
            lines.append(f"class {service_class}:")
            for key in ("sessions", "active_time", "bad_time",
                        "availability", "objective", "budget"):
                if key in entry:
                    lines.append(f"   {key}: {_fmt_value(entry[key])}")
            if "burn_rate" in entry:
                burn = entry["burn_rate"]
                lines.append("   burn_rate: " + " ".join(
                    f"{window}={burn[window]:g}"
                    for window in sorted(
                        burn, key=lambda label: float(label[:-1]))))
        alerts = self.slo.alerts
        lines.append(f"alerts: {len(alerts)}")
        for alert in alerts:
            lines.append(
                f"   t={alert.time:g} {alert.service_class} "
                f"window={alert.window:g}s burn={alert.burn_rate:g} "
                f"threshold={alert.threshold:g}")
        return "\n".join(lines) + "\n"
