"""Observability: decision provenance, SLO budgets, flight recorder.

PR-4 gave the control plane spans and metrics (*what happened*), PR-5
a write-ahead journal (*what durably changed*).  This package adds the
third surface — *why*:

* :mod:`repro.obs.decisions` — every admit/reject/degrade/rebalance
  path emits a :class:`DecisionRecord` carrying the candidate levels,
  per-pool headroom, the failing constraint or the accepted point,
  stamped with the active span id and the newest durable journal LSN;
* :mod:`repro.obs.slo` — declarative per-class availability
  objectives with error budgets, multi-window burn rates, and
  deterministic alerts, evaluated on the sim clock;
* :mod:`repro.obs.flight` — the query layer joining decisions, spans
  and journal into ``repro obs why|timeline|slo`` reports.

Like telemetry, everything is zero-cost when disabled: components
default their ``decisions``/``slo`` attributes to ``None`` and guard
each hook with a single ``is not None`` check (QLNT116 enforces that
no reject/degrade path skips the emit).
"""

from __future__ import annotations

from .decisions import DecisionLog, DecisionRecord, point_payload
from .flight import FlightRecorder
from .slo import DEFAULT_SLOS, AlertRecord, SloEngine, SloSpec

__all__ = [
    "AlertRecord",
    "DEFAULT_SLOS",
    "DecisionLog",
    "DecisionRecord",
    "FlightRecorder",
    "SloEngine",
    "SloSpec",
    "point_payload",
]
