"""Declarative per-class SLOs with error budgets and burn rates.

The paper's availability objective ("the availability of the service
per month should not be lower than 96%", §3) is what the verifier's
conformance tests ultimately protect.  This module makes it explicit:
an :class:`SloSpec` names an availability target per service class,
the complement (``1 - availability``) is the **violation budget**, and
the :class:`SloEngine` evaluates, on the sim clock, what fraction of
that budget each class is burning and how fast.

Inputs are the existing signals — verifier violation/restoration
transitions and session start/end from the broker — accumulated as
per-SLA intervals.  ``burn_rate(window)`` is the classic multi-window
formulation: the fraction of active time spent in violation inside a
trailing window, divided by the budget, so 1.0 means "on track to
exactly exhaust the budget" and the default alert threshold of 2.0
fires when a class burns twice as fast as it can afford.  Alerts are
deterministic records, emitted only on the *transition* into burn so a
fixed seed always produces the same alert stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Tuple)

from ..telemetry.events import EventStream

__all__ = [
    "AlertRecord",
    "DEFAULT_SLOS",
    "SloEngine",
    "SloSpec",
]


@dataclass(frozen=True)
class SloSpec:
    """One service class's objective.

    Attributes:
        service_class: The class label (e.g. ``"Guaranteed"``), as in
            :attr:`repro.qos.parameters.ServiceClass.value`.
        availability: Target fraction of active session time that must
            be violation-free (``0 < availability < 1``).
        windows: Trailing burn-rate windows, in sim seconds,
            shortest first.
        burn_threshold: Burn rate at or above which an alert fires.
    """

    service_class: str
    availability: float
    windows: "Tuple[float, ...]" = (60.0, 300.0)
    burn_threshold: float = 2.0

    @property
    def budget(self) -> float:
        """The violation budget: allowed bad-time fraction."""
        return 1.0 - self.availability


#: Default objectives for the two monitored classes.  Best-effort has
#: no SLA and therefore no objective.
DEFAULT_SLOS: "Tuple[SloSpec, ...]" = (
    SloSpec(service_class="Guaranteed", availability=0.999),
    SloSpec(service_class="Controlled-load", availability=0.95),
)


@dataclass(frozen=True)
class AlertRecord:
    """A deterministic burn-rate alert (transition into burn)."""

    time: float
    service_class: str
    window: float
    burn_rate: float
    threshold: float
    budget: float


class _SlaTrack:
    """Per-SLA active/violating interval bookkeeping."""

    __slots__ = ("service_class", "started", "ended", "active",
                 "violation_since", "bad")

    def __init__(self, service_class: str, started: float) -> None:
        self.service_class = service_class
        self.started = started
        self.ended: Optional[float] = None
        self.active = True
        self.violation_since: Optional[float] = None
        self.bad: "List[Tuple[float, float]]" = []


def _overlap(start: float, end: float, lo: float, hi: float) -> float:
    """Length of ``[start, end] ∩ [lo, hi]`` (0 when disjoint)."""
    return max(0.0, min(end, hi) - max(start, lo))


class SloEngine:
    """Evaluates per-class SLO health from session and violation feeds.

    Args:
        now: Clock callable (``lambda: sim.now``).
        specs: Objectives to enforce; :data:`DEFAULT_SLOS` when
            omitted.  Classes without a spec are tracked but never
            alert.
        stream: Optional shared event stream; alerts are emitted there
            under the ``"slo"`` category.
        occupancy: Optional callable returning a capacity-occupancy
            summary (e.g. the ``repro_capacity_utilization``
            time-weighted mean) folded into snapshots for context.

    Feed hooks (:meth:`session_started`, :meth:`session_ended`,
    :meth:`on_violation`, :meth:`on_restoration`) are cheap interval
    bookkeeping; the trailing-window clipping happens only inside
    :meth:`snapshot` / :meth:`evaluate`.
    """

    def __init__(self, now: "Callable[[], float]", *,
                 specs: "Optional[Tuple[SloSpec, ...]]" = None,
                 stream: Optional[EventStream] = None,
                 occupancy: "Optional[Callable[[], Mapping[str, float]]]"
                 = None) -> None:
        self._now = now
        self._specs = {spec.service_class: spec
                       for spec in (DEFAULT_SLOS if specs is None
                                    else specs)}
        self._stream = stream
        self._occupancy = occupancy
        self._tracks: "Dict[int, _SlaTrack]" = {}
        self._alerts: "List[AlertRecord]" = []
        self._burning: "Dict[Tuple[str, float], bool]" = {}

    @property
    def specs(self) -> "Dict[str, SloSpec]":
        """The installed objectives keyed by service class (a copy)."""
        return dict(self._specs)

    @property
    def alerts(self) -> "List[AlertRecord]":
        """All alerts fired so far, in emit order (a copy)."""
        return list(self._alerts)

    # ------------------------------------------------------------------
    # Feed hooks
    # ------------------------------------------------------------------

    def session_started(self, sla_id: int, service_class: str,
                        time: float) -> None:
        """An SLA's session went active."""
        self._tracks[sla_id] = _SlaTrack(service_class, time)

    def session_ended(self, sla_id: int, time: float) -> None:
        """An SLA's session closed (violations close with it)."""
        track = self._tracks.get(sla_id)
        if track is None or not track.active:
            return
        if track.violation_since is not None:
            track.bad.append((track.violation_since, time))
            track.violation_since = None
        track.ended = time
        track.active = False

    def on_violation(self, sla_id: int, time: float) -> None:
        """The verifier saw this SLA transition into violation."""
        track = self._tracks.get(sla_id)
        if track is None or not track.active:
            return
        if track.violation_since is None:
            track.violation_since = time

    def on_restoration(self, sla_id: int, time: float) -> None:
        """The verifier saw this SLA restored to conformance."""
        track = self._tracks.get(sla_id)
        if track is None:
            return
        if track.violation_since is not None:
            track.bad.append((track.violation_since, time))
            track.violation_since = None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _class_intervals(self) -> "Dict[str, Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]]":
        """Per class: (active intervals, bad intervals) up to now."""
        now = self._now()
        per_class: "Dict[str, Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]]" = {}
        for sla_id in sorted(self._tracks):
            track = self._tracks[sla_id]
            active, bad = per_class.setdefault(track.service_class,
                                               ([], []))
            end = now if track.active else (track.ended
                                            if track.ended is not None
                                            else now)
            active.append((track.started, end))
            bad.extend(track.bad)
            if track.violation_since is not None and track.active:
                bad.append((track.violation_since, now))
        return per_class

    def snapshot(self, time: Optional[float] = None
                 ) -> "Dict[str, Dict[str, Any]]":
        """Per-class SLO state at ``time`` (defaults to now).

        Each entry reports total active time, bad (violating) time,
        achieved availability, the budget, and the burn rate per
        configured window; plus the occupancy context when an
        occupancy callable was wired.
        """
        now = self._now() if time is None else time
        report: "Dict[str, Dict[str, Any]]" = {}
        for service_class, (active, bad) in sorted(
                self._class_intervals().items()):
            spec = self._specs.get(service_class)
            active_total = sum(hi - lo for lo, hi in active)
            bad_total = sum(hi - lo for lo, hi in bad)
            availability = (1.0 if active_total <= 0.0
                            else 1.0 - bad_total / active_total)
            entry: "Dict[str, Any]" = {
                "sessions": len(active),
                "active_time": round(active_total, 9),
                "bad_time": round(bad_total, 9),
                "availability": round(availability, 9),
            }
            if spec is not None:
                entry["objective"] = spec.availability
                entry["budget"] = round(spec.budget, 9)
                burn: "Dict[str, float]" = {}
                for window in spec.windows:
                    lo = now - window
                    active_w = sum(_overlap(start, end, lo, now)
                                   for start, end in active)
                    bad_w = sum(_overlap(start, end, lo, now)
                                for start, end in bad)
                    if active_w <= 0.0 or spec.budget <= 0.0:
                        rate = 0.0
                    else:
                        rate = (bad_w / active_w) / spec.budget
                    burn[f"{window:g}s"] = round(rate, 9)
                entry["burn_rate"] = burn
            report[service_class] = entry
        if self._occupancy is not None:
            occupancy = dict(self._occupancy())
            if occupancy:
                report["_occupancy"] = {key: round(float(value), 9)
                                        for key, value
                                        in sorted(occupancy.items())}
        return report

    def evaluate(self, time: Optional[float] = None
                 ) -> "List[AlertRecord]":
        """Compute burn rates and fire alerts on threshold transitions.

        Returns the alerts fired by *this* evaluation (often empty);
        an alert fires only when a ``(class, window)`` pair crosses
        from below to at-or-above the spec's threshold, so repeated
        evaluations inside a sustained burn produce exactly one alert.
        """
        now = self._now() if time is None else time
        snapshot = self.snapshot(now)
        fired: "List[AlertRecord]" = []
        for service_class in sorted(snapshot):
            entry = snapshot[service_class]
            spec = self._specs.get(service_class)
            if spec is None or "burn_rate" not in entry:
                continue
            for window in spec.windows:
                rate = entry["burn_rate"][f"{window:g}s"]
                key = (service_class, window)
                burning = rate >= spec.burn_threshold
                if burning and not self._burning.get(key, False):
                    alert = AlertRecord(time=now,
                                        service_class=service_class,
                                        window=window, burn_rate=rate,
                                        threshold=spec.burn_threshold,
                                        budget=round(spec.budget, 9))
                    self._alerts.append(alert)
                    fired.append(alert)
                    if self._stream is not None:
                        self._stream.emit(
                            now, "slo",
                            f"burn-rate alert: {service_class} "
                            f"{window:g}s window",
                            service_class=service_class, window=window,
                            burn_rate=rate,
                            threshold=spec.burn_threshold,
                            budget=round(spec.budget, 9))
                self._burning[key] = burning
        return fired
