"""Project-specific rules for the ``repro`` static-analysis engine.

Importing this package registers every rule with the global registry
in :mod:`repro.analysis.core`.  Rule identifiers:

========  ==============================================================
QLNT101   Wall-clock or stdlib randomness outside ``repro.sim.random``
QLNT102   Float ``==``/``!=`` on capacity/time expressions
QLNT103   Raw QoS quantity string literal outside ``repro.units``
QLNT104   Broad/bare ``except`` without re-raise or logging
QLNT105   Raised exception not rooted in ``repro.errors``
QLNT106   ``__all__`` drift (missing declaration or phantom export)
QLNT107   State-field assignment outside the declared transition table
QLNT108   Mutable default argument
QLNT109   Iteration over an unordered set / shared registry
QLNT110   Unused import
QLNT111   Debug ``print`` in library code
QLNT112   Raw ``bus.request()`` outside the transport layer
QLNT113   Private mutable counter shadowing the metrics registry
QLNT114   Journaled state mutated outside the journal API
QLNT115   Object allocation in the DES/slot-table hot loop
QLNT116   Reject/degrade path without a decision record
QLNT117   Raw bus send inside ``repro.federation``
========  ==============================================================
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    determinism,
    exceptions,
    exports,
    federation,
    floats,
    hotpaths,
    hygiene,
    journaling,
    messaging,
    provenance,
    quantities,
    states,
    telemetry,
)

__all__ = [
    "determinism",
    "exceptions",
    "exports",
    "federation",
    "floats",
    "hotpaths",
    "hygiene",
    "journaling",
    "messaging",
    "provenance",
    "quantities",
    "states",
    "telemetry",
]
