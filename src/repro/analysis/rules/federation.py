"""QLNT117 — raw bus sends inside the federation package.

Cross-domain traffic is the one place a raw ``bus.request`` is
guaranteed to meet injected faults: the peer may be crashed, the link
partitioned, the circuit open. Every send in ``repro.federation`` must
therefore go through a :class:`~repro.xmlmsg.resilient.ResilientCaller`
(``caller.call(...)``), which owns the retry/timeout/circuit-breaker
story and turns transport failures into the reroute path instead of an
unhandled :class:`~repro.errors.MessageDropped`. QLNT112 covers
``core``/``sla``; this rule extends the same contract to the
federation control plane, where it is load-bearing for the crash-point
sweep.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, Severity, register

#: Receiver names that denote the message bus.
_BUS_NAMES = ("bus", "_bus")

#: Bus methods that put an envelope on the wire.
_SEND_METHODS = ("request", "send_async")


def _receiver_name(node: ast.expr) -> "str | None":
    """The simple name a call receiver goes by (``bus``,
    ``self._bus``, ``plane.bus`` ...), or ``None`` otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class RawFederationSendRule(Rule):
    rule_id = "QLNT117"
    title = "raw bus send inside repro.federation"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def applies_to(self, relpath: str) -> bool:
        normalized = relpath.replace("\\", "/")
        return "repro/federation/" in normalized

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _SEND_METHODS):
            return
        receiver = _receiver_name(func.value)
        if receiver in _BUS_NAMES:
            ctx.report(self, node,
                       f"cross-domain bus.{func.attr}() bypasses the "
                       "retry/timeout/circuit-breaker path; route "
                       "federation sends through a ResilientCaller "
                       "(caller.call(...))")
