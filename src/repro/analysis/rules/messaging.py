"""QLNT112 — raw synchronous bus calls in client-side code.

``MessageBus.request`` is the *unprotected* transport primitive: no
timeout, no retry, no backoff, no circuit breaker. Under fault
injection a raw call surfaces :class:`~repro.errors.MessageDropped`
straight into domain logic. Client-side code in ``core``/``sla`` must
go through a :class:`~repro.xmlmsg.resilient.ResilientCaller`
(``caller.call(...)``) instead; only the transport layer itself
(``repro.xmlmsg``) and test/benchmark code may touch the primitive.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, Severity, register

#: Receiver names that denote the message bus.
_BUS_NAMES = ("bus", "_bus")


def _receiver_name(node: ast.expr) -> "str | None":
    """The simple name a call receiver goes by (``bus``, ``self._bus``,
    ``testbed.bus`` ...), or ``None`` for anything more exotic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class RawBusRequestRule(Rule):
    rule_id = "QLNT112"
    title = "raw bus.request() outside the transport layer"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def applies_to(self, relpath: str) -> bool:
        # Only client-side control-plane code is constrained; the
        # transport layer is where the primitive legitimately lives.
        normalized = relpath.replace("\\", "/")
        return "repro/core/" in normalized or "repro/sla/" in normalized

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "request"):
            return
        receiver = _receiver_name(func.value)
        if receiver in _BUS_NAMES:
            ctx.report(self, node,
                       "direct bus.request() bypasses retry/timeout/"
                       "circuit-breaker protection; route the call "
                       "through a ResilientCaller (caller.call(...))")
