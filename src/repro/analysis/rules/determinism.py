"""QLNT101 — discrete-event determinism.

The simulation must be replayable from a single integer seed: the
engine's clock is the only source of time and
:class:`repro.sim.random.RandomSource` the only source of randomness.
Importing ``time``, ``datetime`` or stdlib ``random`` anywhere else in
the library (or calling ``time.time()``-style wall-clock reads through
an alias) silently breaks replay, so the rule bans the imports
outright rather than chasing call sites.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, Severity, register

#: Modules whose import breaks seeded replay.
_BANNED_MODULES = {"time", "datetime", "random"}

#: Wall-clock attribute reads, in case the module arrives via an alias
#: the import check cannot see (e.g. ``from x import time``).
_CLOCK_ATTRS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "localtime", "gmtime"},
    "datetime": {"now", "utcnow", "today"},
}


@register
class DeterminismRule(Rule):
    rule_id = "QLNT101"
    title = "wall-clock or stdlib randomness outside repro.sim.random"
    severity = Severity.ERROR
    node_types = (ast.Import, ast.ImportFrom, ast.Attribute)

    def applies_to(self, relpath: str) -> bool:
        # The seeded wrapper itself, and benchmark timers, are the two
        # sanctioned consumers of the banned modules.
        normalized = relpath.replace("\\", "/")
        if normalized.endswith("sim/random.py"):
            return False
        return "benchmarks/" not in normalized and \
            not normalized.startswith("benchmarks")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_MODULES:
                    ctx.report(self, node,
                               f"import of nondeterministic module "
                               f"{alias.name!r}; route randomness through "
                               f"repro.sim.random and time through the "
                               f"simulation clock")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root in _BANNED_MODULES:
                ctx.report(self, node,
                           f"import from nondeterministic module "
                           f"{node.module!r}; route randomness through "
                           f"repro.sim.random and time through the "
                           f"simulation clock")
        elif isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name):
                banned = _CLOCK_ATTRS.get(value.id)
                if banned and node.attr in banned:
                    ctx.report(self, node,
                               f"wall-clock read {value.id}.{node.attr}; "
                               f"use the simulation clock")
