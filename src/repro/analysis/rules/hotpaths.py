"""QLNT115 — allocation in the DES/slot-table hot loops.

The array-backed cores exist because the event queue pops millions of
tuples per experiment and the slot table answers a capacity probe per
admission: both were rebuilt around flat parallel arrays precisely so
the inner loops touch no Python object allocation.  One stray
``lambda`` capture or per-event wrapper object in those loops silently
re-introduces the allocation cost the rewrite removed — and nothing
functional breaks, so only a benchmark (or this rule) would notice.

The table below names the hot functions.  Inside them three things
flag: ``lambda`` expressions (closure allocation per iteration),
nested ``def`` (same, plus a cell per captured variable), and
capitalized constructor calls.  Declared allowed idioms:

* ``ResourceVector`` — the slot-table probes *return* one aggregate
  vector per call; building the single result is the contract, it is
  the per-boundary/per-event objects that are banned;
* constructor calls inside ``raise`` — error paths are cold.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional

from ..core import ModuleContext, Rule, Severity, register

#: module suffix -> the functions forming its allocation-free hot path.
HOT_PATHS: "Dict[str, FrozenSet[str]]" = {
    # The event-queue inner loop: one heap-tuple pop per event.
    "repro/sim/events.py": frozenset({"pop", "peek_time"}),
    # The dispatch loop driving it.
    "repro/sim/engine.py": frozenset({"run", "step"}),
    # The admission-rate probe path over the parallel usage columns.
    "repro/gara/slot_table.py": frozenset({
        "usage_at", "available_at", "peak_usage", "available",
        "can_reserve", "utilization_at", "_apply_delta"}),
}

#: Constructors a hot function may call (see module docstring).
ALLOWED_CONSTRUCTORS: "FrozenSet[str]" = frozenset({"ResourceVector"})


def _hot_functions(relpath: str) -> "Optional[FrozenSet[str]]":
    normalized = relpath.replace("\\", "/")
    for suffix, functions in HOT_PATHS.items():
        if normalized.endswith(suffix):
            return functions
    return None


@register
class HotPathAllocationRule(Rule):
    rule_id = "QLNT115"
    title = "object allocation in the DES/slot-table hot loop"
    severity = Severity.ERROR
    node_types = (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef,
                  ast.Call)

    def applies_to(self, relpath: str) -> bool:
        return _hot_functions(relpath) is not None

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        hot = _hot_functions(ctx.relpath)
        # The engine dispatches the def/lambda node *before* pushing
        # its own name, so current_function() is the enclosing scope.
        function = ctx.current_function()
        if hot is None or function not in hot:
            return
        if isinstance(node, ast.Lambda):
            ctx.report(self, node,
                       f"lambda inside hot function {function}() "
                       f"allocates a closure per iteration; hoist the "
                       f"callable out of the loop")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx.report(self, node,
                       f"nested function {node.name}() inside hot "
                       f"function {function}() allocates a closure "
                       f"per call; define it at module or class scope")
        else:
            name = node.func
            if not isinstance(name, ast.Name):
                return
            if not name.id[:1].isupper() or name.id in ALLOWED_CONSTRUCTORS:
                return
            if isinstance(ctx.parent(node), ast.Raise):
                return  # error paths are cold
            ctx.report(self, node,
                       f"{name.id}(...) constructed inside hot function "
                       f"{function}(); the flat-array core exists so "
                       f"this loop allocates no per-event objects — "
                       f"keep scalars/tuples or extend the declared "
                       f"allowed idioms")
