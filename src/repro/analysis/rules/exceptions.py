"""QLNT104/QLNT105 — the error-handling contract.

Every failure the library signals must be catchable as
:class:`repro.errors.GQoSMError` (QLNT105), and no layer may silently
swallow arbitrary exceptions (QLNT104): a broad handler must either
re-raise or record what it ate, otherwise SLA violations and
reservation failures disappear from the replay trace.
"""

from __future__ import annotations

import ast
import builtins

from ..core import ModuleContext, Rule, Severity, register


def _domain_error_names() -> "set[str]":
    """Names of the repro.errors hierarchy, read from the live module.

    Introspecting (rather than hard-coding) keeps the rule in lockstep
    with the hierarchy: adding an error class never requires touching
    the analyzer.
    """
    from ... import errors
    return {name for name, value in vars(errors).items()
            if isinstance(value, type) and issubclass(value, errors.GQoSMError)}


def _builtin_exception_names() -> "set[str]":
    return {name for name, value in vars(builtins).items()
            if isinstance(value, type) and issubclass(value, BaseException)}


#: Builtins whose raising is part of normal Python protocol, not a
#: library failure signal.
_PROTOCOL_EXCEPTIONS = {
    "NotImplementedError", "AssertionError", "StopIteration",
    "StopAsyncIteration", "KeyboardInterrupt", "SystemExit",
    "GeneratorExit",
}

#: Call names in a handler body that count as recording the exception.
_LOGGING_HINTS = ("log", "record", "trace", "warn", "note")


def _is_broad(handler: ast.ExceptHandler) -> "str | None":
    """``"bare"``/``"Exception"``/``"BaseException"`` or ``None``."""
    if handler.type is None:
        return "bare"
    candidates = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                  else [handler.type])
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and \
                candidate.id in ("Exception", "BaseException"):
            return candidate.id
    return None


def _body_handles(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or records the exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name and any(hint in name.lower()
                            for hint in _LOGGING_HINTS):
                return True
    return False


@register
class BroadExceptRule(Rule):
    rule_id = "QLNT104"
    title = "broad except without re-raise or logging"
    severity = Severity.ERROR
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.ExceptHandler)
        kind = _is_broad(node)
        if kind is None:
            return
        if kind == "bare":
            ctx.report(self, node,
                       "bare except swallows SystemExit/KeyboardInterrupt; "
                       "catch a repro.errors type (or Exception with a "
                       "re-raise)")
            return
        if not _body_handles(node):
            ctx.report(self, node,
                       f"except {kind} neither re-raises nor records the "
                       f"error; narrow it to the repro.errors type the "
                       f"callee actually raises")


@register
class ForeignExceptionRule(Rule):
    rule_id = "QLNT105"
    title = "raised exception not rooted in repro.errors"
    severity = Severity.ERROR
    node_types = (ast.Raise,)

    def __init__(self) -> None:
        self._allowed = _domain_error_names() | _PROTOCOL_EXCEPTIONS
        self._flagged = _builtin_exception_names() - self._allowed

    def applies_to(self, relpath: str) -> bool:
        # The hierarchy module itself defines, not raises, the types.
        return not relpath.replace("\\", "/").endswith("repro/errors.py")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Raise)
        exc = node.exc
        if exc is None:  # bare re-raise
            return
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        # Unresolvable names (locals holding an exception object,
        # aliases) are given the benefit of the doubt; only names that
        # are verifiably stdlib exception types are flagged.
        if name in self._flagged:
            ctx.report(self, node,
                       f"raise of stdlib {name}; raise a subclass of "
                       f"repro.errors.GQoSMError so embedders can catch "
                       f"one base type")
