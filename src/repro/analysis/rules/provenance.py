"""QLNT116 — reject/degrade path without a decision record.

The flight recorder (:mod:`repro.obs`) can only explain what the
control plane actually recorded.  Every broker/optimizer/scenario path
that rejects a request or degrades a session announces itself by
bumping a stats counter (``rejected_discovery``, ``squeezes``, ...) or
by constructing the solver's :class:`OptimizationResult`; if such a
function never calls the provenance funnel (``self._decide(...)``,
``decisions.decide(...)``, or the solver's ``on_decision`` hook), that
verdict is silent — ``repro obs why`` would have a hole exactly where
an operator needs the explanation.

The rule is structural, not path-sensitive: a *function* containing a
reject/degrade marker must also contain an emit call.  That matches
the funnel discipline (one guarded ``_decide`` next to each counter
bump) without needing data-flow analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Set, Tuple

from ..core import ModuleContext, Rule, Severity, register

#: Stats-counter attribute names whose increment marks a reject or
#: degrade verdict (``stats.rejected_* += 1`` and the Scenario 1/3
#: adaptation counters).
_VERDICT_COUNTERS: "FrozenSet[str]" = frozenset({
    "squeezes",
    "terminations_for_compensation",
    "self_degradations",
    "terminal_degradations",
})

#: Call names that count as emitting a decision record.
_EMITTERS: "FrozenSet[str]" = frozenset({
    "_decide", "decide", "on_decision",
})


def _call_name(func: ast.AST) -> str:
    """The trailing identifier of a call target (``a.b.c()`` -> c)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


@register
class DecisionProvenanceRule(Rule):
    rule_id = "QLNT116"
    title = "reject/degrade path without a decision record"
    severity = Severity.ERROR
    node_types = (ast.AugAssign, ast.Call)

    def __init__(self) -> None:
        #: function-stack key -> (line, marker description)
        self._markers: "Dict[Tuple[str, ...], Tuple[int, str]]" = {}
        self._satisfied: "Set[Tuple[str, ...]]" = set()

    def applies_to(self, relpath: str) -> bool:
        normalized = relpath.replace("\\", "/")
        return normalized.endswith(("repro/core/broker.py",
                                    "repro/core/scenarios.py",
                                    "repro/core/optimizer.py"))

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        key = tuple(ctx.function_stack)
        if not key:
            return
        if isinstance(node, ast.AugAssign):
            target = node.target
            if not isinstance(target, ast.Attribute):
                return
            name = target.attr
            if (name.startswith("rejected_")
                    or name in _VERDICT_COUNTERS):
                self._markers.setdefault(
                    key, (node.lineno, f".{name} += ..."))
            return
        name = _call_name(node.func)
        if name in _EMITTERS:
            self._satisfied.add(key)
        elif (name == "OptimizationResult"
              and ctx.relpath.replace("\\", "/").endswith(
                  "repro/core/optimizer.py")):
            # Constructing a solver verdict is itself a decision; the
            # solver must offer the on_decision hook a chance to see
            # it before returning.
            self._markers.setdefault(
                key, (node.lineno, "OptimizationResult(...)"))

    def finish(self, ctx: ModuleContext) -> None:
        for key in sorted(self._markers):
            if any(key[:depth] in self._satisfied or key in self._satisfied
                   for depth in range(1, len(key) + 1)):
                continue
            line, marker = self._markers[key]
            ctx.report(self, line,
                       f"{'.'.join(key)}() marks a reject/degrade "
                       f"verdict ({marker}) but never emits a "
                       f"DecisionRecord — call self._decide(...) / "
                       f"decisions.decide(...) (or invoke on_decision "
                       f"for solver results) so 'repro obs why' can "
                       f"explain this outcome")
        # Instances may be reused across modules (rules_by_id): reset.
        self._markers.clear()
        self._satisfied.clear()
