"""QLNT108–QLNT111 — source hygiene.

These four rules absorb (and extend) the checks that used to live in
``tests/test_hygiene.py``: mutable default arguments, iteration order
that depends on hashing, unused imports, and stray debug prints.
"""

from __future__ import annotations

import ast
import re

from ..core import ModuleContext, Rule, Severity, register

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "Counter", "OrderedDict"}


@register
class MutableDefaultRule(Rule):
    rule_id = "QLNT108"
    title = "mutable default argument"
    severity = Severity.ERROR
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
        for default in defaults:
            offending = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS)
            if offending:
                name = getattr(node, "name", "<lambda>")
                ctx.report(self, default,
                           f"mutable default argument in {name}(); "
                           f"default to None and build inside the body")


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _is_registry_view(node: ast.AST) -> bool:
    """``<x>.keys()/values()/items()`` where ``x`` names a registry."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values", "items")):
        return False
    receiver = node.func.value
    name = None
    if isinstance(receiver, ast.Name):
        name = receiver.id
    elif isinstance(receiver, ast.Attribute):
        name = receiver.attr
    return name is not None and "registr" in name.lower()


@register
class UnorderedIterationRule(Rule):
    rule_id = "QLNT109"
    title = "iteration over an unordered collection"
    severity = Severity.ERROR
    node_types = (ast.For, ast.ListComp, ast.SetComp, ast.DictComp,
                  ast.GeneratorExp)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.For):
            iterables = [node.iter]
        else:
            iterables = [generator.iter for generator in node.generators]
        for iterable in iterables:
            if _is_set_expression(iterable):
                ctx.report(self, iterable,
                           "iterating a set: order depends on hashing "
                           "and breaks seeded replay; wrap in sorted()")
            elif _is_registry_view(iterable):
                ctx.report(self, iterable,
                           "iterating a shared registry view in raw "
                           "order; iterate sorted(...) so replay does "
                           "not depend on registration history")


@register
class UnusedImportRule(Rule):
    rule_id = "QLNT110"
    title = "unused import"
    severity = Severity.ERROR
    node_types = ()

    def finish(self, ctx: ModuleContext) -> None:
        # Textual occurrence counting (rather than scope resolution)
        # deliberately credits mentions in docstrings, quoted
        # annotations and __all__ — the module "uses" those names.
        text = ctx.text
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [(alias.asname or alias.name).split(".")[0]
                         for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [alias.asname or alias.name
                         for alias in node.names]
            else:
                continue
            statement = "\n".join(
                ctx.lines[node.lineno - 1:(node.end_lineno or node.lineno)])
            for name in names:
                if name in ("annotations", "*"):
                    continue
                pattern = rf"\b{re.escape(name)}\b"
                total = len(re.findall(pattern, text))
                in_statement = len(re.findall(pattern, statement))
                if total <= in_statement:
                    ctx.report(self, node,
                               f"import {name!r} is never used")


@register
class DebugPrintRule(Rule):
    rule_id = "QLNT111"
    title = "debug print in library code"
    severity = Severity.ERROR
    node_types = (ast.Call,)

    def applies_to(self, relpath: str) -> bool:
        # CLI front-ends and experiment renderers print by design.
        normalized = relpath.replace("\\", "/")
        parts = normalized.split("/")
        if parts[-1] in ("cli.py", "__main__.py"):
            return False
        return "experiments" not in parts

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Call)
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(self, node,
                       "print() in library code; report through traces, "
                       "renderers or the CLI")
