"""QLNT102 — tolerance discipline on capacity/time comparison.

Capacity and time quantities in the reproduction are accumulated
floats (summed reservations, rebalanced shares, event timestamps), so
exact ``==``/``!=`` on them is replay-hostile: two runs that differ
only in summation order can disagree.  The comparison layer for these
quantities is :func:`repro.units.isclose` / :func:`repro.units.iszero`
(and the slot table's epsilon); this rule points offenders at them.

The heuristic flags an equality comparison when either operand *names*
a capacity/time quantity (``start``, ``demand``, ``*_mbps`` ...) or is
a float literal.  The integrality idiom ``x == int(x)`` (and
``round``) is exempt — it is exact by construction.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, Severity, register

#: Identifiers that denote capacity/time quantities in this codebase.
_QUANTITY_NAMES = {
    "start", "end", "now", "low", "high", "demand", "capacity",
    "served", "entitled", "duration", "deadline", "shortfall", "idle",
    "elapsed", "remaining", "usage", "bandwidth", "delay",
}

#: Suffix conventions for the same (``memory_mb``, ``created_at`` ...).
_QUANTITY_SUFFIXES = (
    "_mb", "_mbps", "_ms", "_at", "_time", "_rate", "_capacity",
    "_demand", "_served", "_fraction",
)

#: Calls whose result is exact by construction, making ``==`` safe.
_EXACT_CASTS = {"int", "round", "len", "id", "ord", "hash"}


def _identifier(node: ast.AST) -> "str | None":
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_quantity(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    name = _identifier(node)
    if name is None:
        return False
    lowered = name.lower()
    if lowered in _QUANTITY_NAMES:
        return True
    return any(lowered.endswith(suffix) for suffix in _QUANTITY_SUFFIXES)


def _is_exact_cast(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _EXACT_CASTS)


@register
class FloatComparisonRule(Rule):
    rule_id = "QLNT102"
    title = "float ==/!= on capacity/time expression"
    severity = Severity.ERROR
    node_types = (ast.Compare,)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Compare)
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_exact_cast(left) or _is_exact_cast(right):
                continue
            offender = next((operand for operand in (left, right)
                             if _is_quantity(operand)), None)
            if offender is None:
                continue
            label = _identifier(offender)
            what = (f"{label!r}" if label is not None
                    else "a float literal")
            ctx.report(self, node,
                       f"exact float comparison on {what}; use "
                       f"repro.units.isclose / iszero (tolerance "
                       f"discipline on capacity/time)")
            break
