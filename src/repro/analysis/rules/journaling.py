"""QLNT114 — journaled state mutated outside the journal API.

Crash recovery replays the write-ahead journal
(:mod:`repro.recovery.journal`) and trusts that every durable flag it
folds — a composite's ``confirmed``/``cancelled``, a booking's
``committed``, the partition's ``_failed`` — was flipped by the one
method that also appends the matching record.  A stray
``composite.confirmed = True`` in a helper is invisible to replay: the
live system and the recovered system silently disagree, which is
exactly the corruption the journal exists to rule out.

This table names those fields and the methods allowed to assign them.
Recovery code itself (``repro/recovery/``) is exempt — rebuilding the
flags from the journal is its job — as are the simulation kernel and
the baseline policies, which never journal.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet

from ..core import ModuleContext, Rule, Severity, register

#: Journaled fields and the transition methods that may assign them.
#: ``__init__`` appears where construction legitimately sets the flag.
JOURNALED_FIELDS: "Dict[str, FrozenSet[str]]" = {
    # CompositeReservation outcome flags; journaled as ``confirm`` /
    # ``cancel`` records by ReservationSystem.
    "confirmed": frozenset({"confirm", "__init__"}),
    "cancelled": frozenset({"cancel", "__init__"}),
    # GARA/NRM booking commitment; folded from ``confirm`` records.
    "committed": frozenset({"commit", "confirm", "__init__"}),
    # CapacityPartition failure debt; folded from
    # ``capacity_rebalanced`` records.
    "_failed": frozenset({"apply_failure", "apply_repair", "__init__"}),
}


@register
class JournaledStateRule(Rule):
    rule_id = "QLNT114"
    title = "journaled state mutated outside the journal API"
    severity = Severity.ERROR
    node_types = (ast.Assign, ast.AnnAssign, ast.AugAssign)

    def applies_to(self, relpath: str) -> bool:
        # Only the journaling control plane is constrained; recovery
        # replay (repro/recovery/) legitimately rebuilds these flags.
        normalized = relpath.replace("\\", "/")
        return ("repro/core/" in normalized
                or "repro/network/" in normalized
                or "repro/gara/" in normalized
                or "repro/sla/" in normalized)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            # Attribute targets only: a class-level ``confirmed: bool
            # = False`` dataclass default is a Name, not a mutation.
            if not isinstance(target, ast.Attribute):
                continue
            allowed = JOURNALED_FIELDS.get(target.attr)
            if allowed is None:
                continue
            method = ctx.current_function()
            if method in allowed:
                continue
            ctx.report(self, node,
                       f"journaled field .{target.attr} assigned in "
                       f"{method or '<module>'}(); only "
                       f"{sorted(allowed)} may flip it — replay folds "
                       f"this flag from journal records, so an "
                       f"unjournaled mutation diverges on recovery")
