"""QLNT113 — private mutable counters for cross-cutting statistics.

The telemetry hub owns one :class:`~repro.telemetry.MetricsRegistry`
per control plane; counters that describe cross-cutting behaviour
(cache hits, messages seen, totals) belong there, where they get
labels, exact time-weighting and a Prometheus rendering for free. A
bare ``self.stale_hits += 1`` on a component is a shadow counting
mechanism: it drifts from the registry, is invisible to the exporters,
and every new dashboard has to know about it separately. Components in
the instrumented layers must increment a registry counter (or expose a
read-only property over one) instead.

Local dataclass stat bundles (``self.stats.drops += 1``) stay legal —
the rule only fires on counter-named attributes directly on ``self``.
"""

from __future__ import annotations

import ast

from ..core import ModuleContext, Rule, Severity, register

#: Attribute-name suffixes that mark a cross-cutting counter.
_COUNTER_SUFFIXES = ("hits", "_total", "_seen")

#: Exact attribute names that are counters regardless of suffix.
_COUNTER_NAMES = ("tests_run",)


def _is_counter_name(attr: str) -> bool:
    name = attr.lstrip("_")
    return name in _COUNTER_NAMES or name.endswith(_COUNTER_SUFFIXES)


@register
class PrivateCounterRule(Rule):
    rule_id = "QLNT113"
    title = "private mutable counter shadows the metrics registry"
    severity = Severity.ERROR
    node_types = (ast.AugAssign,)

    def applies_to(self, relpath: str) -> bool:
        # The instrumented control-plane layers; experiments and the
        # telemetry package itself keep their local accumulators.
        normalized = relpath.replace("\\", "/")
        return any(part in normalized for part in (
            "repro/core/", "repro/monitoring/", "repro/network/",
            "repro/xmlmsg/", "repro/registry/"))

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.AugAssign)
        target = node.target
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return
        if _is_counter_name(target.attr):
            ctx.report(self, node,
                       f"'self.{target.attr} += ...' is a private "
                       f"counting mechanism; increment a MetricsRegistry "
                       f"counter (metrics.counter(...).inc()) and expose "
                       f"a read-only property over it instead")
