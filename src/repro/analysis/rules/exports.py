"""QLNT106 — ``__all__`` is the public-API contract.

Package ``__init__`` modules are the published surface of each
subsystem, so they must declare ``__all__`` explicitly; and wherever
``__all__`` exists, every listed name must actually be bound in the
module (a phantom export breaks ``from repro.x import *`` and, more
importantly, lies to readers about the API).
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..core import ModuleContext, Rule, Severity, register


def _top_level_bindings(tree: ast.Module) -> "Set[str]":
    """Names bound at module scope, descending into top-level
    ``if``/``try`` blocks (the TYPE_CHECKING / fallback-import idioms)."""
    bound: "Set[str]" = set()
    star_import = False

    def collect(statements) -> None:
        nonlocal star_import
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        bound.add((alias.asname
                                   or alias.name).split(".")[0])
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    bound.add(stmt.target.id)
            elif isinstance(stmt, ast.If):
                collect(stmt.body)
                collect(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                collect(stmt.body)
                collect(stmt.orelse)
                collect(stmt.finalbody)
                for handler in stmt.handlers:
                    collect(handler.body)
    collect(tree.body)
    if star_import:
        bound.add("*")
    return bound


def _find_all_declaration(tree: ast.Module) -> "ast.Assign | None":
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return stmt
    return None


def _is_public_init(relpath: str) -> bool:
    normalized = relpath.replace("\\", "/")
    if not normalized.endswith("__init__.py"):
        return False
    return not any(part.startswith("_") and part != "__init__.py"
                   for part in normalized.split("/"))


@register
class ExportsRule(Rule):
    rule_id = "QLNT106"
    title = "__all__ drift"
    severity = Severity.ERROR
    node_types = ()

    def finish(self, ctx: ModuleContext) -> None:
        declaration = _find_all_declaration(ctx.tree)
        if declaration is None:
            if _is_public_init(ctx.relpath):
                ctx.report(self, 1,
                           "public package module must declare __all__ "
                           "(the subsystem's published API)")
            return
        value = declaration.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            ctx.report(self, declaration,
                       "__all__ must be a literal list/tuple of names")
            return
        names: "List[str]" = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and \
                    isinstance(element.value, str):
                names.append(element.value)
            else:
                ctx.report(self, element,
                           "__all__ entries must be string literals")
        duplicates = {name for name in names if names.count(name) > 1}
        for name in sorted(duplicates):
            ctx.report(self, declaration,
                       f"duplicate __all__ entry {name!r}")
        bound = _top_level_bindings(ctx.tree)
        if "*" in bound:
            return  # star import: existence is unverifiable statically
        for name in names:
            if name not in bound:
                ctx.report(self, declaration,
                           f"__all__ exports {name!r} but the module "
                           f"never binds it")
