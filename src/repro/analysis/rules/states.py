"""QLNT107 — the SLA/reservation state machines are closed.

The replayability of Algorithm 1 and the Section 5.6 worked example
rests on every lifecycle object moving only along its declared edges:
a reservation that jumps straight to ``BOUND``, or a negotiation
flipped to ``ACCEPTED`` from a helper nobody audits, silently corrupts
the trace.  This table *is* the machine-checkable transition
declaration: an assignment to a ``state``/``phase`` field anywhere in
the library must name a registered enum member from inside one of its
declared transition methods.  New lifecycle classes register here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping

from ..core import ModuleContext, Rule, Severity, register


@dataclass(frozen=True)
class MachineSpec:
    """Declared transitions of one state enum.

    ``transitions`` maps a method name to the enum members that method
    may assign; ``"*"`` as a method name allows the members anywhere
    (used for none of the current machines, available for generated
    code).
    """

    field: str
    transitions: "Mapping[str, FrozenSet[str]]"

    def allows(self, method: "str | None", member: str) -> bool:
        allowed = self.transitions.get(method or "")
        if allowed is not None and member in allowed:
            return True
        wildcard = self.transitions.get("*")
        return wildcard is not None and member in wildcard


def _spec(field: str, **methods: "tuple"):
    return MachineSpec(field=field,
                       transitions={name: frozenset(members)
                                    for name, members in methods.items()})


#: The transition table, keyed by enum class name.  One entry per
#: lifecycle machine in the library; tests assert the table matches
#: the enums it names.
STATE_MACHINES: "Dict[str, MachineSpec]" = {
    # GARA reservation lifecycle (Section 3.1).
    "ReservationState": _spec(
        "state",
        commit=("COMMITTED",),
        bind=("BOUND",),
        unbind=("COMMITTED",),
        cancel=("CANCELLED",),
        expire=("EXPIRED",),
    ),
    # QoS session phases (Figure 3).
    "Phase": _spec(
        "phase",
        enter_active=("ACTIVE",),
        enter_clearing=("CLEARING",),
        close=("CLOSED",),
    ),
    # SLA negotiation protocol.
    "NegotiationState": _spec(
        "state",
        __init__=("REQUESTED",),
        propose=("FAILED", "OFFERED"),
        accept=("ACCEPTED",),
        reject=("REJECTED",),
        counter=("REQUESTED",),
    ),
    # Launched Grid-service processes.
    "JobState": _spec(
        "state",
        _complete=("COMPLETED",),
        kill=("KILLED",),
    ),
    # Machine nodes under failure injection.
    "NodeState": _spec(
        "state",
        fail_nodes=("DOWN",),
        repair_nodes=("UP",),
    ),
}

#: Attribute names treated as state fields wherever they are assigned.
STATE_FIELD_NAMES = frozenset(
    spec.field for spec in STATE_MACHINES.values())


@register
class StateTransitionRule(Rule):
    rule_id = "QLNT107"
    title = "state-field assignment outside the transition table"
    severity = Severity.ERROR
    node_types = (ast.Assign, ast.AnnAssign, ast.AugAssign)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            targets = [node.target]
            value = node.value
        if value is None:
            return
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    target.attr in STATE_FIELD_NAMES:
                self._check(node, target, value, ctx)

    def _check(self, node: ast.AST, target: ast.Attribute,
               value: ast.AST, ctx: ModuleContext) -> None:
        if not (isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)):
            ctx.report(self, node,
                       f"state field .{target.attr} assigned a computed "
                       f"value; assign a declared enum member so the "
                       f"transition is auditable")
            return
        enum_name = value.value.id
        member = value.attr
        spec = STATE_MACHINES.get(enum_name)
        if spec is None:
            ctx.report(self, node,
                       f"state machine {enum_name!r} is not registered "
                       f"in repro.analysis.rules.states.STATE_MACHINES; "
                       f"declare its transitions")
            return
        if spec.field != target.attr:
            ctx.report(self, node,
                       f"{enum_name} members belong in field "
                       f".{spec.field}, not .{target.attr}")
            return
        method = ctx.current_function()
        if not spec.allows(method, member):
            ctx.report(self, node,
                       f"undeclared transition: {method or '<module>'}() "
                       f"assigns {enum_name}.{member}; declare it in the "
                       f"STATE_MACHINES table or route through a "
                       f"declared transition method")
