"""QLNT103 — QoS quantities enter through ``repro.units``.

SLA documents carry quantities as strings (``"64MB"``, ``"10 Mbps"``,
``"LessThan 10%"``); the units module canonicalises them exactly once
at the codec boundary.  A quantity literal floating around anywhere
else is either dead weight or — worse — about to be compared against a
canonical number.  The rule flags quantity-shaped string literals that
are not immediately consumed by a ``repro.units`` parser.
"""

from __future__ import annotations

import ast
import re

from ..core import ModuleContext, Rule, Severity, register

_QUANTITY_RE = re.compile(
    r"^\s*[-+]?\d+(?:\.\d+)?\s*"
    r"(?:MB|GB|KB|TB|Mbps|Kbps|Gbps|ms|us|%)\s*$",
    re.IGNORECASE)

#: Callables allowed to consume a raw quantity literal directly.
_ALLOWED_CALLEES = {
    "parse_cpu", "parse_memory_mb", "parse_bandwidth_mbps",
    "parse_delay_ms", "parse_percentage", "parse_bound",
}


def _callee_name(node: ast.Call) -> "str | None":
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


@register
class QuantityLiteralRule(Rule):
    rule_id = "QLNT103"
    title = "raw QoS quantity literal outside repro.units"
    # Advisory tier: quantity-shaped strings are usually (not always)
    # headed for a parser, so this fails only under --strict.
    severity = Severity.WARNING
    node_types = (ast.Constant,)

    def applies_to(self, relpath: str) -> bool:
        # The units module is the one place quantity strings live.
        return not relpath.replace("\\", "/").endswith("repro/units.py")

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        assert isinstance(node, ast.Constant)
        if not isinstance(node.value, str):
            return
        if not _QUANTITY_RE.match(node.value):
            return
        parent = ctx.parent(node)
        # Docstrings and standalone strings are prose, not data.
        if isinstance(parent, ast.Expr):
            return
        # Direct argument to a units parser: the sanctioned idiom.
        if isinstance(parent, ast.Call) and node in parent.args:
            callee = _callee_name(parent)
            if callee in _ALLOWED_CALLEES:
                return
        ctx.report(self, node,
                   f"raw QoS quantity literal {node.value!r}; parse it "
                   f"with the repro.units constructors so the canonical "
                   f"unit is explicit")
