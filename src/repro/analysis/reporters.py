"""Render an :class:`~repro.analysis.engine.AnalysisResult`.

Two formats: ``text`` for humans (one line per finding, GCC-style
locations, summary footer) and ``json`` for tooling.  The JSON schema
is versioned and covered by snapshot tests — extend it by adding keys,
never by renaming or removing them.
"""

from __future__ import annotations

import json
from typing import List

from .core import Finding
from .engine import AnalysisResult

#: Version of the JSON report schema.
JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, *, verbose: bool = False) -> str:
    """Human-readable report: new findings, then the summary footer."""
    lines: "List[str]" = []
    for finding in result.new_findings:
        lines.append(str(finding))
        if verbose and finding.source:
            lines.append(f"    {finding.source}")
    for path, message in result.parse_errors:
        lines.append(f"{path}:0:0: PARSE [error] {message}")
    baselined = len(result.findings) - len(result.new_findings)
    summary = (f"{result.module_count} modules analysed: "
               f"{len(result.new_findings)} new finding(s)"
               f" ({len(result.new_errors())} error(s), "
               f"{len(result.new_warnings())} warning(s))")
    if baselined:
        summary += f", {baselined} baselined"
    if result.stale_baseline:
        summary += (f", {len(result.stale_baseline)} stale baseline "
                    f"entr(y/ies) — regenerate with --write-baseline")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    """Machine-readable report (schema version ``JSON_SCHEMA_VERSION``)."""
    baselined = {f.fingerprint for f in result.findings} \
        - {f.fingerprint for f in result.new_findings}

    def entry(finding: Finding) -> dict:
        payload = finding.as_dict()
        payload["baselined"] = finding.fingerprint in baselined
        return payload

    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro.analysis",
        "summary": {
            "modules": result.module_count,
            "findings": len(result.findings),
            "new": len(result.new_findings),
            "new_errors": len(result.new_errors()),
            "new_warnings": len(result.new_warnings()),
            "baselined": len(baselined),
            "stale_baseline": len(result.stale_baseline),
            "parse_errors": len(result.parse_errors),
        },
        "findings": [entry(f) for f in result.findings],
        "stale_baseline": list(result.stale_baseline),
        "parse_errors": [{"path": path, "message": message}
                         for path, message in result.parse_errors],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
