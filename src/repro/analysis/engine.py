"""The analysis driver: one parse and one AST walk per module.

The engine builds a dispatch table ``node type -> interested rules``
once per run, then for every module: read, parse (once), scan
suppressions, and recursively walk the tree dispatching each node to
the rules registered for its type.  The walk also maintains the
class/function stacks rules consult for lexical context, so no rule
ever re-walks or re-parses.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import AnalysisError
from .baseline import Baseline, fingerprint_findings
from .core import Finding, ModuleContext, Rule, Severity, all_rules

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass
class AnalysisResult:
    """Outcome of one engine run over a set of paths."""

    #: Every unsuppressed finding, fingerprinted, in (path, line) order.
    findings: "List[Finding]" = field(default_factory=list)
    #: Findings not covered by the baseline — these decide the exit code.
    new_findings: "List[Finding]" = field(default_factory=list)
    #: Baselined fingerprints the code no longer produces.
    stale_baseline: "List[str]" = field(default_factory=list)
    #: Modules that failed to parse, as ``(path, message)`` pairs.
    parse_errors: "List[tuple]" = field(default_factory=list)
    #: Number of modules analysed.
    module_count: int = 0

    def new_errors(self) -> "List[Finding]":
        return [f for f in self.new_findings
                if f.severity == Severity.ERROR.value]

    def new_warnings(self) -> "List[Finding]":
        return [f for f in self.new_findings
                if f.severity == Severity.WARNING.value]


def iter_python_files(paths: "Sequence[pathlib.Path]") -> "List[pathlib.Path]":
    """All ``*.py`` files under ``paths``, sorted for determinism."""
    found = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            found.add(path.resolve())
        elif path.is_dir():
            found.update(p.resolve() for p in path.rglob("*.py"))
        else:
            raise AnalysisError(f"no such file or directory: {path}")
    return sorted(found)


def _relpath(path: "pathlib.Path", root: "Optional[pathlib.Path]") -> str:
    base = (root or pathlib.Path.cwd()).resolve()
    try:
        return path.resolve().relative_to(base).as_posix()
    except ValueError:
        return path.as_posix()


class _Walker:
    """Single recursive traversal with rule dispatch and scope stacks."""

    def __init__(self, ctx: ModuleContext,
                 dispatch: "Dict[type, List[Rule]]") -> None:
        self.ctx = ctx
        self.dispatch = dispatch

    def walk(self, node: ast.AST) -> None:
        ctx = self.ctx
        for rule in self.dispatch.get(type(node), ()):
            rule.visit(node, ctx)
        is_class = isinstance(node, ast.ClassDef)
        is_function = isinstance(node, _SCOPE_NODES)
        if is_class:
            ctx.class_stack.append(node.name)
        elif is_function:
            ctx.function_stack.append(getattr(node, "name", "<lambda>"))
        for child in ast.iter_child_nodes(node):
            ctx.set_parent(child, node)
            self.walk(child)
        if is_class:
            ctx.class_stack.pop()
        elif is_function:
            ctx.function_stack.pop()


def analyze_source(text: str, relpath: str,
                   rules: "Optional[Sequence[Rule]]" = None
                   ) -> "List[Finding]":
    """Run the rules over one module's source text (one parse, one walk)."""
    active = [rule for rule in (rules if rules is not None else all_rules())
              if rule.applies_to(relpath)]
    tree = ast.parse(text)
    ctx = ModuleContext(relpath, text, tree)
    dispatch: "Dict[type, List[Rule]]" = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    _Walker(ctx, dispatch).walk(tree)
    for rule in active:
        rule.finish(ctx)
    return ctx.findings


def analyze_paths(paths: "Sequence[pathlib.Path]",
                  rules: "Optional[Sequence[Rule]]" = None,
                  baseline: "Optional[Baseline]" = None,
                  root: "Optional[pathlib.Path]" = None) -> AnalysisResult:
    """Analyse every Python file under ``paths``.

    ``baseline`` findings are subtracted from ``new_findings``;
    unparseable modules are reported in ``parse_errors`` rather than
    aborting the run (a syntax error in one module should not hide
    findings in the rest).
    """
    result = AnalysisResult()
    collected: "List[Finding]" = []
    for path in iter_python_files(paths):
        relpath = _relpath(path, root)
        try:
            text = path.read_text()
        except OSError as exc:
            result.parse_errors.append((relpath, str(exc)))
            continue
        try:
            collected.extend(analyze_source(text, relpath, rules))
        except SyntaxError as exc:
            result.parse_errors.append(
                (relpath, f"line {exc.lineno}: {exc.msg}"))
            continue
        result.module_count += 1
    result.findings = fingerprint_findings(collected)
    active_baseline = baseline or Baseline.empty()
    result.new_findings = [f for f in result.findings
                           if f.fingerprint not in active_baseline]
    result.stale_baseline = active_baseline.stale(result.findings)
    return result
