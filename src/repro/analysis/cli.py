"""Command-line front-end: ``python -m repro.analysis`` (or ``qlint``).

Exit codes: ``0`` clean, ``1`` new findings (errors always; warnings
and stale baseline entries only under ``--strict``), ``2`` usage or
parse errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from ..errors import AnalysisError
from .baseline import Baseline, load_baseline, save_baseline
from .core import all_rules
from .engine import analyze_paths
from .reporters import render_json, render_text

#: Baseline filename looked up next to the analysed tree by default.
DEFAULT_BASELINE = "analysis-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Self-hosted static analysis for the repro library: "
                    "determinism, units discipline, and SLA invariants.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyse "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", metavar="FILE",
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             f"in the current directory, if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings as the new "
                             "baseline and exit 0")
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings and stale baseline "
                             "entries too")
    parser.add_argument("--verbose", action="store_true",
                        help="show the offending source line under "
                             "each finding")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rule catalogue and exit")
    return parser


def _resolve_baseline(args) -> "tuple[Baseline, Optional[pathlib.Path]]":
    if args.no_baseline:
        return Baseline.empty(), None
    if args.baseline:
        path = pathlib.Path(args.baseline)
        if path.exists():
            return load_baseline(path), path
        return Baseline.empty(), path
    default = pathlib.Path(DEFAULT_BASELINE)
    if default.exists():
        return load_baseline(default), default
    return Baseline.empty(), default


def _list_rules() -> str:
    lines = ["Rule catalogue:"]
    for rule in all_rules():
        lines.append(f"  {rule.rule_id}  [{rule.severity.value:7}] "
                     f"{rule.title}")
    lines.append("Suppress inline with '# qlint: disable=ID' or "
                 "file-wide with '# qlint: disable-file=ID'.")
    return "\n".join(lines)


def main(argv: "Optional[List[str]]" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    try:
        baseline, baseline_path = _resolve_baseline(args)
        result = analyze_paths([pathlib.Path(p) for p in args.paths],
                               baseline=baseline)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        target = baseline_path or pathlib.Path(DEFAULT_BASELINE)
        save_baseline(target, Baseline.from_findings(result.findings))
        print(f"baseline written: {target} "
              f"({len(result.findings)} finding(s))")
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    if result.parse_errors:
        return 2
    failing = list(result.new_errors())
    if args.strict:
        failing += result.new_warnings()
        if result.stale_baseline:
            return 1
    return 1 if failing else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
