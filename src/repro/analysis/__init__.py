"""Self-hosted static analysis for the reproduction.

The engine enforces, at review time, the invariants the test suite can
only spot-check at runtime: discrete-event determinism (QLNT101,
QLNT109), units and tolerance discipline on QoS quantities (QLNT102,
QLNT103), the error-handling contract (QLNT104, QLNT105), the
published API surface (QLNT106), the closed SLA/reservation state
machines (QLNT107), and general source hygiene (QLNT108, QLNT110,
QLNT111).

Run it with ``python -m repro.analysis [paths]`` (or the ``qlint``
console script); see :mod:`repro.analysis.cli` for flags, and
:mod:`repro.analysis.rules` for the catalogue.
"""

from __future__ import annotations

from .baseline import Baseline, fingerprint_findings, load_baseline, \
    save_baseline
from .core import Finding, ModuleContext, Rule, Severity, all_rules, \
    register, rules_by_id
from .engine import AnalysisResult, analyze_paths, analyze_source, \
    iter_python_files
from .reporters import JSON_SCHEMA_VERSION, render_json, render_text

__all__ = [
    "AnalysisResult",
    "Baseline",
    "Finding",
    "JSON_SCHEMA_VERSION",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "fingerprint_findings",
    "iter_python_files",
    "load_baseline",
    "register",
    "render_json",
    "render_text",
    "rules_by_id",
    "save_baseline",
]
