"""Entry point for ``python -m repro.analysis``."""

from __future__ import annotations

import sys

from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report.
        sys.exit(0)
