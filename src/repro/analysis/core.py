"""Rule framework for the self-hosted static-analysis engine.

A :class:`Rule` declares which AST node types it wants to see
(``node_types``); the engine parses each module **once**, walks the
tree once, and dispatches every node to the rules registered for its
type.  Rules report through :meth:`ModuleContext.report`, which applies
inline suppressions before a finding is recorded.

Rule identifiers are stable (``QLNT101`` ...) so suppression comments
and baseline entries survive refactors of the rule implementations.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Tuple, Type

from ..errors import AnalysisError


class Severity(Enum):
    """How a finding is treated by the CLI exit code."""

    #: Advisory: fails the run only under ``--strict``.
    WARNING = "warning"
    #: Always fails the run (unless suppressed or baselined).
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    source: str = ""
    fingerprint: str = ""

    def as_dict(self) -> "Dict[str, object]":
        """The stable JSON form (schema checked by the reporter tests)."""
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} [{self.severity}] {self.message}")


class Rule:
    """Base class for analysis rules.

    Subclasses set ``rule_id``/``title``/``severity``, list the AST
    node classes they inspect in ``node_types``, and implement
    :meth:`visit` (per matching node) and/or :meth:`finish` (once per
    module, after the walk).
    """

    rule_id: str = "QLNT000"
    title: str = ""
    severity: Severity = Severity.ERROR
    #: AST node classes dispatched to :meth:`visit`.
    node_types: "Tuple[type, ...]" = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath``.

        Rules with structural exemptions (e.g. the determinism rule
        exempts ``sim/random.py``) override this.
        """
        return True

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> None:
        """Inspect one node of a type listed in ``node_types``."""

    def finish(self, ctx: "ModuleContext") -> None:
        """Run module-level checks after the single walk completes."""


class ModuleContext:
    """Everything the rules may consult about the module under analysis.

    Built once per module by the engine: one source read, one
    :func:`ast.parse`, one suppression scan.  The engine maintains
    ``class_stack``/``function_stack`` during the walk so rules can ask
    for their lexical position without re-walking.
    """

    def __init__(self, relpath: str, text: str, tree: ast.Module) -> None:
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        self.findings: "List[Finding]" = []
        #: Enclosing ``ClassDef`` names, outermost first.
        self.class_stack: "List[str]" = []
        #: Enclosing function names, outermost first.
        self.function_stack: "List[str]" = []
        self._parents: "Dict[int, ast.AST]" = {}
        from .suppressions import scan_suppressions
        self._suppressions = scan_suppressions(text)

    # -- lexical helpers -------------------------------------------------

    def parent(self, node: ast.AST) -> "ast.AST | None":
        """The AST parent of ``node`` (``None`` for the module root)."""
        return self._parents.get(id(node))

    def set_parent(self, node: ast.AST, parent: ast.AST) -> None:
        self._parents[id(node)] = parent

    def current_class(self) -> "str | None":
        return self.class_stack[-1] if self.class_stack else None

    def current_function(self) -> "str | None":
        return self.function_stack[-1] if self.function_stack else None

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # -- reporting -------------------------------------------------------

    def suppressed(self, rule_id: str, line: int) -> bool:
        return self._suppressions.suppressed(rule_id, line)

    def report(self, rule: Rule, node: "ast.AST | int",
               message: str) -> None:
        """Record a finding at ``node`` unless suppressed inline."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        column = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        if self.suppressed(rule.rule_id, line):
            return
        self.findings.append(Finding(
            rule_id=rule.rule_id,
            severity=rule.severity.value,
            path=self.relpath,
            line=line,
            column=column,
            message=message,
            source=self.source_line(line),
        ))


# -- registry ------------------------------------------------------------

_REGISTRY: "Dict[str, Type[Rule]]" = {}


def register(cls: "Type[Rule]") -> "Type[Rule]":
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id or cls.rule_id == Rule.rule_id:
        raise AnalysisError(f"rule {cls.__name__} has no stable rule_id")
    if cls.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> "List[Rule]":
    """Fresh instances of every registered rule, ordered by id."""
    from . import rules as _rules  # noqa: F401  (registers on import)
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rules_by_id(rule_ids: "Iterable[str]") -> "List[Rule]":
    """Instances of the named rules (:class:`AnalysisError` if unknown)."""
    from . import rules as _rules  # noqa: F401
    instances = []
    for rule_id in rule_ids:
        if rule_id not in _REGISTRY:
            raise AnalysisError(f"unknown rule id {rule_id!r}")
        instances.append(_REGISTRY[rule_id]())
    return instances
