"""Committed baseline of grandfathered findings.

A baseline lets the analyzer be adopted on a codebase with known,
deliberately-unfixed findings: the file records a *fingerprint* per
finding, and the engine subtracts fingerprinted findings from a run
before deciding the exit code.  New code therefore starts from zero
findings without requiring an atomic repo-wide cleanup.

Fingerprints are content-addressed, not line-addressed: the hash
covers the module path, rule id, the *stripped text* of the offending
line, and an occurrence index among identical lines.  Inserting or
deleting unrelated lines does not invalidate the baseline; editing the
offending line does (which is the point — a touched line must be
fixed, not grandfathered).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, Iterable, List

from ..errors import AnalysisError
from .core import Finding

#: Schema version of the baseline file.
VERSION = 1


def fingerprint_findings(findings: "Iterable[Finding]") -> "List[Finding]":
    """Return findings with stable fingerprints filled in.

    Findings sharing ``(path, rule, stripped source line)`` are
    disambiguated by an occurrence index in line order, so two
    identical violations in one file baseline independently.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.column,
                                              f.rule_id))
    seen: "Dict[tuple, int]" = {}
    stamped = []
    for finding in ordered:
        key = (finding.path, finding.rule_id, finding.source)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.path}\x1f{finding.rule_id}\x1f{finding.source}"
            f"\x1f{index}".encode("utf-8")).hexdigest()[:16]
        stamped.append(Finding(
            rule_id=finding.rule_id, severity=finding.severity,
            path=finding.path, line=finding.line, column=finding.column,
            message=finding.message, source=finding.source,
            fingerprint=digest))
    return stamped


class Baseline:
    """The set of grandfathered fingerprints."""

    def __init__(self, entries: "Dict[str, Dict[str, object]]") -> None:
        self.entries = entries

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def stale(self, findings: "Iterable[Finding]") -> "List[str]":
        """Baselined fingerprints no longer produced by the code."""
        live = {finding.fingerprint for finding in findings}
        return sorted(fp for fp in self.entries if fp not in live)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def from_findings(cls, findings: "Iterable[Finding]") -> "Baseline":
        entries = {}
        for finding in fingerprint_findings(findings):
            entries[finding.fingerprint] = {
                "rule": finding.rule_id,
                "path": finding.path,
                "source": finding.source,
                "message": finding.message,
            }
        return cls(entries)


def load_baseline(path: "pathlib.Path") -> Baseline:
    """Load a baseline file (:class:`AnalysisError` on schema drift)."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != VERSION:
        raise AnalysisError(
            f"baseline {path} has unsupported schema "
            f"(expected version {VERSION})")
    entries = payload.get("findings", {})
    if not isinstance(entries, dict):
        raise AnalysisError(f"baseline {path}: 'findings' must be a mapping")
    return Baseline(dict(entries))


def save_baseline(path: "pathlib.Path", baseline: Baseline) -> None:
    """Write the baseline with sorted keys for stable diffs."""
    payload = {
        "version": VERSION,
        "tool": "repro.analysis",
        "findings": {fp: baseline.entries[fp]
                     for fp in sorted(baseline.entries)},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
