"""Inline suppression comments.

Two forms are recognised:

* line-scoped — ``# qlint: disable=QLNT101`` (or a comma-separated
  list, or ``all``) on the offending line silences those rules for
  that line only;
* file-scoped — ``# qlint: disable-file=QLNT103`` on a line of its
  own silences the rules for the whole module.

Suppressions are scanned textually (not via the AST) so they work on
any physical line, including continuation lines and comments attached
to multi-line statements.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_LINE_RE = re.compile(r"#\s*qlint:\s*disable=([A-Za-z0-9_,\s]+)")
_FILE_RE = re.compile(r"#\s*qlint:\s*disable-file=([A-Za-z0-9_,\s]+)")

ALL = "all"


def _split_ids(blob: str) -> "Set[str]":
    return {part.strip() for part in blob.split(",") if part.strip()}


class SuppressionIndex:
    """Per-line and per-file suppression lookup for one module."""

    def __init__(self) -> None:
        self.by_line: "Dict[int, Set[str]]" = {}
        self.file_wide: "Set[str]" = set()

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_wide or ALL in self.file_wide:
            return True
        ids = self.by_line.get(line)
        return ids is not None and (rule_id in ids or ALL in ids)


def scan_suppressions(text: str) -> SuppressionIndex:
    """Build the suppression index for one module's source text."""
    index = SuppressionIndex()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "qlint" not in line:
            continue
        file_match = _FILE_RE.search(line)
        if file_match:
            index.file_wide |= _split_ids(file_match.group(1))
            continue
        line_match = _LINE_RE.search(line)
        if line_match:
            index.by_line.setdefault(lineno, set()).update(
                _split_ids(line_match.group(1)))
    return index
