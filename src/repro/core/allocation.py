"""The Allocation manager (Alloc-M).

"The Allocation manager (Alloc-M) within the AQoS also receives its
copy of the resource configuration" (Section 3.1). It is the broker's
book-keeper: for every live session it tracks the composite
reservation, the launched job, the attached sensors and the network
flow, so the scenario handlers can find (and resize) the resources
behind an SLA, and the verifier can map a degraded flow back to its
session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SLAError
from ..network.interdomain import EndToEndAllocation
from ..network.nrm import FlowAllocation
from ..resources.compute import Job
from ..sla.lifecycle import QoSSession
from .reservation_system import CompositeReservation


@dataclass
class SessionResources:
    """Everything allocated to one session."""

    sla_id: int
    session: QoSSession
    reservation: Optional[CompositeReservation] = None
    job: Optional[Job] = None
    sensor_names: List[str] = field(default_factory=list)


class AllocationManager:
    """Per-session resource configuration registry."""

    def __init__(self) -> None:
        self._sessions: Dict[int, SessionResources] = {}

    def open_session(self, sla_id: int,
                     session: QoSSession) -> SessionResources:
        """Start tracking a session.

        Raises:
            SLAError: When the SLA is already tracked.
        """
        if sla_id in self._sessions:
            raise SLAError(f"session for SLA {sla_id} already open")
        resources = SessionResources(sla_id=sla_id, session=session)
        self._sessions[sla_id] = resources
        return resources

    def get(self, sla_id: int) -> SessionResources:
        """The tracked resources for an SLA.

        Raises:
            SLAError: When the SLA is not tracked.
        """
        resources = self._sessions.get(sla_id)
        if resources is None:
            raise SLAError(f"no open session for SLA {sla_id}")
        return resources

    def has(self, sla_id: int) -> bool:
        """Whether the SLA has an open session."""
        return sla_id in self._sessions

    def close_session(self, sla_id: int) -> SessionResources:
        """Stop tracking a session (on clearing)."""
        resources = self._sessions.pop(sla_id, None)
        if resources is None:
            raise SLAError(f"no open session for SLA {sla_id}")
        return resources

    def open_sessions(self) -> List[SessionResources]:
        """All tracked sessions, by SLA id."""
        return [self._sessions[sla_id] for sla_id in sorted(self._sessions)]

    def reset(self) -> None:
        """Forget every session (crash-recovery wipe)."""
        self._sessions.clear()

    def sla_for_flow(self, flow: FlowAllocation) -> Optional[int]:
        """Map a network flow back to its owning SLA (verifier hook)."""
        for resources in self._sessions.values():
            booking = (resources.reservation.network_booking
                       if resources.reservation is not None else None)
            if booking is None:
                continue
            if isinstance(booking, EndToEndAllocation):
                if any(f.flow_id == flow.flow_id
                       for _nrm, f in booking.segments):
                    return resources.sla_id
            elif booking.flow_id == flow.flow_id:
                return resources.sla_id
        return None
