"""The paper's contribution: the QoS adaptation scheme.

* :mod:`repro.core.capacity` — the capacity partition
  ``C = Cg + Ca + Cb`` with dynamic borrowing (Section 5.4).
* :mod:`repro.core.adaptation` — Algorithm 1's entry points over the
  partition, under the paper's own function names.
* :mod:`repro.core.optimizer` — the revenue-optimization heuristic of
  Section 5.3, plus an exact reference solver.
* :mod:`repro.core.scenarios` — the three adaptation scenarios of
  Section 4.
* :mod:`repro.core.reservation_system` — the Reservation System (RS)
  inside the AQoS (Section 3.1).
* :mod:`repro.core.allocation` — the Allocation manager (Alloc-M).
* :mod:`repro.core.accounting` — revenue, penalties, promotions.
* :mod:`repro.core.broker` — the AQoS broker orchestrating everything.
* :mod:`repro.core.discovery` — pluggable service discovery (direct,
  or over the bus with stale-cache degradation).
* :mod:`repro.core.testbed` — wiring helpers reproducing the Figure 5
  testbed and the Figure 1 multi-domain architecture, plus the
  control-plane/chaos wiring.
"""

from .accounting import AccountingLedger
from .adaptation import AdaptationEngine
from .allocation import AllocationManager
from .broker import AQoSBroker, ServiceOutcome
from .capacity import CapacityPartition, GuaranteedHolding, RebalanceReport
from .discovery import (
    DirectDiscovery,
    DiscoveryResult,
    RegistryEndpoint,
    ResilientDiscovery,
)
from .optimizer import (
    OptimizationResult,
    QualityCandidate,
    exact_optimize,
    greedy_optimize,
)
from .reservation_system import CompositeReservation, ReservationSystem
from .scenarios import ScenarioEngine
from .testbed import (Testbed, attach_control_plane, build_testbed,
                      install_all, install_chaos)

__all__ = [
    "AQoSBroker",
    "AccountingLedger",
    "AdaptationEngine",
    "AllocationManager",
    "CapacityPartition",
    "CompositeReservation",
    "DirectDiscovery",
    "DiscoveryResult",
    "GuaranteedHolding",
    "OptimizationResult",
    "QualityCandidate",
    "RebalanceReport",
    "RegistryEndpoint",
    "ReservationSystem",
    "ResilientDiscovery",
    "ScenarioEngine",
    "ServiceOutcome",
    "Testbed",
    "attach_control_plane",
    "build_testbed",
    "exact_optimize",
    "greedy_optimize",
    "install_all",
    "install_chaos",
]
