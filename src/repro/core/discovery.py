"""Service discovery — direct, or over the bus with degradation.

The broker's Figure 2 "QueryNameSpace" step is a UDDIe lookup. Two
transports implement it behind one interface:

* :class:`DirectDiscovery` — an in-process call into the
  :class:`~repro.registry.uddie.UddieRegistry`. This is the default
  and is exactly the pre-chaos behaviour (no extra traffic, no extra
  trace records), so fault-free runs stay byte-identical.
* :class:`ResilientDiscovery` — discovery as a ``find_services``
  request to a :class:`RegistryEndpoint` on the message bus, through a
  :class:`~repro.xmlmsg.resilient.ResilientCaller`. When the registry
  becomes unreachable (retries exhausted, circuit open) it degrades
  gracefully: the last good answer for the same query is served from a
  stale cache with :attr:`DiscoveryResult.degraded` set, rather than
  failing the whole service request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]
from xml.etree import ElementTree as ET

from ..errors import CircuitOpenError, RegistryError, TransientMessageError
from ..qos.specification import QoSSpecification
from ..registry.query import PropertyConstraint, PropertyValue, ServiceQuery
from ..registry.uddie import ServiceRecord, UddieRegistry
from ..sim.trace import TraceRecorder
from ..telemetry import MetricsRegistry
from ..xmlmsg.bus import MessageBus
from ..xmlmsg.codec import _decode_specification, _encode_specification
from ..xmlmsg.document import child_text, element, pretty_xml, subelement
from ..xmlmsg.envelope import Envelope
from ..xmlmsg.resilient import ResilientCaller

#: Endpoint name the registry listens on when exposed over the bus.
REGISTRY_ENDPOINT = "uddie"


@dataclass
class DiscoveryResult:
    """The outcome of one discovery lookup.

    Attributes:
        records: The matching service records.
        degraded: True when the registry was unreachable and the
            records came from the stale cache — callers may proceed
            but should surface the marker (the broker counts and
            traces it).
        age: Staleness of a cached answer in sim time units.
    """

    records: "List[ServiceRecord]"
    degraded: bool = False
    age: float = 0.0


class DiscoveryService(Protocol):
    """What the broker needs from a discovery transport."""

    def find(self, query: ServiceQuery) -> DiscoveryResult:
        """Matching records for a query (possibly degraded)."""
        ...  # pragma: no cover - protocol signature


class DirectDiscovery:
    """In-process registry lookup (the perfect-transport default)."""

    def __init__(self, registry: UddieRegistry) -> None:
        self.registry = registry

    def find(self, query: ServiceQuery) -> DiscoveryResult:
        """Query the registry directly; never degraded."""
        return DiscoveryResult(self.registry.find(query))


# ----------------------------------------------------------------------
# Wire format for queries and records
# ----------------------------------------------------------------------

def _encode_value(value: PropertyValue) -> "Tuple[str, str]":
    if isinstance(value, bool):
        return "bool", "true" if value else "false"
    if isinstance(value, int):
        return "int", str(value)
    if isinstance(value, float):
        return "float", repr(value)
    return "str", str(value)


def _decode_value(type_name: str, text: str) -> PropertyValue:
    if type_name == "bool":
        return text == "true"
    if type_name == "int":
        return int(text)
    if type_name == "float":
        return float(text)
    return text


def encode_service_query(query: ServiceQuery) -> ET.Element:
    """Serialize a :class:`ServiceQuery` to a ``<Service_Query>``."""
    root = element("Service_Query")
    subelement(root, "Name_Pattern", query.name_pattern)
    for constraint in query.constraints:
        node = subelement(root, "Constraint")
        type_name, text = _encode_value(constraint.value)
        node.set("name", constraint.name)
        node.set("operator", constraint.operator)
        node.set("type", type_name)
        node.text = text
    if query.qos is not None:
        root.append(_encode_specification(query.qos))
    return root


def decode_service_query(node: ET.Element) -> ServiceQuery:
    """Parse a ``<Service_Query>`` back into a :class:`ServiceQuery`."""
    constraints = []
    for child in node.findall("Constraint"):
        constraints.append(PropertyConstraint(
            name=child.get("name", ""),
            operator=child.get("operator", "="),
            value=_decode_value(child.get("type", "str"), child.text or "")))
    qos_node = node.find("QoS_Specification")
    qos = _decode_specification(qos_node) if qos_node is not None else None
    return ServiceQuery(
        name_pattern=child_text(node, "Name_Pattern", default="*") or "*",
        constraints=tuple(constraints), qos=qos)


def encode_service_records(records: "List[ServiceRecord]") -> ET.Element:
    """Serialize registry matches to a ``<Service_Records>``."""
    root = element("Service_Records")
    for record in records:
        node = subelement(root, "Service_Record")
        node.set("id", str(record.record_id))
        subelement(node, "Name", record.name)
        subelement(node, "Provider", record.provider)
        subelement(node, "Endpoint", record.endpoint)
        node.append(_encode_specification(record.capability))
        for name in sorted(record.properties):
            prop = subelement(node, "Property")
            type_name, text = _encode_value(record.properties[name])
            prop.set("name", name)
            prop.set("type", type_name)
            prop.text = text
    return root


def decode_service_records(node: ET.Element) -> "List[ServiceRecord]":
    """Parse a ``<Service_Records>`` document."""
    records = []
    for child in node.findall("Service_Record"):
        qos_node = child.find("QoS_Specification")
        capability = (_decode_specification(qos_node)
                      if qos_node is not None else QoSSpecification.of())
        properties: "Dict[str, PropertyValue]" = {}
        for prop in child.findall("Property"):
            properties[prop.get("name", "")] = _decode_value(
                prop.get("type", "str"), prop.text or "")
        records.append(ServiceRecord(
            record_id=int(child.get("id", "0")),
            name=child_text(child, "Name", default=""),
            provider=child_text(child, "Provider", default=""),
            endpoint=child_text(child, "Endpoint", default=""),
            capability=capability,
            properties=properties))
    return records


class RegistryEndpoint:
    """Exposes a :class:`UddieRegistry` as a bus endpoint.

    Handles ``find_services`` requests carrying a ``<Service_Query>``
    and replies with the matching ``<Service_Records>``.
    """

    def __init__(self, registry: UddieRegistry, bus: MessageBus, *,
                 endpoint_name: str = REGISTRY_ENDPOINT) -> None:
        self.registry = registry
        self.endpoint_name = endpoint_name
        endpoint = bus.endpoint(endpoint_name)
        endpoint.on("find_services", self._on_find_services)

    def _on_find_services(self, envelope: Envelope) -> Envelope:
        query = decode_service_query(envelope.body)
        matches = self.registry.find(query)
        return envelope.reply("service_records",
                              encode_service_records(matches))


class ResilientDiscovery:
    """Discovery over the bus, degrading to a stale cache.

    Args:
        bus: The transport (a :class:`RegistryEndpoint` must be
            registered on it).
        caller: Optional pre-configured resilient caller; a default
            one is built otherwise.
        client_name: Sender name stamped on the query envelopes.
        registry_name: The registry's endpoint name.
        trace: Optional recorder; degraded lookups are logged under
            the ``"discovery"`` category.
        metrics: Registry for the stale-hit counter; a private one is
            created when omitted (the broker swaps in its own when it
            adopts this transport).
    """

    def __init__(self, bus: MessageBus, *,
                 caller: Optional[ResilientCaller] = None,
                 client_name: str = "aqos-discovery",
                 registry_name: str = REGISTRY_ENDPOINT,
                 trace: Optional[TraceRecorder] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._bus = bus
        self.caller = caller if caller is not None \
            else ResilientCaller(bus, name=client_name)
        self.client_name = client_name
        self.registry_name = registry_name
        self._trace = trace
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Last good answer per canonical query text: (time, records).
        self._cache: "Dict[str, Tuple[float, List[ServiceRecord]]]" = {}

    @property
    def stale_hits(self) -> int:
        """Lookups served from the stale cache (registry-backed)."""
        return int(self.metrics.counter_value(
            "repro_discovery_stale_hits_total"))

    def find(self, query: ServiceQuery) -> DiscoveryResult:
        """Look up matches over the bus.

        On transport failure the last good answer for the same query
        is returned with ``degraded=True``; with no cached answer the
        lookup fails as a :class:`~repro.errors.RegistryError`.
        """
        body = encode_service_query(query)
        key = pretty_xml(body)
        envelope = Envelope(sender=self.client_name,
                            recipient=self.registry_name,
                            action="find_services", body=body)
        try:
            response = self.caller.call(envelope)
        except (CircuitOpenError, TransientMessageError) as error:
            cached = self._cache.get(key)
            if cached is None:
                raise RegistryError(
                    f"discovery unavailable and no cached answer: "
                    f"{error}") from error
            cached_at, records = cached
            age = self._bus.sim.now - cached_at
            self.metrics.counter(
                "repro_discovery_stale_hits_total").inc()
            if self._trace is not None:
                self._trace.record(
                    self._bus.sim.now, "discovery",
                    f"degraded: serving {len(records)} stale record(s) "
                    f"for {query.name_pattern!r}", age=age)
            return DiscoveryResult(list(records), degraded=True, age=age)
        records = decode_service_records(response.body)
        self._cache[key] = (self._bus.sim.now, records)
        return DiscoveryResult(records)
