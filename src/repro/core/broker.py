"""The AQoS broker — the Application QoS broker/manager.

The AQoS "is required to interact with clients, RMs, NRMs and
neighboring AQoSs ... negotiates SLAs with clients and communicates
parameters associated with an SLA to the corresponding resource
manager ... is responsible for ensuring SLA conformance to allocated
resources, and provides support for parameter adaptation when a SLA
violation is detected" (Section 2.1).

One broker instance orchestrates, per Figure 2:

1. **Discovery** — UDDIe query, then resource-availability checks with
   the compute RM and the NRM.
2. **Negotiation & SLA establishment** — offers, client accept,
   SLA document into the repository.
3. **Reservation & allocation** — the Reservation System co-allocates
   (temporary → confirmed), GRAM launches the service, the process
   binds its reservation.
4. **QoS management** — sensors attach, SLA-Verif monitors, the
   adaptation engine and scenario handlers react, the optimizer
   periodically re-tunes controlled-load quality, accounting accrues.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, ContextManager, Dict, List,
                    Optional, Sequence)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..obs import DecisionLog, SloEngine

from ..errors import (
    AdmissionError,
    CapacityError,
    NetworkError,
    SLAError,
)
from ..monitoring.mds import InformationService
from ..monitoring.notifications import DegradationNotice, NotificationHub
from ..monitoring.sensors import Sensor, SensorReading
from ..monitoring.verifier import SlaVerifier
from ..network.interdomain import EndToEndAllocation, InterDomainCoordinator
from ..obs.decisions import point_payload
from ..network.nrm import NetworkResourceManager
from ..qos.classes import ServiceClass
from ..qos.cost import PricingPolicy
from ..qos.parameters import Dimension
from ..qos.specification import OperatingPoint, QoSSpecification
from ..qos.vector import ResourceVector
from ..recovery.journal import (
    BEST_EFFORT_SET,
    DeferredValue,
    Journal,
    SLA_SAVED,
)
from ..registry.query import ServiceQuery
from ..registry.uddie import ServiceRecord, UddieRegistry
from ..resources.compute import ComputeResourceManager, Job, JobState
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..telemetry import MetricsRegistry, Telemetry
from ..sla.document import ServiceSLA, SlaStatus
from ..sla.lifecycle import Phase, QoSFunction, QoSSession
from ..sla.negotiation import Negotiation, Offer, ServiceRequest
from ..sla.repository import SLARepository
from ..sla.violations import violation_penalty
from ..xmlmsg.codec import render_service_sla
from .accounting import AccountingLedger
from .adaptation import AdaptationEngine
from .allocation import AllocationManager
from .capacity import CapacityPartition, GuaranteedHolding
from .optimizer import (
    OptimizationResult,
    QualityCandidate,
    candidates_for,
    greedy_optimize,
)
from .discovery import DirectDiscovery, DiscoveryService
from .reservation_system import CompositeReservation, ReservationSystem
from .scenarios import ScenarioEngine


@dataclass
class BrokerStats:
    """Counters the experiment harness reads."""

    requests: int = 0
    accepted: int = 0
    rejected_discovery: int = 0
    rejected_capacity: int = 0
    rejected_negotiation: int = 0
    best_effort_requests: int = 0
    best_effort_granted: int = 0
    completed: int = 0
    terminated: int = 0
    expired: int = 0
    optimizer_runs: int = 0


@dataclass
class ServiceOutcome:
    """Result of one end-to-end service request."""

    request: ServiceRequest
    accepted: bool
    reason: str = ""
    negotiation: Optional[Negotiation] = None
    sla: Optional[ServiceSLA] = None
    session: Optional[QoSSession] = None


class _SessionComputeSensor(Sensor):
    """Per-session CPU/memory sensor reading the partition holding."""

    def __init__(self, name: str, sim: Simulator, broker: "AQoSBroker",
                 sla_id: int) -> None:
        super().__init__(name, sim)
        self._broker = broker
        self._sla_id = sla_id

    def sample(self) -> SensorReading:
        holding = self._broker.partition_holding(self._sla_id)
        sla = self._broker.repository.get(self._sla_id)
        served = holding.served if holding is not None else 0.0
        values = {Dimension.CPU: served}
        memory = sla.delivered_point.get(Dimension.MEMORY_MB)
        if memory is not None:
            # Memory is booked wholesale with the reservation; a CPU
            # shortfall scales the usable share.
            entitled = max(holding.entitled, 1e-9) if holding else 1e-9
            scale = min(1.0, served / entitled) if holding else 1.0
            values[Dimension.MEMORY_MB] = memory * scale
        return SensorReading(sensor=self.name, time=self._sim.now,
                             values=values)


class _SessionNetworkSensor(Sensor):
    """Per-session bandwidth/delay/loss sensor over the flow booking."""

    def __init__(self, name: str, sim: Simulator, broker: "AQoSBroker",
                 sla_id: int) -> None:
        super().__init__(name, sim)
        self._broker = broker
        self._sla_id = sla_id

    def sample(self) -> SensorReading:
        resources = self._broker.allocation.get(self._sla_id)
        booking = (resources.reservation.network_booking
                   if resources.reservation is not None else None)
        values: Dict[Dimension, float] = {}
        if booking is not None:
            if isinstance(booking, EndToEndAllocation):
                coordinator = self._broker.coordinator
                assert coordinator is not None
                values[Dimension.BANDWIDTH_MBPS] = coordinator.measure(booking)
                delays = sum(nrm.measure(flow).delay_ms
                             for nrm, flow in booking.segments)
                values[Dimension.DELAY_MS] = delays
                survive = 1.0
                for nrm, flow in booking.segments:
                    survive *= 1.0 - nrm.measure(flow).loss
                values[Dimension.PACKET_LOSS] = 1.0 - survive
            else:
                nrm = self._broker.nrm
                assert nrm is not None
                measurement = nrm.measure(booking)
                values[Dimension.BANDWIDTH_MBPS] = measurement.bandwidth_mbps
                values[Dimension.DELAY_MS] = measurement.delay_ms
                values[Dimension.PACKET_LOSS] = measurement.loss
        return SensorReading(sensor=self.name, time=self._sim.now,
                             values=values)


class AQoSBroker:
    """The Application QoS broker.

    Args:
        sim: Simulation engine.
        registry: UDDIe registry for discovery.
        compute_rm: The compute resource manager.
        partition: The administrator's capacity partition (CPU nodes).
        nrm: Optional single-domain NRM.
        coordinator: Optional inter-domain coordinator (overrides
            ``nrm`` for booking when given).
        pricing: Pricing policy.
        trace: Optional activity recorder.
        mds / hub / verifier / repository / ledger: Subsystems; built
            fresh when omitted.
        optimizer_levels: Quality levels enumerated per controlled-load
            SLA for the optimizer.
        optimizer_interval: When > 0, the optimizer runs periodically
            ("the optimization heuristic is executed periodically by
            the AQoS broker", Section 5.5).
        promotion_policy: Callable ``(sla) -> bool`` deciding whether a
            client accepts a promotion offer (default: always).
        discovery: Pluggable discovery transport; defaults to a
            :class:`~repro.core.discovery.DirectDiscovery` over
            ``registry``. Chaos wiring swaps in a
            :class:`~repro.core.discovery.ResilientDiscovery` that
            rides the message bus and degrades to a stale cache.
    """

    def __init__(self, sim: Simulator, *, registry: UddieRegistry,
                 compute_rm: ComputeResourceManager,
                 partition: CapacityPartition,
                 nrm: Optional[NetworkResourceManager] = None,
                 coordinator: Optional[InterDomainCoordinator] = None,
                 pricing: Optional[PricingPolicy] = None,
                 trace: Optional[TraceRecorder] = None,
                 mds: Optional[InformationService] = None,
                 hub: Optional[NotificationHub] = None,
                 repository: Optional[SLARepository] = None,
                 ledger: Optional[AccountingLedger] = None,
                 optimizer_levels: int = 4,
                 optimizer_interval: float = 0.0,
                 promotion_policy: Optional[Callable[[ServiceSLA], bool]] = None,
                 discovery: Optional["DiscoveryService"] = None
                 ) -> None:
        self.sim = sim
        self.registry = registry
        self.discovery = (discovery if discovery is not None
                          else DirectDiscovery(registry))
        self.compute_rm = compute_rm
        self.partition = partition
        self.nrm = nrm
        self.coordinator = coordinator
        self.pricing = pricing if pricing is not None else PricingPolicy()
        self.trace = trace
        self.mds = mds if mds is not None else InformationService(sim)
        self.hub = hub if hub is not None else NotificationHub()
        # NB: identity checks, not truthiness — an empty repository or
        # ledger is falsy (it defines __len__) and must not be replaced.
        self.repository = (repository if repository is not None
                           else SLARepository())
        self.ledger = ledger if ledger is not None else AccountingLedger()
        self.allocation = AllocationManager()
        #: The broker-wide metrics registry — the single counting
        #: mechanism for cross-cutting operational stats (QLNT113).
        self.metrics = MetricsRegistry(now=lambda: sim.now)
        #: Optional telemetry hub; :meth:`install_telemetry` wires it
        #: through every subsystem. ``None`` keeps all hooks disabled.
        self.telemetry: Optional[Telemetry] = None
        #: Optional write-ahead journal;
        #: :func:`repro.recovery.recover.install_journal` wires it
        #: through every subsystem. ``None`` keeps every write point
        #: at a single attribute check.
        self.journal: Optional[Journal] = None
        #: Optional decision-provenance log
        #: (:class:`repro.obs.DecisionLog`);
        #: :func:`repro.core.testbed.install_observability` wires it.
        #: ``None`` keeps every emit point at a single attribute check.
        self.decisions: Optional["DecisionLog"] = None
        #: Optional SLO engine (:class:`repro.obs.SloEngine`) fed from
        #: session start/end; installed alongside :attr:`decisions`.
        self.slo: Optional["SloEngine"] = None
        #: Cache of journaled SLA XML keyed by sla_id; an entry is
        #: reused while the mutable document fields (the fingerprint)
        #: are unchanged, which keeps journaling off the XML encoder
        #: for status-only transitions.
        self._journal_xml_cache: Dict[int, "tuple"] = {}
        self.engine = AdaptationEngine(partition, trace=trace,
                                       now=lambda: sim.now)
        self.verifier = SlaVerifier(sim, self.mds, self.repository,
                                    self.hub, trace=trace,
                                    metrics=self.metrics)
        self.reservation_system = ReservationSystem(
            sim, compute_rm, nrm=nrm, coordinator=coordinator, trace=trace)
        self.scenarios = ScenarioEngine(self)
        self.stats = BrokerStats()
        self.optimizer_levels = optimizer_levels
        self.promotion_policy = promotion_policy or (lambda sla: True)
        self._closing: set = set()
        self._be_counter = 0
        #: Neighboring AQoS brokers (Figure 1's AQoS-to-AQoS links).
        self._peers: List["AQoSBroker"] = []

        compute_rm.subscribe_capacity(self._on_capacity_change)
        compute_rm.subscribe_job_end(self._on_job_end)
        self.hub.subscribe(self._on_degradation_notice)
        if nrm is not None:
            nrm.subscribe_degradation(
                self.verifier.on_network_degradation(
                    self.allocation.sla_for_flow))
        if coordinator is not None:
            for domain_nrm in coordinator._nrms.values():  # noqa: SLF001
                domain_nrm.subscribe_degradation(
                    self.verifier.on_network_degradation(
                        self.allocation.sla_for_flow))
        if optimizer_interval > 0:
            self._schedule_optimizer(optimizer_interval)

    # ==================================================================
    # Telemetry
    # ==================================================================

    def install_telemetry(self, telemetry: Telemetry) -> None:
        """Wire a telemetry hub through the broker and its subsystems.

        The hub's registry becomes the broker-wide registry (existing
        counts are abandoned only when the hub brings its *own*
        registry — pass ``metrics=broker.metrics`` when building the
        hub to adopt the live one), spans turn on across the
        reservation path, and the capacity partition starts feeding
        the Cg/Ca/Cb gauges on every rebalance.
        """
        self.telemetry = telemetry
        if telemetry.metrics is not self.metrics:
            self.metrics = telemetry.metrics
            self.verifier.metrics = telemetry.metrics
        if hasattr(self.discovery, "metrics"):
            self.discovery.metrics = self.metrics
        self.verifier.telemetry = telemetry
        self.reservation_system.telemetry = telemetry
        self.compute_rm.gara.telemetry = telemetry
        if self.nrm is not None:
            self.nrm.telemetry = telemetry
        if self.coordinator is not None:
            for domain_nrm in self.coordinator._nrms.values():  # noqa: SLF001
                domain_nrm.telemetry = telemetry
        self.partition.observer = telemetry.capacity.on_rebalance
        telemetry.capacity.prime(self.partition)

    def _span(self, name: str, **attributes: object
              ) -> "ContextManager[object]":
        """A broker-component span, or a no-op when telemetry is off."""
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name, component="aqos-broker",
                                          **attributes)

    def _pool_headroom(self) -> "Dict[str, float]":
        """Per-pool capacity context for decision records.

        Only **non-flushing** partition reads: flushing a deferred
        batch rebalance from inside an emit point would change the
        journal sequence relative to provenance-off runs.
        """
        eff_g, eff_a, eff_b = self.partition.effective_sizes()
        committed = self.partition.committed_total()
        return {"eff_g": eff_g, "eff_a": eff_a, "eff_b": eff_b,
                "committed": committed,
                "cg_headroom": self.partition.cg - committed}

    @staticmethod
    def _offer_candidates(negotiation: Negotiation
                          ) -> "List[Dict[str, object]]":
        """The negotiated offers as decision-record candidate dicts."""
        return [{"point": point_payload(offer.point),
                 "revenue_rate": offer.price_rate,
                 "note": offer.note}
                for offer in negotiation.offers]

    def _decide(self, action: str, outcome: str, **context: object) -> None:
        """Emit one decision record when provenance is enabled.

        The single guarded funnel for every broker/scenario verdict
        (QLNT116).  Head-room is attached here so emit sites stay
        one-liners; anything expensive to build (candidate lists,
        pricing calls) must itself be gated on
        ``self.decisions is not None`` at the call site.
        """
        if self.decisions is None:
            return
        self.decisions.decide(action, outcome,
                              headroom=self._pool_headroom(),
                              **context)  # type: ignore[arg-type]

    def _journal_sla(self, sla: ServiceSLA) -> None:
        """Append an ``sla_saved`` record (document + lifecycle status).

        Every durable change to an SLA document funnels through here,
        so the journal always holds the latest full Table 4 XML for
        each SLA — recovery rebuilds the repository from these alone.
        """
        if self.journal is None:
            return
        # Most saves are status-only transitions around an unchanged
        # document; re-render the XML only when the mutable document
        # fields (agreed/delivered point, price) actually moved.  The
        # status rides alongside the XML in its own payload field, so
        # a cached document is still exact.  The cache keys on copies
        # of the point dicts (C-speed dict equality against the live
        # ones), not on the SLA object, which may be rebound wholesale
        # during renegotiation.
        cached = self._journal_xml_cache.get(sla.sla_id)
        if (cached is not None and cached[0] == sla.agreed_point
                and cached[1] == sla.delivered_point
                and cached[2] == sla.price_rate):  # qlint: disable=QLNT102 -- cache fingerprint: any change, however small, must re-render
            xml = cached[3]
        else:
            # Render from a point-in-time snapshot, deferred to encode
            # time: an in-memory store never pays for the XML on the
            # admission path, and a durable store resolves it inside
            # the append.  The copy pins the two mutable point dicts;
            # every other field is immutable or rebound wholesale.
            # (A raw ``__dict__`` copy, not ``copy.copy``: the generic
            # path goes through ``__reduce_ex__`` and is several times
            # slower on this hot path.)
            snapshot = ServiceSLA.__new__(ServiceSLA)
            state = dict(sla.__dict__)
            state["agreed_point"] = dict(sla.agreed_point)
            state["delivered_point"] = dict(sla.delivered_point)
            snapshot.__dict__ = state
            xml = DeferredValue(lambda: render_service_sla(snapshot))
            self._journal_xml_cache[sla.sla_id] = (
                snapshot.agreed_point, snapshot.delivered_point,
                sla.price_rate, xml)
        self.journal.append(SLA_SAVED, sla_id=sla.sla_id,
                            status=sla.status.value, xml=xml)

    # ==================================================================
    # Establishment phase (Figure 2, steps 1-2)
    # ==================================================================

    def discover(self, request: ServiceRequest) -> List[ServiceRecord]:
        """Query UDDIe for services matching the request's QoS.

        Discovery goes through the pluggable :attr:`discovery`
        transport; a degraded (stale-cache) answer is accepted but
        counted and traced, so operators can see the broker running on
        old registry data.
        """
        query = ServiceQuery(name_pattern=request.service_name,
                             qos=request.specification)
        result = self.discovery.find(query)
        matches = result.records
        if result.degraded:
            self.metrics.counter("repro_discovery_degraded_total").inc()
            self.record(f"degraded discovery for {request.client!r}: "
                        f"serving {len(matches)} stale record(s) "
                        f"(age {result.age:g})")
        self.record(f"discovery for {request.client!r}: "
                    f"{len(matches)} matching service(s) for "
                    f"{request.service_name!r}")
        return matches

    def _resources_available(self, request: ServiceRequest,
                             demand: ResourceVector) -> bool:
        """The Figure 2 Query{Computation,Network}Resources step."""
        compute_free = self.compute_rm.available(request.start, request.end)
        compute_demand = ResourceVector(cpu=demand.cpu,
                                        memory_mb=demand.memory_mb,
                                        disk_mb=demand.disk_mb)
        if not compute_demand.fits_within(compute_free):
            return False
        if request.network is not None:
            booker = self.coordinator or self.nrm
            if booker is None:
                return False
            try:
                topology = (self.nrm._topology if self.nrm is not None  # noqa: SLF001
                            else self.coordinator._topology)  # noqa: SLF001
                source = topology.site_by_address(
                    request.network.source_ip).name
                destination = topology.site_by_address(
                    request.network.dest_ip).name
            except NetworkError:
                return False
            if not booker.can_allocate(source, destination,
                                       request.network.bandwidth_mbps,
                                       request.start, request.end):
                return False
        return True

    def make_offers(self, request: ServiceRequest) -> List[Offer]:
        """Build SLA offers for an admissible request.

        For a guaranteed request there is a single offer at the exact
        specification. A controlled-load request gets the best
        admissible point plus the floor as a cheaper alternative, with
        the floor also recorded in the SLA's adaptation options.
        """
        spec = request.specification
        best = spec.best_point()
        offers = [Offer(point=best,
                        price_rate=self.pricing.point_rate(
                            best, request.service_class),
                        adaptation=request.adaptation,
                        note="best quality")]
        if request.service_class.adjustable:
            floor = spec.worst_point()
            if floor != best:
                from dataclasses import replace as _replace
                alternatives = list(request.adaptation.alternative_points)
                if floor not in alternatives:
                    alternatives.append(floor)
                adaptation = _replace(
                    request.adaptation,
                    alternative_points=tuple(alternatives))
                offers[0] = Offer(point=best,
                                  price_rate=offers[0].price_rate,
                                  adaptation=adaptation,
                                  note="best quality")
                offers.append(Offer(
                    point=floor,
                    price_rate=self.pricing.point_rate(
                        floor, request.service_class),
                    adaptation=adaptation,
                    note="minimum acceptable quality"))
        return offers

    def negotiate(self, request: ServiceRequest) -> "tuple[Negotiation, str]":
        """Run discovery + resource query and propose offers.

        Returns the negotiation (possibly already FAILED) and a reason
        string for failures.
        """
        with self._span("negotiate", client=request.client,
                        service=request.service_name):
            return self._negotiate(request)

    def _negotiate(self, request: ServiceRequest
                   ) -> "tuple[Negotiation, str]":
        self.stats.requests += 1
        negotiation = Negotiation(request)
        if request.service_class.has_sla:
            matches = self.discover(request)
            if not matches:
                negotiation.propose([])
                self.stats.rejected_discovery += 1
                self._decide("admission", "reject", subject=request.client,
                             constraint="discovery",
                             reason="no matching service in UDDIe")
                return negotiation, "no matching service in UDDIe"
        demand = QoSSpecification.point_demand(
            request.specification.best_point())
        floor_demand = QoSSpecification.point_demand(
            request.specification.worst_point())
        committed = (floor_demand.cpu
                     if request.service_class.adjustable else demand.cpu)
        fits = (self._resources_available(request, floor_demand)
                and (committed <= 0
                     or self.partition.available_guaranteed_resource(
                         committed)))
        if not fits:
            # Scenario 1: try to free capacity before refusing.
            self.record(f"insufficient resources for {request.client!r}; "
                        f"invoking Scenario 1 adaptation")
            self.scenarios.free_capacity_for(floor_demand.cpu, committed)
            fits = (self._resources_available(request, floor_demand)
                    and (committed <= 0
                         or self.partition.available_guaranteed_resource(
                             committed)))
        if not fits:
            negotiation.propose([])
            self.stats.rejected_capacity += 1
            if self.decisions is not None:
                self._decide("admission", "reject", subject=request.client,
                             constraint="capacity",
                             reason=f"insufficient resources "
                                    f"(needs cpu={floor_demand.cpu:g}, "
                                    f"committed={committed:g} guaranteed)")
            return negotiation, "insufficient resources"
        negotiation.propose(self.make_offers(request))
        if negotiation.offers:
            self.record(f"proposed {len(negotiation.offers)} offer(s) to "
                        f"{request.client!r} (best at rate "
                        f"{negotiation.offers[0].price_rate:g})")
            return negotiation, ""
        self.stats.rejected_negotiation += 1
        if self.decisions is not None:
            budget = ("unconstrained" if request.budget_rate is None
                      else f"{request.budget_rate:g}")
            self._decide("admission", "reject", subject=request.client,
                         constraint="negotiation",
                         reason="no offer within the client's budget "
                                f"(budget_rate={budget})")
        return negotiation, "no offer within the client's budget"

    def establish(self, negotiation: Negotiation) -> ServiceOutcome:
        """Turn an accepted negotiation into a live session."""
        with self._span("establish", client=negotiation.request.client):
            return self._establish(negotiation)

    def _establish(self, negotiation: Negotiation) -> ServiceOutcome:
        request = negotiation.request
        sla = negotiation.build_sla(self.repository.next_id())
        session = QoSSession(session_id=sla.sla_id)
        session.perform(QoSFunction.SPECIFICATION, self.sim.now)
        session.perform(QoSFunction.MAPPING, self.sim.now)
        session.perform(QoSFunction.NEGOTIATION, self.sim.now)

        # Reservation (temporary, then confirmed — Section 3.1).
        session.perform(QoSFunction.RESERVATION, self.sim.now)
        try:
            composite = self.reservation_system.reserve(sla)
        except (CapacityError, NetworkError):
            self.scenarios.free_capacity_for(
                sla.agreed_demand().cpu, 0.0)
            try:
                composite = self.reservation_system.reserve(sla)
            except (CapacityError, NetworkError) as error:
                self.stats.rejected_capacity += 1
                session.enter_clearing("violation")
                session.close()
                if self.decisions is not None:
                    self._decide("admission", "reject",
                                 subject=request.client,
                                 constraint="reservation",
                                 reason=f"reservation failed: {error}",
                                 candidates=self._offer_candidates(
                                     negotiation))
                return ServiceOutcome(request=request, accepted=False,
                                      reason=f"reservation failed: {error}",
                                      negotiation=negotiation,
                                      session=session)

        self.repository.save(sla)
        sla.establish()
        self._journal_sla(sla)
        self.reservation_system.confirm(composite)
        resources = self.allocation.open_session(sla.sla_id, session)
        resources.reservation = composite
        self.stats.accepted += 1
        self.record(f"SLA {sla.sla_id} established for {sla.client!r} "
                    f"({sla.service_class.value}, rate {sla.price_rate:g})")
        if self.decisions is not None:
            self._decide("admission", "accept",
                         subject=self._user_key(sla.sla_id),
                         sla_id=sla.sla_id,
                         reason=f"offer accepted by {sla.client!r} "
                                f"({sla.service_class.value})",
                         candidates=self._offer_candidates(negotiation),
                         chosen={"point": point_payload(sla.agreed_point),
                                 "revenue_rate": sla.price_rate})

        # Allocation + invocation happen at the window start: an
        # advance reservation (start in the future) holds its GARA
        # booking now but consumes live capacity only when it begins.
        if sla.start > self.sim.now + 1e-9:
            self.record(f"SLA {sla.sla_id}: advance reservation — "
                        f"activation scheduled at t={sla.start:g}")
            self.sim.schedule_at(
                sla.start, lambda: self._activate_session(sla.sla_id),
                label=f"sla:{sla.sla_id}:activate")
        else:
            self._activate_session(sla.sla_id)
        self.sim.schedule_at(sla.end, lambda: self._on_window_end(sla.sla_id),
                             label=f"sla:{sla.sla_id}:window-end")
        return ServiceOutcome(request=request, accepted=True,
                              negotiation=negotiation, sla=sla,
                              session=session)

    def _activate_session(self, sla_id: int) -> None:
        """Window start: partition admission, launch, monitoring.

        For an advance reservation, commitments may have filled up in
        the meantime; Scenario 1 gets one shot at freeing them, and an
        un-admittable session is terminated with a violation (the
        provider broke the agreed window).
        """
        with self._span("activate-session", sla_id=sla_id):
            self._activate_session_impl(sla_id)

    def _activate_session_impl(self, sla_id: int) -> None:
        sla = self.repository.get(sla_id)
        if sla.status is not SlaStatus.ESTABLISHED:
            return
        session = self.allocation.get(sla_id).session
        resources = self.allocation.get(sla_id)
        composite = resources.reservation
        committed = (sla.floor_demand().cpu
                     if sla.service_class.adjustable
                     else sla.agreed_demand().cpu)
        user_key = self._user_key(sla_id)
        if committed > 0:
            if not self.partition.available_guaranteed_resource(committed):
                self.scenarios.free_capacity_for(0.0, committed)
            try:
                self.engine.admit_guaranteed(user_key, committed)
            except AdmissionError as error:
                self.record(f"SLA {sla_id}: activation failed "
                            f"({error}); terminating")
                if self.decisions is not None:
                    self._decide("activation", "reject", subject=user_key,
                                 sla_id=sla_id, constraint="admission",
                                 reason=f"activation failed: {error}")
                self.terminate_session(sla_id, cause="violation",
                                       note="activation failed")
                return

        session.enter_active()
        session.perform(QoSFunction.ALLOCATION, self.sim.now)
        if committed > 0:
            self.engine.allocate_guaranteed_resource(
                user_key, sla.delivered_demand().cpu)
        if composite is not None and composite.compute_handle is not None:
            # A job that survived a broker crash is adopted, not
            # relaunched — the reservation binding identifies it.
            surviving = self.compute_rm.running_job_for(
                composite.compute_handle)
            if surviving is not None:
                resources.job = surviving
            else:
                try:
                    resources.job = self.compute_rm.launch(
                        sla.service_name, composite.compute_handle,
                        duration=sla.end - self.sim.now,
                        dsrt_fraction=0.8)
                except CapacityError:
                    # The CPU scheduler is saturated even though the
                    # slot table admitted the booking (contracts only
                    # approximate bookings: integer nodes, clamped
                    # growth). The reservation is what was sold — run
                    # the job without a DSRT contract rather than
                    # breaking an established SLA.
                    resources.job = self.compute_rm.launch(
                        sla.service_name, composite.compute_handle,
                        duration=sla.end - self.sim.now)
                    self.record(f"SLA {sla_id}: DSRT saturated; job "
                                f"launched without a CPU contract")
        sla.activate()
        self._journal_sla(sla)

        # Monitoring wiring.
        session.perform(QoSFunction.MONITORING, self.sim.now)
        compute_sensor = _SessionComputeSensor(
            f"session/{sla_id}/compute", self.sim, self, sla_id)
        self.verifier.attach_sensor(sla_id, compute_sensor)
        resources.sensor_names.append(compute_sensor.name)
        if composite is not None and composite.network_booking is not None:
            network_sensor = _SessionNetworkSensor(
                f"session/{sla_id}/network", self.sim, self, sla_id)
            self.verifier.attach_sensor(sla_id, network_sensor)
            resources.sensor_names.append(network_sensor.name)
        self.ledger.session_started(sla_id, self.sim.now, sla.price_rate)
        if self.slo is not None:
            self.slo.session_started(sla_id, sla.service_class.value,
                                     self.sim.now)
        # Counted up/down on activate/close rather than recounted from
        # the repository: the recount is O(n log n) and sits on the
        # admission hot path. Recovery re-seeds the gauge after replay.
        self.metrics.gauge("repro_sla_active_sessions").add(1.0)

    def add_peer(self, peer: "AQoSBroker") -> None:
        """Register a neighboring AQoS broker (Figure 1 shows the
        AQoS-to-AQoS interconnections between domains). Requests this
        broker cannot serve are forwarded to peers in registration
        order."""
        if peer is self:
            raise SLAError("a broker cannot peer with itself")
        if peer not in self._peers:
            self._peers.append(peer)

    def request_service(self, request: ServiceRequest, *,
                        _forwarded: bool = False) -> ServiceOutcome:
        """One-call client flow: negotiate, auto-accept the first offer,
        establish. Best-effort requests route to
        :meth:`request_best_effort` semantics and report granted/not.

        A request this broker must refuse is offered to each peer AQoS
        (once — forwarded requests are never re-forwarded, so a ring of
        brokers cannot loop).
        """
        if request.service_class is ServiceClass.BEST_EFFORT:
            demand = QoSSpecification.point_demand(
                request.specification.best_point())
            granted = self.request_best_effort(
                request.client, demand.cpu,
                duration=request.duration)
            if not granted and not _forwarded:
                outcome = self._forward(request)
                if outcome is not None:
                    return outcome
            return ServiceOutcome(request=request, accepted=granted,
                                  reason="" if granted
                                  else "insufficient best-effort capacity")
        negotiation, reason = self.negotiate(request)
        if negotiation.state.value != "offered":
            if not _forwarded:
                outcome = self._forward(request)
                if outcome is not None:
                    return outcome
            return ServiceOutcome(request=request, accepted=False,
                                  reason=reason, negotiation=negotiation)
        negotiation.accept()
        outcome = self.establish(negotiation)
        if not outcome.accepted and not _forwarded:
            forwarded = self._forward(request)
            if forwarded is not None:
                return forwarded
        return outcome

    def request_services(
            self, requests: "Sequence[ServiceRequest]",
    ) -> "List[ServiceOutcome]":
        """Admit a batch of requests at the current sim tick.

        Decision-identical to calling :meth:`request_service` on each
        request in order — same accepts, same rejects, same holdings —
        but the per-request overheads are amortized across the batch:

        * the capacity partition runs **one** water-fill for the whole
          batch instead of one per admission
          (:meth:`~repro.core.capacity.CapacityPartition.defer_rebalances`);
          any mid-batch read of rebalance-derived state (a rejection
          probing idle capacity, a Scenario-1 squeeze, a best-effort
          admission) flushes the pending pass first, which is exactly
          the fall-back to per-request semantics;
        * the journal buffers every record the batch writes and
          group-commits them in one bulk append
          (:meth:`~repro.recovery.journal.Journal.begin_group`) — LSNs
          are identical to sequential admission, only the store-level
          write is batched.
        """
        journal = self.journal
        partition = self.partition
        outcomes: "List[ServiceOutcome]" = []
        if journal is not None:
            journal.begin_group()
        try:
            partition.defer_rebalances()
            try:
                # The batch-level span parents every per-request tree,
                # so one batched episode renders as one connected
                # trace instead of len(requests) disjoint roots.
                with self._span("batch_admission",
                                batch_size=len(requests)):
                    for request in requests:
                        outcomes.append(self.request_service(request))
            finally:
                # Settle the batch's single water-fill before the
                # group commits, so its journal record lands inside
                # the group.
                partition.resume_rebalances()
        finally:
            if journal is not None:
                journal.commit_group()
        return outcomes

    def _forward(self, request: ServiceRequest) -> Optional[ServiceOutcome]:
        """Try each peer; returns the first accepting outcome.

        Requests with a network demand are only forwardable when the
        peer can resolve the same endpoints (they share the topology in
        the Figure 1 deployment), so the peer's own admission decides.
        """
        for peer in self._peers:
            self.record(f"forwarding {request.client!r}'s request to a "
                        f"neighboring AQoS")
            outcome = peer.request_service(request, _forwarded=True)
            if outcome.accepted:
                self.record(f"request by {request.client!r} accepted by "
                            f"the neighboring AQoS")
                return outcome
        return None

    # ==================================================================
    # Best effort
    # ==================================================================

    def request_best_effort(self, user: str, cpu: float, *,
                            duration: Optional[float] = None,
                            allow_partial: bool = False) -> bool:
        """Serve a best-effort request from ``Cb`` plus idle capacity.

        Strict by default (the paper's algorithm refuses rather than
        partially serves); with ``allow_partial`` whatever fits is
        granted.
        """
        self.stats.requests += 1
        self.stats.best_effort_requests += 1
        if cpu <= 0:
            self._decide("best_effort", "reject", subject=user,
                         constraint="demand",
                         reason="non-positive demand")
            return False
        if not allow_partial and not self.engine.can_allocate_best_effort(cpu):
            self.record(f"best-effort request by {user!r} for {cpu:g} "
                        f"node(s) refused (idle="
                        f"{self.partition.idle_capacity():g})")
            if self.decisions is not None:
                self._decide("best_effort", "reject", subject=user,
                             constraint="capacity",
                             reason=f"requested {cpu:g} node(s), idle="
                                    f"{self.partition.idle_capacity():g}")
            return False
        self._be_counter += 1
        key = f"be-{user}-{self._be_counter}"
        decision = self.engine.allocate_best_effort_resource(key, cpu)
        if decision.granted <= 0:
            self.engine.release_best_effort(key)
            self.record(f"best-effort request by {user!r} for {cpu:g} "
                        f"node(s): nothing available")
            if self.decisions is not None:
                self._decide("best_effort", "reject", subject=user,
                             constraint="capacity",
                             reason=f"requested {cpu:g} node(s): "
                                    f"nothing available")
            return False
        if self.journal is not None:
            self.journal.append(BEST_EFFORT_SET, user=key, demand=cpu)
        if duration is not None:
            def _release() -> None:
                self.engine.release_best_effort(key)
                if self.journal is not None:
                    self.journal.append(BEST_EFFORT_SET, user=key,
                                        demand=0.0)
            self.sim.schedule(duration, _release,
                              label=f"best-effort:{key}:release")
        self.stats.best_effort_granted += 1
        self.record(f"best-effort request by {user!r}: granted "
                    f"{decision.granted:g} of {cpu:g} node(s)")
        if self.decisions is not None:
            self._decide("best_effort", "grant", subject=user,
                         chosen={"granted": decision.granted,
                                 "requested": cpu})
        return True

    # ==================================================================
    # Active phase
    # ==================================================================

    def _user_key(self, sla_id: int) -> str:
        return f"sla-{sla_id}"

    def partition_holding(self, sla_id: int) -> Optional[GuaranteedHolding]:
        """The partition holding behind an SLA (``None`` if released)."""
        try:
            return self.partition.guaranteed_holding(self._user_key(sla_id))
        except AdmissionError:
            return None

    def delivers_point(self, service_key: str,
                       point: OperatingPoint) -> bool:
        """Whether the session behind ``service_key`` currently
        delivers ``point`` (scenario-statistics helper)."""
        sla_id = int(service_key.split("-", 1)[1])
        sla = self.repository.get(sla_id)
        return sla.delivered_point == dict(point)

    def apply_point(self, sla: ServiceSLA, point: OperatingPoint) -> None:
        """Move a session's delivered operating point everywhere at once:
        SLA document, partition demand, compute reservation, network
        flow, and the accounting rate."""
        if dict(point) == sla.delivered_point:
            return
        sla.set_delivered_point(point)
        demand = sla.delivered_demand()
        user_key = self._user_key(sla.sla_id)
        if self.partition_holding(sla.sla_id) is not None:
            self.engine.allocate_guaranteed_resource(user_key, demand.cpu)
        if self.allocation.has(sla.sla_id):
            resources = self.allocation.get(sla.sla_id)
            composite = resources.reservation
            if composite is not None and composite.compute_handle is not None:
                self.reservation_system.modify_compute(composite, demand,
                                                       force=True)
                if resources.job is not None:
                    self.compute_rm.resize_job_contract(resources.job,
                                                        demand.cpu)
            if composite is not None and composite.network_booking is not None:
                self._resize_network(composite, point)
        new_rate = self.pricing.point_rate(point, sla.service_class)
        self.ledger.rate_changed(sla.sla_id, self.sim.now, new_rate)
        self._journal_sla(sla)
        self.record(f"SLA {sla.sla_id}: delivered point moved "
                    f"(rate now {new_rate:g})")

    def try_apply_point(self, sla: ServiceSLA,
                        point: OperatingPoint) -> bool:
        """Apply a point only if capacity allows; ``False`` otherwise."""
        demand = QoSSpecification.point_demand(point)
        holding = self.partition_holding(sla.sla_id)
        current_cpu = holding.served if holding is not None else 0.0
        extra = demand.cpu - current_cpu
        if extra > self.partition.idle_capacity() + 1e-9:
            return False
        try:
            self.apply_point(sla, point)
        except (CapacityError, SLAError):
            return False
        return True

    def _resize_network(self, composite: CompositeReservation,
                        point: OperatingPoint) -> None:
        bandwidth = point.get(Dimension.BANDWIDTH_MBPS)
        if bandwidth is None:
            return
        booking = composite.network_booking
        try:
            if isinstance(booking, EndToEndAllocation):
                for nrm, flow in booking.segments:
                    nrm.resize(flow, bandwidth)
                booking.bandwidth_mbps = bandwidth
            elif booking is not None:
                assert self.nrm is not None
                self.nrm.resize(booking, bandwidth)
        except (CapacityError, NetworkError):
            self.record(f"SLA {composite.sla_id}: network resize to "
                        f"{bandwidth:g} Mbps refused; keeping current flow")

    # ------------------------------------------------------------------
    # The optimizer (Section 5.3 / 5.5)
    # ------------------------------------------------------------------

    def _optimizer_budget(self, adjustable: List[ServiceSLA]
                          ) -> ResourceVector:
        """Capacity the controlled-load set may collectively use."""
        eff_g, eff_a, _eff_b = self.partition.effective_sizes()
        tier1 = sum(h.entitled for h in self.partition.guaranteed_holdings())
        headroom = max(0.0, eff_g + eff_a - tier1)
        floors = sum(sla.floor_demand().cpu for sla in adjustable)
        now = self.sim.now
        free = self.compute_rm.available_at(now)
        held_memory = sum(sla.delivered_demand().memory_mb
                          for sla in adjustable)
        held_disk = sum(sla.delivered_demand().disk_mb for sla in adjustable)
        return ResourceVector(
            cpu=floors + headroom,
            memory_mb=free.memory_mb + held_memory,
            disk_mb=free.disk_mb + held_disk,
            bandwidth_mbps=float("inf"))

    def run_optimizer(self) -> Optional[OptimizationResult]:
        """One optimization pass over the controlled-load sessions.

        Candidate points come from each SLA's acceptable levels; the
        greedy heuristic maximizes revenue within the current capacity
        budget; winning points are applied (network legs fall back
        gracefully if a link refuses the resize).
        """
        with self._span("optimizer-pass"):
            return self._run_optimizer()

    def _run_optimizer(self) -> Optional[OptimizationResult]:
        adjustable = [sla for sla in self.repository.active()
                      if sla.service_class.adjustable]
        if not adjustable:
            return None
        self.stats.optimizer_runs += 1
        services: Dict[str, List[QualityCandidate]] = {}
        for sla in adjustable:
            key = self._user_key(sla.sla_id)
            candidates = candidates_for(key, sla.specification,
                                        sla.service_class, self.pricing,
                                        levels=self.optimizer_levels)
            # The optimizer moves sessions within [floor, agreed]; going
            # above the agreed point requires an accepted promotion
            # offer (Scenario 2c), never a silent upgrade-and-bill.
            agreed_demand = sla.agreed_demand()
            capped = [candidate for candidate in candidates
                      if candidate.demand.fits_within(agreed_demand)]
            if not any(candidate.point == sla.agreed_point
                       for candidate in capped):
                capped.append(QualityCandidate(
                    service_key=key, level=len(capped),
                    point=dict(sla.agreed_point), demand=agreed_demand,
                    revenue_rate=self.pricing.point_rate(
                        sla.agreed_point, sla.service_class)))
            services[key] = capped
        budget = self._optimizer_budget(adjustable)
        on_decision = None
        if self.decisions is not None:
            def on_decision(outcome: OptimizationResult) -> None:
                self._decide(
                    "optimizer",
                    "solved" if outcome.feasible else "infeasible",
                    subject="controlled-load",
                    constraint="" if outcome.feasible else "capacity",
                    reason=f"{len(adjustable)} session(s), "
                           f"budget cpu={budget.cpu:g}",
                    chosen={"revenue_rate": outcome.revenue})
        result = greedy_optimize(services, budget, on_decision=on_decision)
        if self.decisions is not None:
            for sla in adjustable:
                key = self._user_key(sla.sla_id)
                candidate = result.assignment.get(key)
                self._decide(
                    "optimizer",
                    "assign" if candidate is not None else "skip",
                    subject=key, sla_id=sla.sla_id,
                    candidates=[{"level": option.level,
                                 "point": point_payload(option.point),
                                 "revenue_rate": option.revenue_rate}
                                for option in services[key]],
                    chosen=(None if candidate is None else
                            {"level": candidate.level,
                             "point": point_payload(candidate.point),
                             "revenue_rate": candidate.revenue_rate}))
        for sla in adjustable:
            candidate = result.assignment.get(self._user_key(sla.sla_id))
            if candidate is None:
                continue
            if dict(candidate.point) != sla.delivered_point:
                self.try_apply_point(sla, candidate.point)
        self.record(f"optimizer pass over {len(adjustable)} session(s): "
                    f"revenue rate {result.revenue:g}")
        for sla in adjustable:
            if self.allocation.has(sla.sla_id):
                self.allocation.get(sla.sla_id).session.perform(
                    QoSFunction.ADAPTATION, self.sim.now)
        return result

    def _schedule_optimizer(self, interval: float) -> None:
        def tick() -> None:
            self.run_optimizer()
            self.sim.schedule(interval, tick, label="broker:optimizer")
        self.sim.schedule(interval, tick, label="broker:optimizer")

    # ------------------------------------------------------------------
    # Re-negotiation (Figure 3's Active-phase function; the paper's
    # response (b): "re-negotiating QoS as per the SLA")
    # ------------------------------------------------------------------

    def renegotiate_session(self, sla_id: int,
                            new_specification: QoSSpecification, *,
                            budget_rate: Optional[float] = None
                            ) -> "tuple[bool, str]":
        """Re-negotiate a live session's QoS mid-flight.

        The client proposes a replacement specification (grow or
        shrink). Admission is checked with the session's *own* held
        capacity released first — a shrink always fits; a grow needs
        only the delta. On success the SLA document is updated in
        place (same id, same session), capacity and reservations are
        resized atomically, and the price rate moves to the new agreed
        point. On failure nothing changes.

        Returns:
            ``(True, "")`` on success, ``(False, reason)`` otherwise.
        """
        try:
            sla = self.repository.get(sla_id)
        except SLAError as error:
            self._decide("renegotiation", "reject", sla_id=sla_id,
                         constraint="lookup", reason=str(error))
            return False, str(error)
        if sla.status is not SlaStatus.ACTIVE:
            if self.decisions is not None:
                self._decide("renegotiation", "reject", sla_id=sla_id,
                             constraint="lifecycle",
                             reason=f"SLA {sla_id} is {sla.status.value}, "
                                    f"not active")
            return False, f"SLA {sla_id} is {sla.status.value}, not active"
        if self.allocation.has(sla_id):
            self.allocation.get(sla_id).session.perform(
                QoSFunction.RENEGOTIATION, self.sim.now)

        new_best = new_specification.best_point()
        new_floor = new_specification.worst_point()
        new_committed = (QoSSpecification.point_demand(new_floor).cpu
                         if sla.service_class.adjustable
                         else QoSSpecification.point_demand(new_best).cpu)
        new_rate = self.pricing.point_rate(new_best, sla.service_class)
        if budget_rate is not None and new_rate > budget_rate:
            if self.decisions is not None:
                self._decide("renegotiation", "reject", sla_id=sla_id,
                             constraint="negotiation",
                             reason=f"offer rate {new_rate:g} exceeds "
                                    f"budget {budget_rate:g}")
            return False, (f"offer rate {new_rate:g} exceeds budget "
                           f"{budget_rate:g}")

        # Admission with the session's own holdings netted out.
        holding = self.partition_holding(sla_id)
        old_committed = holding.committed if holding is not None else 0.0
        committed_after = (self.partition.committed_total()
                           - old_committed + new_committed)
        if committed_after > self.partition.cg + 1e-9:
            if self.decisions is not None:
                self._decide("renegotiation", "reject", sla_id=sla_id,
                             constraint="capacity",
                             reason=f"commitments {committed_after:g} "
                                    f"would exceed "
                                    f"Cg={self.partition.cg:g}")
            return False, (f"commitments {committed_after:g} would exceed "
                           f"Cg={self.partition.cg:g}")
        new_demand = QoSSpecification.point_demand(new_best)
        now = self.sim.now
        free = self.compute_rm.available_at(now)
        old_demand = sla.delivered_demand()
        compute_delta = ResourceVector(
            cpu=max(0.0, new_demand.cpu - old_demand.cpu),
            memory_mb=max(0.0, new_demand.memory_mb - old_demand.memory_mb),
            disk_mb=max(0.0, new_demand.disk_mb - old_demand.disk_mb))
        if not compute_delta.fits_within(free):
            # Scenario 1 may still make room.
            self.scenarios.free_capacity_for(compute_delta.cpu,
                                             max(0.0, new_committed
                                                 - old_committed))
            free = self.compute_rm.available_at(now)
            if not compute_delta.fits_within(free):
                self._decide("renegotiation", "reject", sla_id=sla_id,
                             constraint="capacity",
                             reason="insufficient resources for the "
                                    "new QoS")
                return False, "insufficient resources for the new QoS"

        # Apply atomically: partition commitment, reservations, document.
        user_key = self._user_key(sla_id)
        if holding is not None:
            self.engine.release_guaranteed(user_key)
        if new_committed > 0:
            self.engine.admit_guaranteed(user_key, new_committed)
        sla.specification = new_specification
        sla.agreed_point = dict(new_best)
        sla.delivered_point = dict(new_best)
        sla.price_rate = new_rate
        if new_committed > 0:
            self.engine.allocate_guaranteed_resource(user_key,
                                                     new_demand.cpu)
        if self.allocation.has(sla_id):
            composite = self.allocation.get(sla_id).reservation
            if composite is not None and composite.compute_handle is not None:
                self.reservation_system.modify_compute(composite,
                                                       new_demand,
                                                       force=True)
            if composite is not None and composite.network_booking is not None:
                self._resize_network(composite, new_best)
        self.ledger.rate_changed(sla_id, self.sim.now, new_rate)
        self._journal_sla(sla)
        self.record(f"SLA {sla_id} re-negotiated: new agreed point at "
                    f"rate {new_rate:g}")
        if self.decisions is not None:
            self._decide("renegotiation", "accept", sla_id=sla_id,
                         subject=user_key,
                         chosen={"point": point_payload(new_best),
                                 "revenue_rate": new_rate})
        return True, ""

    # ------------------------------------------------------------------
    # Promotions (Scenario 2c)
    # ------------------------------------------------------------------

    def offer_promotion(self, sla: ServiceSLA,
                        point: OperatingPoint) -> bool:
        """Offer a QoS upgrade; on acceptance the SLA's agreed terms
        are re-negotiated upward and the new point applied."""
        accepted = bool(self.promotion_policy(sla))
        applied = False
        if accepted:
            demand = QoSSpecification.point_demand(point)
            holding = self.partition_holding(sla.sla_id)
            current = holding.served if holding is not None else 0.0
            if demand.cpu - current <= self.partition.idle_capacity() + 1e-9:
                new_rate = self.pricing.point_rate(point, sla.service_class)
                previous_agreed = dict(sla.agreed_point)
                sla.renegotiate_point(dict(point), new_rate)
                try:
                    self.apply_point(sla, dict(point))
                except (CapacityError, SLAError):
                    sla.renegotiate_point(previous_agreed,
                                          self.pricing.point_rate(
                                              previous_agreed,
                                              sla.service_class))
                else:
                    applied = True
                    self.ledger.rate_changed(sla.sla_id, self.sim.now,
                                             new_rate)
        self.ledger.promotion_offered(sla.sla_id, accepted=applied)
        self.record(f"promotion offer to SLA {sla.sla_id}: "
                    f"{'accepted' if applied else 'declined/refused'}")
        if self.decisions is not None:
            self._decide("promotion",
                         "accept" if applied else "decline",
                         sla_id=sla.sla_id,
                         subject=self._user_key(sla.sla_id),
                         constraint="" if applied else "client/capacity",
                         chosen=({"point": point_payload(point)}
                                 if applied else None))
        return applied

    # ------------------------------------------------------------------
    # Degradation / monitoring hooks
    # ------------------------------------------------------------------

    def conformance_test(self, sla_id: int):
        """Explicit client-requested SLA conformance test."""
        if self.allocation.has(sla_id):
            self.allocation.get(sla_id).session.perform(
                QoSFunction.MONITORING, self.sim.now)
        return self.verifier.conformance_test(sla_id)

    def _on_degradation_notice(self, notice: DegradationNotice) -> None:
        if notice.sla_id in self._closing:
            return
        with self._span("handle-degradation", sla_id=notice.sla_id,
                        source=notice.source):
            if self.allocation.has(notice.sla_id):
                self.allocation.get(notice.sla_id).session.perform(
                    QoSFunction.ADAPTATION, self.sim.now)
            self.scenarios.on_degradation(notice)

    def penalize(self, sla: ServiceSLA, notice: DegradationNotice, *,
                 duration: float = 1.0) -> None:
        """Book an SLA-violation penalty from a degradation notice.

        ``duration`` is the violated span the notice covers — pass the
        SLA-Verif poll interval when penalties come from periodic
        conformance tests, so refunds accrue over the whole degraded
        period rather than once per notice.
        """
        if notice.report is not None:
            amount = violation_penalty(
                sla, notice.report, duration=duration,
                penalty_rate=self.pricing.violation_penalty_rate)
        else:
            amount = sla.price_rate * 0.1 * duration
        self.ledger.add_penalty(sla.sla_id, self.sim.now, amount,
                                reason=notice.detail or "degradation")

    def _on_capacity_change(self, delta_nodes: int) -> None:
        with self._span("capacity-change", delta_nodes=delta_nodes):
            report = self.engine.on_capacity_change(float(delta_nodes))
            if delta_nodes < 0 and not report.guarantees_honored:
                for user, shortfall in report.shortfalls.items():
                    if not user.startswith("sla-"):
                        continue
                    sla_id = int(user.split("-", 1)[1])
                    self.hub.publish(DegradationNotice(
                        sla_id=sla_id, time=self.sim.now, source="compute",
                        detail=f"capacity failure left a shortfall of "
                               f"{shortfall:g} node(s)"))

    # ------------------------------------------------------------------
    # Clearing phase
    # ------------------------------------------------------------------

    def _on_job_end(self, job: Job) -> None:
        if job.state is not JobState.COMPLETED:
            return  # kills are driven by terminate_session
        for resources in self.allocation.open_sessions():
            if resources.job is not None and resources.job.job_id == job.job_id:
                self.complete_session(resources.sla_id)
                return

    def _on_window_end(self, sla_id: int) -> None:
        try:
            sla = self.repository.get(sla_id)
        except SLAError:
            return
        if sla.status.is_live and sla_id not in self._closing:
            self._close_session(sla_id, cause="expiration")
            self.stats.expired += 1
            # Expiry releases resources just like completion, so the
            # Scenario 2 upgrade/promotion pass runs here too.
            self.scenarios.on_service_termination()

    def complete_session(self, sla_id: int) -> None:
        """Normal completion → Clearing → Scenario 2."""
        self._close_session(sla_id, cause="completion")
        self.stats.completed += 1
        self.scenarios.on_service_termination()

    def terminate_session(self, sla_id: int, *, cause: str = "violation",
                          note: str = "") -> None:
        """Forced termination (adaptation or major degradation)."""
        self._close_session(sla_id, cause=cause, note=note)
        self.stats.terminated += 1

    def _close_session(self, sla_id: int, *, cause: str,
                       note: str = "") -> None:
        if sla_id in self._closing:
            return
        with self._span("close-session", sla_id=sla_id, cause=cause):
            self._close_session_impl(sla_id, cause=cause, note=note)

    def _close_session_impl(self, sla_id: int, *, cause: str,
                            note: str = "") -> None:
        self._closing.add(sla_id)
        try:
            sla = self.repository.get(sla_id)
            was_active = sla.status is SlaStatus.ACTIVE
            resources = (self.allocation.close_session(sla_id)
                         if self.allocation.has(sla_id) else None)
            if resources is not None:
                session = resources.session
                if session.phase is Phase.ACTIVE:
                    session.perform(QoSFunction.ACCOUNTING, self.sim.now)
                session.enter_clearing(cause)
                session.perform(QoSFunction.TERMINATION, self.sim.now)
                session.perform(QoSFunction.ACCOUNTING, self.sim.now)
                if resources.job is not None and \
                        resources.job.state is JobState.RUNNING:
                    self.compute_rm.kill(resources.job.job_id)
                if resources.reservation is not None:
                    self.reservation_system.cancel(resources.reservation)
                self.verifier.detach_session(sla_id)
                session.close()
            user_key = self._user_key(sla_id)
            if self.partition_holding(sla_id) is not None:
                self.engine.release_guaranteed(user_key)
            if sla.status.is_live:
                if cause == "completion":
                    sla.complete()
                elif cause == "expiration":
                    sla.expire()
                else:
                    sla.terminate()
                self._journal_sla(sla)
            self.ledger.session_ended(sla_id, self.sim.now)
            if self.slo is not None:
                self.slo.session_ended(sla_id, self.sim.now)
            if was_active:
                self.metrics.gauge("repro_sla_active_sessions").add(-1.0)
            suffix = f" ({note})" if note else ""
            self.record(f"SLA {sla_id} closed: {cause}{suffix}")
        finally:
            self._closing.discard(sla_id)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def record(self, message: str) -> None:
        """Write one broker activity-log row (the Figure 6 view)."""
        if self.trace is not None:
            self.trace.record(self.sim.now, "broker", message)

    def snapshot(self) -> Dict[str, float]:
        """Flat metrics snapshot for the experiment harness."""
        data = {f"partition.{k}": v
                for k, v in self.partition.snapshot().items()}
        data.update({
            "requests": float(self.stats.requests),
            "accepted": float(self.stats.accepted),
            "rejected_capacity": float(self.stats.rejected_capacity),
            "best_effort_granted": float(self.stats.best_effort_granted),
            "completed": float(self.stats.completed),
            "terminated": float(self.stats.terminated),
            "gross_revenue": self.ledger.provider_gross(self.sim.now),
            "net_revenue": self.ledger.provider_net(self.sim.now),
            "penalties": self.ledger.total_penalties(),
            "active_sessions": float(len(self.repository.active())),
        })
        return data
