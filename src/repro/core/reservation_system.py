"""The Reservation System (RS) inside the AQoS broker (Section 3.1).

The RS implements the paper's temporary-reservation protocol:

* during discovery, resources are reserved *temporarily*;
* the RS renders the SLA's resource demand as an RSL string and
  submits it to GARA;
* GARA cancels the reservation if no confirmation arrives within the
  deadline; otherwise the RS commits it;
* compute and network resources are co-allocated — a composite
  reservation either books everything (CPU/memory/disk via GARA,
  bandwidth via the NRM or the inter-domain coordinator) or nothing.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import ContextManager, Optional, Union

from ..errors import CapacityError, NetworkError, ReservationError
from ..gara.reservation import ReservationHandle
from ..network.interdomain import EndToEndAllocation, InterDomainCoordinator
from ..network.nrm import FlowAllocation, NetworkResourceManager
from ..qos.vector import ResourceVector
from ..recovery.journal import (
    CANCEL,
    COMPUTE_BOOKED,
    CONFIRM,
    Journal,
    MODIFY,
    NETWORK_BOOKED,
    RESERVE_BEGIN,
    RESERVE_END,
)
from ..resources.compute import ComputeResourceManager
from ..rsl.builder import reservation_rsl
from ..sim.engine import Simulator
from ..sim.trace import TraceRecorder
from ..telemetry import Telemetry
from ..sla.document import NetworkDemand, ServiceSLA


NetworkBooking = Union[FlowAllocation, EndToEndAllocation]


def booking_flow_ids(booking: Optional[NetworkBooking]) -> "list[int]":
    """The NRM flow ids behind a network booking (journal payload)."""
    if booking is None:
        return []
    if isinstance(booking, EndToEndAllocation):
        return [flow.flow_id for _nrm, flow in booking.segments]
    return [booking.flow_id]


@dataclass
class CompositeReservation:
    """A co-allocated compute + network reservation for one SLA."""

    sla_id: int
    compute_handle: Optional[ReservationHandle] = None
    network_booking: Optional[NetworkBooking] = None
    confirmed: bool = False
    cancelled: bool = False


class ReservationSystem:
    """The RS: temporary reserve, confirm-or-cancel, co-allocation.

    Args:
        sim: Simulation engine.
        compute_rm: The compute resource manager (GARA behind it).
        nrm: Optional single-domain NRM for network demands.
        coordinator: Optional inter-domain coordinator; used instead of
            ``nrm`` when the SLA's endpoints span domains.
        trace: Optional activity recorder.
    """

    def __init__(self, sim: Simulator, compute_rm: ComputeResourceManager, *,
                 nrm: Optional[NetworkResourceManager] = None,
                 coordinator: Optional[InterDomainCoordinator] = None,
                 trace: Optional[TraceRecorder] = None) -> None:
        self._sim = sim
        self._compute = compute_rm
        self._nrm = nrm
        self._coordinator = coordinator
        self._trace = trace
        #: Optional telemetry hub (spans around the RS protocol).
        self.telemetry: Optional[Telemetry] = None
        #: Optional write-ahead journal; ``None`` keeps the protocol
        #: hot path at a single attribute check per write point.
        self.journal: Optional[Journal] = None

    def _span(self, name: str, sla_id: int) -> "ContextManager[object]":
        if self.telemetry is None:
            return nullcontext()
        return self.telemetry.tracer.span(name,
                                          component="reservation-system",
                                          sla_id=sla_id)

    # ------------------------------------------------------------------
    # Site resolution
    # ------------------------------------------------------------------

    def _resolve_sites(self, network: NetworkDemand) -> "tuple[str, str]":
        """Map the SLA's IP addresses onto topology site names."""
        topology = None
        if self._nrm is not None:
            topology = self._nrm._topology  # noqa: SLF001 — same package family
        elif self._coordinator is not None:
            topology = self._coordinator._topology  # noqa: SLF001
        if topology is None:
            raise NetworkError(
                "reservation system has no network manager configured")
        source = topology.site_by_address(network.source_ip)
        destination = topology.site_by_address(network.dest_ip)
        return source.name, destination.name

    def _allocate_network(self, network: NetworkDemand, start: float,
                          end: float) -> NetworkBooking:
        source, destination = self._resolve_sites(network)
        if self._coordinator is not None:
            return self._coordinator.allocate(
                source, destination, network.bandwidth_mbps, start, end)
        assert self._nrm is not None
        return self._nrm.allocate(source, destination,
                                  network.bandwidth_mbps, start, end)

    def _release_network(self, booking: NetworkBooking) -> None:
        if isinstance(booking, EndToEndAllocation):
            booking.release()
        else:
            assert self._nrm is not None
            self._nrm.release(booking)

    # ------------------------------------------------------------------
    # The RS protocol
    # ------------------------------------------------------------------

    def reserve(self, sla: ServiceSLA, *,
                demand: Optional[ResourceVector] = None
                ) -> CompositeReservation:
        """Temporarily reserve everything the SLA needs.

        Args:
            sla: The (proposed) SLA document.
            demand: Override for the compute demand; defaults to the
                SLA's agreed operating point demand (CPU/memory/disk
                components; bandwidth goes through the network side).

        Raises:
            CapacityError: When any leg cannot be booked (previous
                legs are rolled back).
        """
        with self._span("reserve", sla.sla_id):
            return self._reserve(sla, demand=demand)

    def _reserve(self, sla: ServiceSLA, *,
                 demand: Optional[ResourceVector] = None
                 ) -> CompositeReservation:
        if demand is None:
            demand = sla.agreed_demand()
        compute_demand = ResourceVector(cpu=demand.cpu,
                                        memory_mb=demand.memory_mb,
                                        disk_mb=demand.disk_mb)
        composite = CompositeReservation(sla_id=sla.sla_id)
        if self.journal is not None:
            self.journal.append(RESERVE_BEGIN, sla_id=sla.sla_id)
        if not compute_demand.is_zero():
            rsl = reservation_rsl(compute_demand, sla.start, sla.end,
                                  service_name=sla.service_name)
            composite.compute_handle = self._compute.gara.reservation_create(rsl)
            if self.journal is not None:
                self.journal.append(COMPUTE_BOOKED, sla_id=sla.sla_id,
                                    handle=composite.compute_handle.value)
            self._record(sla, f"temporarily reserved compute "
                              f"{compute_demand} via RSL")
        if sla.network is not None:
            try:
                composite.network_booking = self._allocate_network(
                    sla.network, sla.start, sla.end)
            except (CapacityError, NetworkError):
                if composite.compute_handle is not None:
                    self._compute.gara.reservation_cancel(
                        composite.compute_handle)
                raise
            if self.journal is not None:
                self.journal.append(
                    NETWORK_BOOKED, sla_id=sla.sla_id,
                    flows=booking_flow_ids(composite.network_booking))
            self._record(sla, f"reserved network "
                              f"{sla.network.bandwidth_mbps:g} Mbps "
                              f"{sla.network.source_ip} -> "
                              f"{sla.network.dest_ip}")
        if self.journal is not None:
            self.journal.append(RESERVE_END, sla_id=sla.sla_id)
        return composite

    def confirm(self, composite: CompositeReservation) -> None:
        """Commit every leg of the composite (SLA approved).

        Must arrive before GARA's confirmation deadline, or the
        temporary reservation will already have been auto-cancelled.
        The network booking is marked committed too, so reconciliation
        can tell a confirmed composite from a temporary one whose
        auto-cancel deadline has passed.

        Idempotent: a re-delivered confirm (retries and duplicated
        messages are a fact of life on a lossy control plane) is a
        no-op rather than an error, so at-least-once delivery can
        never double-commit.
        """
        with self._span("confirm", composite.sla_id):
            if composite.cancelled:
                raise ReservationError(
                    f"reservation for SLA {composite.sla_id} was cancelled")
            if composite.confirmed:
                return
            if composite.compute_handle is not None:
                self._compute.gara.reservation_commit(
                    composite.compute_handle)
            if composite.network_booking is not None:
                composite.network_booking.commit()
            composite.confirmed = True
            if self.journal is not None:
                self.journal.append(CONFIRM, sla_id=composite.sla_id)

    def cancel(self, composite: CompositeReservation) -> None:
        """Tear down every leg of the composite reservation.

        The ``cancelled`` flag is only set once *every* leg is
        released: each release is individually idempotent (a cancelled
        GARA reservation and an inactive flow are both skipped), so a
        cancel that fails mid-teardown can simply be retried — an
        early flag would turn the retry into a silent no-op and leak
        the network booking.
        """
        if composite.cancelled:
            return
        with self._span("cancel", composite.sla_id):
            if composite.compute_handle is not None:
                reservation = self._compute.gara.reservation_status(
                    composite.compute_handle)
                if reservation.state.is_live:
                    self._compute.gara.reservation_cancel(
                        composite.compute_handle)
            if composite.network_booking is not None:
                self._release_network(composite.network_booking)
            composite.cancelled = True
            if self.journal is not None:
                self.journal.append(CANCEL, sla_id=composite.sla_id)

    def modify_compute(self, composite: CompositeReservation,
                       demand: ResourceVector, *, force: bool = False) -> None:
        """Resize the compute leg (adaptation's squeeze/upgrade path)."""
        if composite.compute_handle is None:
            raise ReservationError(
                f"SLA {composite.sla_id} has no compute reservation")
        with self._span("modify", composite.sla_id):
            self._compute.gara.reservation_modify(
                composite.compute_handle,
                ResourceVector(cpu=demand.cpu, memory_mb=demand.memory_mb,
                               disk_mb=demand.disk_mb),
                force=force)
            if self.journal is not None:
                self.journal.append(MODIFY, sla_id=composite.sla_id,
                                    cpu=demand.cpu,
                                    memory_mb=demand.memory_mb,
                                    disk_mb=demand.disk_mb)

    def _record(self, sla: ServiceSLA, message: str) -> None:
        if self._trace is not None:
            self._trace.record(self._sim.now, "reservation",
                               f"RS[SLA {sla.sla_id}]: {message}")
