"""Testbed wiring: the Figure 5 single-domain deployment and the
Figure 1 multi-domain architecture.

:func:`build_testbed` assembles a fully wired single-domain G-QoSM
instance — simulator, machine, compute RM, topology, NRM, UDDIe, SLA
repository, pricing, capacity partition and the AQoS broker — in the
proportions of the paper's running example (26 grid nodes split
15/6/5). :func:`build_multidomain` stands up one broker per domain over
a shared topology with an inter-domain coordinator, matching Figure 1's
two-domain picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..monitoring.mds import InformationService
from ..monitoring.notifications import NotificationHub
from ..obs import DecisionLog, SloEngine
from ..network.interdomain import InterDomainCoordinator
from ..network.nrm import NetworkResourceManager
from ..network.topology import Topology
from ..qos.cost import PricingPolicy
from ..qos.parameters import Dimension, range_parameter
from ..qos.specification import QoSSpecification
from ..recovery.journal import Journal
from ..recovery.snapshot import SnapshotKeeper
from ..registry.uddie import UddieRegistry
from ..resources.compute import ComputeResourceManager
from ..resources.machine import Machine
from ..sim.engine import Simulator
from ..sim.random import RandomSource
from ..sim.trace import TraceRecorder
from ..telemetry import Telemetry
from ..monitoring.relay import BusNotificationRelay
from ..sla.repository import SLARepository
from ..xmlmsg.bus import MessageBus
from ..xmlmsg.faults import FaultPlan
from ..xmlmsg.resilient import ResilientCaller, RetryPolicy
from .broker import AQoSBroker
from .capacity import CapacityPartition
from .discovery import RegistryEndpoint, ResilientDiscovery
from .gateway import BrokerGateway, ClientStub
from ..errors import ValidationError


@dataclass
class Testbed:
    """A wired single-domain G-QoSM instance.

    The control-plane fields (``bus`` onward) are ``None`` until
    :func:`attach_control_plane` puts the broker behind the message
    bus; ``faults`` is additionally ``None`` until
    :func:`install_chaos` arms fault injection.
    """

    sim: Simulator
    trace: TraceRecorder
    rng: RandomSource
    machine: Machine
    compute_rm: ComputeResourceManager
    topology: Topology
    nrm: NetworkResourceManager
    registry: UddieRegistry
    partition: CapacityPartition
    broker: AQoSBroker
    bus: Optional[MessageBus] = None
    gateway: Optional[BrokerGateway] = None
    registry_endpoint: Optional[RegistryEndpoint] = None
    relay: Optional[BusNotificationRelay] = None
    faults: Optional[FaultPlan] = None
    telemetry: Optional[Telemetry] = None
    journal: Optional[Journal] = None
    snapshots: Optional[SnapshotKeeper] = None
    decisions: Optional[DecisionLog] = None
    slo: Optional[SloEngine] = None

    @property
    def repository(self) -> SLARepository:
        """The broker's SLA repository."""
        return self.broker.repository

    def client(self, name: str, *,
               policy: Optional[RetryPolicy] = None) -> ClientStub:
        """A client stub with a seeded resilient caller.

        Jitter for this client's backoff comes from the testbed RNG's
        ``caller:<name>`` substream, so every client is decorrelated
        yet the whole run replays from one seed.
        """
        if self.bus is None:
            raise ValidationError(
                "control plane not attached; call attach_control_plane()")
        caller = ResilientCaller(
            self.bus, rng=self.rng.stream(f"caller:{name}"),
            policy=policy, trace=self.trace, name=name)
        gateway_name = (self.gateway.endpoint_name
                        if self.gateway is not None else "aqos")
        return ClientStub(name, self.bus, gateway_name=gateway_name,
                          caller=caller)


def build_testbed(*, total_cpu: int = 26, guaranteed_cpu: int = 15,
                  adaptive_cpu: int = 6, best_effort_cpu: int = 5,
                  best_effort_min: int = 2,
                  machine_nodes: int = 64,
                  memory_mb: float = 10_240.0,
                  disk_mb: float = 51_200.0,
                  link_mbps: float = 622.0,
                  seed: int = 0,
                  optimizer_interval: float = 0.0,
                  pricing: Optional[PricingPolicy] = None,
                  register_default_services: bool = True,
                  sim: Optional[Simulator] = None,
                  trace: Optional[TraceRecorder] = None,
                  rng: Optional[RandomSource] = None,
                  machine_name: Optional[str] = None,
                  sla_first_id: int = 1000) -> Testbed:
    """Build the Figure 5 testbed with the Section 5.6 proportions.

    The default capacity split is the paper's: 26 grid-exposed nodes
    partitioned ``Cg=15, Ca=6, Cb=5`` on a 64-node machine, with a
    622 Mbps backbone between the sites of the example.

    ``sim``/``trace``/``rng`` may be passed to embed the testbed into
    shared infrastructure (the federation builds one testbed per
    domain over a single simulator and recorder); when omitted each
    testbed owns fresh instances, exactly as before.
    """
    if guaranteed_cpu + adaptive_cpu + best_effort_cpu != total_cpu:
        raise ValidationError(
            f"partition {guaranteed_cpu}+{adaptive_cpu}+{best_effort_cpu} "
            f"!= total {total_cpu}")
    sim = sim if sim is not None else Simulator()
    trace = trace if trace is not None else TraceRecorder()
    rng = rng if rng is not None else RandomSource(seed)

    machine = Machine(machine_name or "sgi-siteA", machine_nodes,
                      grid_nodes=total_cpu,
                      memory_mb=memory_mb, disk_mb=disk_mb)
    compute_rm = ComputeResourceManager(sim, machine, trace=trace)

    topology = Topology()
    topology.add_site("siteA", "domain1", address="192.200.168.33")
    topology.add_site("siteB", "domain1", address="135.200.50.101")
    topology.add_site("siteC", "domain1", address="10.10.10.3")
    topology.add_link("siteA", "siteB", link_mbps, delay_ms=5.0)
    topology.add_link("siteA", "siteC", 155.0, delay_ms=8.0)
    nrm = NetworkResourceManager(sim, topology, "domain1",
                                 rng=rng.stream("nrm"), trace=trace)

    registry = UddieRegistry()
    if register_default_services:
        _register_default_services(registry, total_cpu, memory_mb, disk_mb,
                                   link_mbps)

    partition = CapacityPartition(guaranteed_cpu, adaptive_cpu,
                                  best_effort_cpu,
                                  best_effort_min=best_effort_min)
    broker = AQoSBroker(sim, registry=registry, compute_rm=compute_rm,
                        partition=partition, nrm=nrm,
                        pricing=pricing or PricingPolicy(), trace=trace,
                        mds=InformationService(sim),
                        hub=NotificationHub(),
                        repository=SLARepository(first_id=sla_first_id),
                        optimizer_interval=optimizer_interval)
    return Testbed(sim=sim, trace=trace, rng=rng, machine=machine,
                   compute_rm=compute_rm, topology=topology, nrm=nrm,
                   registry=registry, partition=partition, broker=broker)


def attach_control_plane(testbed: Testbed, *,
                         latency: float = 0.0,
                         bus: Optional[MessageBus] = None,
                         gateway_name: str = "aqos",
                         registry_name: str = "uddie",
                         relay_name: Optional[str] = None,
                         discovery_name: str = "aqos-discovery") -> Testbed:
    """Put the broker's control plane onto the message bus.

    After this call the testbed has a gateway (``aqos`` endpoint), a
    registry endpoint (``uddie``) with the broker's discovery riding
    the bus behind a resilient caller, and the notification hub's
    traffic relayed as asynchronous envelopes. Without an installed
    fault plan the transport is perfect, so behaviour is unchanged —
    this wiring only *exposes* the control plane to the chaos layer.

    Pass a shared ``bus`` plus per-domain endpoint names to put many
    testbeds on one wire (the federation does: ``aqos:d1``,
    ``uddie:d1``, ... so domains stay addressable side by side).
    """
    if testbed.bus is not None:
        return testbed
    if bus is None:
        bus = MessageBus(testbed.sim, trace=testbed.trace, latency=latency)
    testbed.bus = bus
    testbed.gateway = BrokerGateway(testbed.broker, bus,
                                    endpoint_name=gateway_name)
    testbed.registry_endpoint = RegistryEndpoint(
        testbed.registry, bus, endpoint_name=registry_name)
    testbed.broker.discovery = ResilientDiscovery(
        bus,
        caller=ResilientCaller(bus, rng=testbed.rng.stream("discovery"),
                               trace=testbed.trace, name=discovery_name),
        client_name=discovery_name, registry_name=registry_name,
        trace=testbed.trace, metrics=testbed.broker.metrics)
    relay_kwargs = {} if relay_name is None else {
        "endpoint_name": relay_name}
    testbed.relay = BusNotificationRelay(testbed.broker.hub, bus,
                                         **relay_kwargs)
    if testbed.telemetry is not None and bus.telemetry is None:
        bus.telemetry = testbed.telemetry
    return testbed


def install_telemetry(testbed: Testbed) -> Telemetry:
    """Turn on deterministic telemetry across the whole testbed.

    The hub *adopts* the testbed's existing infrastructure — the
    broker's metrics registry and the trace recorder's event stream —
    so there is exactly one counting mechanism and one event log.
    Idempotent: a second call returns the installed hub. Order is
    free: telemetry installed before :func:`attach_control_plane`
    is picked up by the bus when it is created, and vice versa.
    """
    if testbed.telemetry is not None:
        return testbed.telemetry
    sim = testbed.sim
    telemetry = Telemetry(now=lambda: sim.now,
                          metrics=testbed.broker.metrics,
                          stream=testbed.trace.stream)
    testbed.telemetry = telemetry
    testbed.broker.install_telemetry(telemetry)
    if testbed.bus is not None:
        testbed.bus.telemetry = telemetry
    return telemetry


def install_observability(testbed: Testbed
                          ) -> "tuple[DecisionLog, SloEngine]":
    """Turn on decision provenance and SLO tracking testbed-wide.

    Telemetry is installed first (the decision log shares its event
    stream and stamps its span ids), then a :class:`DecisionLog` and
    :class:`SloEngine` are wired through the broker, the capacity
    partition and the SLA verifier. The journal is resolved through a
    getter per record, so ``install_journal`` may run before or after
    this and LSN stamps still work. Idempotent: a second call returns
    the installed pair.
    """
    if testbed.decisions is not None and testbed.slo is not None:
        return testbed.decisions, testbed.slo
    telemetry = install_telemetry(testbed)
    sim = testbed.sim
    broker = testbed.broker
    decisions = DecisionLog(now=lambda: sim.now, stream=telemetry.stream,
                            tracer=telemetry.tracer,
                            journal_getter=lambda: broker.journal)
    metrics = telemetry.metrics

    def occupancy() -> "Dict[str, float]":
        return {"utilization_mean": metrics.time_gauge(
            "repro_capacity_utilization").mean()}

    slo = SloEngine(now=lambda: sim.now, stream=telemetry.stream,
                    occupancy=occupancy)
    broker.decisions = decisions
    broker.slo = slo
    broker.verifier.decisions = decisions
    broker.verifier.slo = slo
    testbed.partition.decisions = decisions
    testbed.decisions = decisions
    testbed.slo = slo
    return decisions, slo


def install_chaos(testbed: Testbed, seed: int, *,
                  drop: float = 0.1, duplicate: float = 0.05,
                  delay: float = 0.1, error: float = 0.05,
                  reorder: float = 0.05,
                  delay_range: "tuple[float, float]" = (0.5, 2.0)
                  ) -> FaultPlan:
    """Arm deterministic fault injection on the testbed's bus.

    Attaches the control plane first when needed. The plan's RNG is a
    dedicated ``faults`` substream of its own seed, independent of the
    testbed seed, so the same workload can be replayed under many
    fault schedules (and the same ``seed`` reproduces one exactly).
    """
    attach_control_plane(testbed)
    assert testbed.bus is not None
    plan = FaultPlan.uniform(
        RandomSource(seed).stream("faults"), drop=drop,
        duplicate=duplicate, delay=delay, error=error, reorder=reorder,
        delay_range=delay_range)
    testbed.bus.install_faults(plan)
    testbed.faults = plan
    return plan


def install_all(testbed: Testbed, *,
                latency: float = 0.0,
                bus: Optional[MessageBus] = None,
                gateway_name: str = "aqos",
                registry_name: str = "uddie",
                relay_name: Optional[str] = None,
                discovery_name: str = "aqos-discovery",
                journal_store=None,
                chaos_seed: Optional[int] = None,
                chaos_options: Optional[Dict[str, float]] = None
                ) -> Testbed:
    """Install every cross-cutting layer on a testbed in one call.

    ``install_chaos``/``install_telemetry``/``install_journal``/
    ``install_observability`` each hand-wire one concern; standing up
    a multi-domain deployment by calling them individually makes it
    easy to skip a layer on one domain and chase the asymmetry for an
    afternoon. This helper composes all of them — telemetry, control
    plane (optionally onto a shared ``bus`` under per-domain endpoint
    names), observability, journal, and (when ``chaos_seed`` is given)
    fault injection — and is idempotent because each constituent
    installer is.
    """
    install_telemetry(testbed)
    attach_control_plane(testbed, latency=latency, bus=bus,
                         gateway_name=gateway_name,
                         registry_name=registry_name,
                         relay_name=relay_name,
                         discovery_name=discovery_name)
    install_observability(testbed)
    # Imported here: recovery imports the testbed module for type
    # hints, so a module-level import would be circular.
    from ..recovery.recover import install_journal
    install_journal(testbed, journal_store)
    if chaos_seed is not None:
        install_chaos(testbed, chaos_seed, **(chaos_options or {}))
    return testbed


def _register_default_services(registry: UddieRegistry, total_cpu: int,
                               memory_mb: float, disk_mb: float,
                               link_mbps: float) -> None:
    """Register the services the paper's scenarios exercise."""
    full_capability = QoSSpecification.of(
        range_parameter(Dimension.CPU, 0, total_cpu),
        range_parameter(Dimension.MEMORY_MB, 0, memory_mb),
        range_parameter(Dimension.DISK_MB, 0, disk_mb),
        range_parameter(Dimension.BANDWIDTH_MBPS, 0, link_mbps),
    )
    registry.register("simulation-service", "cardiff-escience",
                      endpoint="service.simulation",
                      capability=full_capability,
                      properties={"os": "linux", "nodes": total_cpu})
    registry.register("visualization-service", "cardiff-escience",
                      endpoint="service.visualization",
                      capability=full_capability,
                      properties={"os": "linux", "gpu": "no"})
    registry.register("data-transfer-service", "cardiff-escience",
                      endpoint="service.transfer",
                      capability=full_capability,
                      properties={"protocol": "gridftp"})


@dataclass
class MultiDomainTestbed:
    """One broker per domain over a shared topology (Figure 1)."""

    sim: Simulator
    trace: TraceRecorder
    topology: Topology
    coordinator: InterDomainCoordinator
    brokers: "Dict[str, AQoSBroker]"
    machines: "Dict[str, Machine]"


def build_multidomain(*, domains: int = 2, nodes_per_domain: int = 26,
                      seed: int = 0,
                      inter_domain_mbps: float = 622.0) -> MultiDomainTestbed:
    """Stand up the Figure 1 architecture: ``domains`` AQoS brokers,
    each with its own RM and NRM, joined by inter-domain links."""
    if domains < 1:
        raise ValidationError(f"need at least one domain: {domains}")
    sim = Simulator()
    trace = TraceRecorder()
    rng = RandomSource(seed)
    topology = Topology()
    nrms: List[NetworkResourceManager] = []
    machines: Dict[str, Machine] = {}
    compute_rms: Dict[str, ComputeResourceManager] = {}
    for index in range(domains):
        domain = f"domain{index + 1}"
        topology.add_site(f"site{index + 1}", domain,
                          address=f"10.{index + 1}.0.1")
        nrms.append(NetworkResourceManager(
            sim, topology, domain, rng=rng.stream(domain), trace=trace))
        machine = Machine(f"cluster-{domain}", nodes_per_domain * 2,
                          grid_nodes=nodes_per_domain,
                          memory_mb=8192.0, disk_mb=40_960.0)
        machines[domain] = machine
        compute_rms[domain] = ComputeResourceManager(sim, machine,
                                                     trace=trace)
    for index in range(domains - 1):
        topology.add_link(f"site{index + 1}", f"site{index + 2}",
                          inter_domain_mbps, delay_ms=10.0)
    coordinator = InterDomainCoordinator(topology, nrms)
    brokers: Dict[str, AQoSBroker] = {}
    for index in range(domains):
        domain = f"domain{index + 1}"
        registry = UddieRegistry()
        _register_default_services(registry, nodes_per_domain, 8192.0,
                                   40_960.0, inter_domain_mbps)
        guaranteed = int(nodes_per_domain * 0.6)
        adaptive = int(nodes_per_domain * 0.2)
        best_effort = nodes_per_domain - guaranteed - adaptive
        partition = CapacityPartition(guaranteed, adaptive, best_effort,
                                      best_effort_min=1)
        brokers[domain] = AQoSBroker(
            sim, registry=registry, compute_rm=compute_rms[domain],
            partition=partition, coordinator=coordinator, trace=trace,
            repository=SLARepository(first_id=1000 + 1000 * index))
    # Figure 1 interconnects the AQoS brokers across domains: requests
    # a broker cannot serve are forwarded to its neighbors.
    for domain, broker in brokers.items():
        for other_domain, other in brokers.items():
            if other_domain != domain:
                broker.add_peer(other)
    return MultiDomainTestbed(sim=sim, trace=trace, topology=topology,
                              coordinator=coordinator, brokers=brokers,
                              machines=machines)
