"""The resource-allocation optimization of Section 5.3.

"The AQoS implements this optimization by varying the resource quality
selection, based on supplied levels of quality in the SLA, which aims
to maximize overall monetary profit, while maintaining the user's
acceptable quality": pick, for every adjustable (controlled-load)
service, one operating point from its SLA-admissible levels, to

    maximize   Σ_services Σ_i q_i · w_i
    subject to Σ_services demand(point) ≤ capacity

with every service at least at its floor level. This is a multiple-
choice knapsack; the paper proposes a heuristic, so we provide:

* :func:`greedy_optimize` — the heuristic: start every service at its
  floor, then repeatedly apply the upgrade with the best marginal
  revenue per unit of (scarcity-weighted) extra demand.
* :func:`exact_optimize` — a branch-and-bound reference solver used by
  tests and the ablation benchmark to measure the heuristic's gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..errors import AdmissionError
from ..qos.classes import ServiceClass
from ..qos.cost import PricingPolicy
from ..qos.specification import OperatingPoint, QoSSpecification
from ..qos.vector import ResourceVector

_EPSILON = 1e-9


@dataclass(frozen=True)
class QualityCandidate:
    """One admissible operating point for one service.

    Attributes:
        service_key: The owning service/SLA key.
        level: Index within the service's level list (0 = floor).
        point: The operating point.
        demand: Resource demand of the point.
        revenue_rate: Revenue earned per time unit at this point.
    """

    service_key: str
    level: int
    point: "OperatingPoint"
    demand: ResourceVector
    revenue_rate: float


@dataclass(frozen=True)
class OptimizationResult:
    """An assignment of one candidate per service.

    Attributes:
        assignment: ``service_key -> chosen candidate``.
        revenue: Total revenue rate of the assignment.
        used: Total resource demand of the assignment.
        explored: Search nodes visited (1 per greedy step; B&B nodes
            for the exact solver).
        feasible: Whether every service received at least its floor.
    """

    assignment: "Dict[str, QualityCandidate]"
    revenue: float
    used: ResourceVector
    explored: int
    feasible: bool


def candidates_for(service_key: str, specification: QoSSpecification,
                   service_class: ServiceClass, policy: PricingPolicy, *,
                   levels: int = 5) -> List[QualityCandidate]:
    """Enumerate a service's candidate operating points, floor first."""
    points = specification.quality_levels(levels)
    candidates = []
    for index, point in enumerate(points):
        candidates.append(QualityCandidate(
            service_key=service_key, level=index, point=point,
            demand=QoSSpecification.point_demand(point),
            revenue_rate=policy.point_rate(point, service_class)))
    return candidates


def _fits(used: ResourceVector, extra: ResourceVector,
          capacity: ResourceVector) -> bool:
    return (used + extra).fits_within(capacity)


def _scarcity_cost(extra: ResourceVector, used: ResourceVector,
                   capacity: ResourceVector) -> float:
    """Weight extra demand by how scarce each component already is.

    The cost of one more unit of a component grows as its remaining
    head-room shrinks, so the greedy prefers upgrades that consume
    abundant resources.
    """
    total = 0.0
    for name in ResourceVector._FIELDS:
        need = getattr(extra, name)
        if need <= 0:
            continue
        cap = getattr(capacity, name)
        if cap <= 0:
            return float("inf")
        headroom = max(_EPSILON, cap - getattr(used, name))
        total += need / headroom
    return total


def greedy_optimize(services: "Mapping[str, Sequence[QualityCandidate]]",
                    capacity: ResourceVector, *,
                    on_decision: "Optional[Callable[[OptimizationResult], None]]" = None
                    ) -> OptimizationResult:
    """The Section 5.3 heuristic (marginal-revenue greedy).

    Every service starts at its floor (level 0). If even the floors do
    not fit, the result is flagged infeasible — the caller (Scenario 1)
    must degrade or refuse someone instead. Then, repeatedly, the
    single-level upgrade with the highest marginal revenue per unit of
    scarcity-weighted extra demand is applied, until no upgrade fits.

    ``on_decision`` is the provenance hook: when set it receives the
    result before it is returned, so every solver verdict — including
    the infeasible-floors case — is recorded (QLNT116).
    """
    assignment: Dict[str, QualityCandidate] = {}
    used = ResourceVector.zero()
    for key in sorted(services):
        levels = services[key]
        if not levels:
            raise AdmissionError(f"service {key!r} has no candidates")
        assignment[key] = levels[0]
        used = used + levels[0].demand
    feasible = used.fits_within(capacity)
    explored = 1
    while feasible:
        best_key: Optional[str] = None
        best_candidate: Optional[QualityCandidate] = None
        best_ratio = 0.0
        for key in sorted(services):
            current = assignment[key]
            levels = services[key]
            if current.level + 1 >= len(levels):
                continue
            upgrade = levels[current.level + 1]
            extra = upgrade.demand - current.demand
            gain = upgrade.revenue_rate - current.revenue_rate
            if gain <= _EPSILON:
                continue
            without = used - current.demand
            if not _fits(without, upgrade.demand, capacity):
                continue
            cost = _scarcity_cost(extra, used, capacity)
            ratio = gain / cost if cost > _EPSILON else float("inf")
            if ratio > best_ratio:
                best_ratio = ratio
                best_key = key
                best_candidate = upgrade
        if best_key is None or best_candidate is None:
            break
        used = (used - assignment[best_key].demand) + best_candidate.demand
        assignment[best_key] = best_candidate
        explored += 1
    revenue = sum(candidate.revenue_rate
                  for candidate in assignment.values())
    result = OptimizationResult(assignment=assignment, revenue=revenue,
                                used=used, explored=explored,
                                feasible=feasible)
    if on_decision is not None:
        on_decision(result)
    return result


def exact_optimize(services: "Mapping[str, Sequence[QualityCandidate]]",
                   capacity: ResourceVector, *,
                   node_limit: int = 2_000_000,
                   on_decision: "Optional[Callable[[OptimizationResult], None]]" = None
                   ) -> OptimizationResult:
    """Branch-and-bound reference solver (exact for small instances).

    Services are branched in sorted-key order, levels best-revenue
    first; the bound at each node is the current revenue plus every
    remaining service's maximum candidate revenue (capacity-ignoring,
    hence admissible).

    ``on_decision`` is the provenance hook: when set it receives the
    result before it is returned, on both the exact and the
    infeasible-fallback paths (QLNT116).

    Raises:
        AdmissionError: When ``node_limit`` search nodes are exceeded —
            use the greedy heuristic for instances that large.
    """
    keys = sorted(services)
    for key in keys:
        if not services[key]:
            raise AdmissionError(f"service {key!r} has no candidates")
    max_rest = [0.0] * (len(keys) + 1)
    for index in range(len(keys) - 1, -1, -1):
        best = max(c.revenue_rate for c in services[keys[index]])
        max_rest[index] = max_rest[index + 1] + best

    best_solution: "Dict[str, QualityCandidate]" = {}
    best_revenue = -1.0
    explored = 0

    def search(index: int, used: ResourceVector, revenue: float,
               chosen: "Dict[str, QualityCandidate]") -> None:
        nonlocal best_revenue, best_solution, explored
        explored += 1
        if explored > node_limit:
            raise AdmissionError(
                f"exact_optimize exceeded node_limit={node_limit}")
        if index == len(keys):
            if revenue > best_revenue:
                best_revenue = revenue
                best_solution = dict(chosen)
            return
        if revenue + max_rest[index] <= best_revenue + _EPSILON:
            return
        key = keys[index]
        ordered = sorted(services[key],
                         key=lambda c: -c.revenue_rate)
        for candidate in ordered:
            if not _fits(used, candidate.demand, capacity):
                continue
            chosen[key] = candidate
            search(index + 1, used + candidate.demand,
                   revenue + candidate.revenue_rate, chosen)
            del chosen[key]

    search(0, ResourceVector.zero(), 0.0, {})
    if best_revenue < 0:
        # No complete assignment fits: fall back to floors, flagged
        # infeasible, mirroring greedy_optimize's contract.
        assignment = {key: services[key][0] for key in keys}
        used = ResourceVector.zero()
        for candidate in assignment.values():
            used = used + candidate.demand
        fallback = OptimizationResult(assignment=assignment,
                                      revenue=sum(c.revenue_rate for c in
                                                  assignment.values()),
                                      used=used, explored=explored,
                                      feasible=False)
        if on_decision is not None:
            on_decision(fallback)
        return fallback
    used = ResourceVector.zero()
    for candidate in best_solution.values():
        used = used + candidate.demand
    result = OptimizationResult(assignment=best_solution,
                                revenue=best_revenue, used=used,
                                explored=explored, feasible=True)
    if on_decision is not None:
        on_decision(result)
    return result
