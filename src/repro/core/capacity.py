"""The capacity partition ``C = Cg + Ca + Cb`` (Section 5.4).

The system administrator splits the total resource capacity into a
guaranteed pool ``Cg``, an adaptive reserve ``Ca`` "based on the
specified rate of resource failure or congestion", and a best-effort
pool ``Cb`` with a protected minimum. The partition is *dynamic*:

* best-effort work borrows whatever is idle in ``Cg`` and ``Ca``
  ("the extra reserved capacity is used by 'best effort' users as long
  as it is not needed by 'guaranteed' users") — borrowed capacity is
  pre-emptible;
* when failures shrink the pools or guaranteed demand spikes,
  ``Adapt()`` covers the guaranteed shortfall from ``Ca`` and then from
  ``Cb`` down to the best-effort minimum.

The partition is deliberately *scalar* — it accounts capacity units of
one resource type (CPU nodes in the paper's example; the broker runs
one partition per managed resource type). All mutation funnels through
:meth:`CapacityPartition.rebalance`, a deterministic two-tier
water-fill, so the allocation state is always a pure function of
(demands, commitments, failures) — which is what makes the Section 5.6
timeline exactly replayable.

Priority tiers inside ``rebalance``:

1. **Entitled guaranteed demand** ``min(c(u,t), g(u))`` — must be
   served: from effective ``Cg``, then ``Ca``, then ``Cb`` down to the
   best-effort minimum (that transfer is the paper's ``Adapt()``).
   Anything still unserved is a recorded *shortfall* (an SLA violation
   the broker must react to).
2. **Excess guaranteed demand** ``c(u,t) − g(u)`` — the recursive
   claim in ``Allocate_Guaranteed_Resource``: served best-effort-ly
   from whatever ``Ca``/``Cg`` head-room remains (never from the
   protected ``Cb`` minimum); partial service is fine.
3. **Best-effort demand** — served from effective ``Cb`` plus all
   remaining idle capacity, FCFS in arrival order; partial service is
   fine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import AdmissionError
from ..recovery.journal import CAPACITY_REBALANCED, Journal
from ..units import iszero

_EPSILON = 1e-9


@dataclass
class GuaranteedHolding:
    """One guaranteed user's state in the partition.

    Attributes:
        user: User/session key.
        committed: ``g(u)`` — the SLA-committed capacity.
        demand: ``c(u,t)`` — current demand.
        served: Capacity actually allocated right now.
        from_g / from_a / from_b: Sourcing breakdown of ``served``
            (the per-pool "x/y" views of the Section 5.6 tables).
    """

    user: str
    committed: float
    demand: float = 0.0
    served: float = 0.0
    from_g: float = 0.0
    from_a: float = 0.0
    from_b: float = 0.0

    @property
    def entitled(self) -> float:
        """The must-serve portion ``min(c(u,t), g(u))``."""
        return min(self.demand, self.committed)

    @property
    def shortfall(self) -> float:
        """Entitled demand not currently served (an SLA violation)."""
        return max(0.0, self.entitled - self.served)


@dataclass
class BestEffortHolding:
    """One best-effort user's state in the partition."""

    user: str
    demand: float = 0.0
    served: float = 0.0
    arrival_order: int = 0


@dataclass(frozen=True)
class PoolUsage:
    """Usage snapshot of one pool (a Section 5.6 table row).

    ``guaranteed``/``excess``/``best_effort`` are the capacity units
    this pool currently supplies to each tier; ``idle`` is what is
    left of its effective size.
    """

    name: str
    effective: float
    guaranteed: float
    excess: float
    best_effort: float

    @property
    def used(self) -> float:
        return self.guaranteed + self.excess + self.best_effort

    @property
    def idle(self) -> float:
        return max(0.0, self.effective - self.used)


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one :meth:`CapacityPartition.rebalance` pass.

    Attributes:
        shortfalls: ``user -> unserved entitled capacity`` (violations).
        preempted: ``user -> capacity taken back`` from best-effort
            borrowers relative to the previous assignment.
        adapt_transfer: Capacity ``Adapt()`` moved to the guaranteed
            tier beyond effective ``Cg`` (from ``Ca``, then ``Cb``).
        pools: Per-pool usage snapshot after the pass.
    """

    shortfalls: "Dict[str, float]"
    preempted: "Dict[str, float]"
    adapt_transfer: float
    pools: "Tuple[PoolUsage, PoolUsage, PoolUsage]"

    @property
    def guarantees_honored(self) -> bool:
        """Whether every entitled guaranteed unit is served."""
        return not self.shortfalls


class CapacityPartition:
    """The administrator's ``C = Cg + Ca + Cb`` split, with borrowing.

    Args:
        guaranteed: Nominal ``Cg``.
        adaptive: Nominal ``Ca``.
        best_effort: Nominal ``Cb``.
        best_effort_min: Protected best-effort minimum (never raided
            by ``Adapt()``); defaults to 0.
        failure_order: Which pools absorb capacity failures, first to
            last. The Section 5.6 example loses nodes from the
            guaranteed pool, so ``("g", "a", "b")`` is the default.
    """

    def __init__(self, guaranteed: float, adaptive: float,
                 best_effort: float, *, best_effort_min: float = 0.0,
                 failure_order: "Tuple[str, ...]" = ("g", "a", "b")) -> None:
        for name, value in (("guaranteed", guaranteed),
                            ("adaptive", adaptive),
                            ("best_effort", best_effort)):
            if value < 0:
                raise AdmissionError(f"{name} capacity must be >= 0: {value}")
        if not 0 <= best_effort_min <= best_effort:
            raise AdmissionError(
                f"best_effort_min must be in [0, Cb={best_effort}]: "
                f"{best_effort_min}")
        if sorted(failure_order) != ["a", "b", "g"]:
            raise AdmissionError(
                f"failure_order must be a permutation of g/a/b: "
                f"{failure_order}")
        self.cg = float(guaranteed)
        self.ca = float(adaptive)
        self.cb = float(best_effort)
        self.best_effort_min = float(best_effort_min)
        self.failure_order = failure_order
        self._failed = 0.0
        self._guaranteed: Dict[str, GuaranteedHolding] = {}
        self._best_effort: Dict[str, BestEffortHolding] = {}
        self._arrivals = 0
        #: Running ``Σ g(u)``, maintained by admit/remove/clear so the
        #: admission test never re-sums the holdings.
        self._committed = 0.0
        #: Sorted-holdings cache, invalidated by admit/remove/clear;
        #: the water-fill walks it twice per pass.
        self._sorted: Optional[List[GuaranteedHolding]] = None
        #: Deferred-rebalance mode (batch admission): demand updates
        #: mark the assignment dirty instead of rebalancing, and every
        #: reader of rebalance-derived state flushes first.
        self._deferred = False
        self._dirty = False
        self.last_report: Optional[RebalanceReport] = None
        #: Optional callback ``(partition, report)`` invoked after
        #: every rebalance — the telemetry capacity gauges hook in
        #: here. Must be set before ``rebalance`` runs, hence above
        #: the constructor's initial call.
        self.observer: Optional[Callable[
            ["CapacityPartition", RebalanceReport], None]] = None
        #: Optional write-ahead journal; every rebalance appends a
        #: ``capacity_rebalanced`` record when set.
        self.journal: Optional[Journal] = None
        #: Optional decision-provenance log
        #: (:class:`repro.obs.DecisionLog`); eventful rebalances —
        #: shortfalls, preemptions, adaptive transfers — emit a
        #: ``rebalance`` record when set. Like :attr:`observer`, set
        #: before the constructor's initial :meth:`rebalance`.
        self.decisions: "Optional[Any]" = None
        self.rebalance()

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------

    @property
    def total(self) -> float:
        """Nominal total capacity ``C``."""
        return self.cg + self.ca + self.cb

    @property
    def failed(self) -> float:
        """Capacity currently lost to failures."""
        return self._failed

    def effective_sizes(self) -> "Tuple[float, float, float]":
        """``(Cg, Ca, Cb)`` after failures, in ``failure_order``."""
        remaining_failure = self._failed
        sizes = {"g": self.cg, "a": self.ca, "b": self.cb}
        for pool in self.failure_order:
            absorbed = min(sizes[pool], remaining_failure)
            sizes[pool] -= absorbed
            remaining_failure -= absorbed
        return sizes["g"], sizes["a"], sizes["b"]

    def apply_failure(self, amount: float) -> RebalanceReport:
        """Lose ``amount`` capacity units (node failures)."""
        if amount < 0:
            raise AdmissionError(f"failure amount must be >= 0: {amount}")
        self._failed = min(self.total, self._failed + amount)
        return self.rebalance()

    def apply_repair(self, amount: Optional[float] = None) -> RebalanceReport:
        """Recover ``amount`` failed units (all of them by default)."""
        if amount is None:
            self._failed = 0.0
        else:
            if amount < 0:
                raise AdmissionError(f"repair amount must be >= 0: {amount}")
            self._failed = max(0.0, self._failed - amount)
        return self.rebalance()

    # ------------------------------------------------------------------
    # Guaranteed-class admission and demand
    # ------------------------------------------------------------------

    def committed_total(self) -> float:
        """``Σ g(u)`` over admitted guaranteed users.

        A running sum (O(1)): commitments only change on admit, remove
        and clear, each of which maintains it.
        """
        return self._committed

    def available_guaranteed_resource(self, committed: float) -> bool:
        """The paper's ``Available_Guaranteed_Resource(g(u))`` test:
        a new SLA committing ``g(u)`` is admissible iff
        ``Σ g(v) + g(u) <= Cg`` (nominal — the adaptive reserve exists
        precisely to cover transient failures, so admission is against
        the nominal pool)."""
        return self.committed_total() + committed <= self.cg + _EPSILON

    def admit_guaranteed(self, user: str, committed: float) -> GuaranteedHolding:
        """Admit a guaranteed SLA committing ``g(u)`` capacity units.

        Raises:
            AdmissionError: When ``Available_Guaranteed_Resource``
                fails or the user is already admitted.
        """
        if committed <= 0:
            raise AdmissionError(
                f"guaranteed commitment must be positive: {committed}")
        if user in self._guaranteed:
            raise AdmissionError(f"user {user!r} already admitted")
        if not self.available_guaranteed_resource(committed):
            raise AdmissionError(
                f"cannot admit {user!r}: committed total "
                f"{self.committed_total():g} + {committed:g} exceeds "
                f"Cg={self.cg:g}")
        holding = GuaranteedHolding(user=user, committed=committed)
        self._guaranteed[user] = holding
        self._committed += committed
        self._sorted = None
        return holding

    def set_guaranteed_demand(self, user: str,
                              demand: float) -> Optional[RebalanceReport]:
        """Update ``c(u,t)`` for an admitted user and rebalance.

        In deferred mode (:meth:`defer_rebalances`) the demand is
        recorded but the water-fill is postponed; ``None`` is returned
        instead of a report.
        """
        holding = self._guaranteed.get(user)
        if holding is None:
            raise AdmissionError(f"user {user!r} is not admitted")
        if demand < 0:
            raise AdmissionError(f"demand must be >= 0: {demand}")
        holding.demand = demand
        if self._deferred:
            self._dirty = True
            return None
        return self.rebalance()

    def remove_guaranteed(self, user: str) -> RebalanceReport:
        """Drop a guaranteed user (SLA completed/expired) and rebalance."""
        holding = self._guaranteed.pop(user, None)
        if holding is None:
            raise AdmissionError(f"user {user!r} is not admitted")
        self._committed -= holding.committed
        if not self._guaranteed:
            self._committed = 0.0
        self._sorted = None
        return self.rebalance()

    def guaranteed_holding(self, user: str) -> GuaranteedHolding:
        """The holding for an admitted guaranteed user."""
        holding = self._guaranteed.get(user)
        if holding is None:
            raise AdmissionError(f"user {user!r} is not admitted")
        self._flush()
        return holding

    def _sorted_holdings(self) -> List[GuaranteedHolding]:
        """The sort-key-ordered holdings list (cached, not flushed)."""
        cache = self._sorted
        if cache is None:
            cache = self._sorted = [
                self._guaranteed[user] for user in sorted(self._guaranteed)]
        return cache

    def guaranteed_holdings(self) -> List[GuaranteedHolding]:
        """All guaranteed holdings (stable order)."""
        self._flush()
        return list(self._sorted_holdings())

    # ------------------------------------------------------------------
    # Best-effort demand
    # ------------------------------------------------------------------

    def set_best_effort_demand(self, user: str,
                               demand: float) -> RebalanceReport:
        """Update ``b(u,t)``; zero demand removes the user."""
        if demand < 0:
            raise AdmissionError(f"demand must be >= 0: {demand}")
        if iszero(demand):
            self._best_effort.pop(user, None)
            return self.rebalance()
        holding = self._best_effort.get(user)
        if holding is None:
            self._arrivals += 1
            holding = BestEffortHolding(user=user,
                                        arrival_order=self._arrivals)
            self._best_effort[user] = holding
        holding.demand = demand
        return self.rebalance()

    def best_effort_holding(self, user: str) -> BestEffortHolding:
        """The holding for a best-effort user."""
        holding = self._best_effort.get(user)
        if holding is None:
            raise AdmissionError(f"user {user!r} has no best-effort demand")
        self._flush()
        return holding

    def best_effort_holdings(self) -> List[BestEffortHolding]:
        """All best-effort holdings, in arrival order."""
        self._flush()
        return sorted(self._best_effort.values(),
                      key=lambda h: h.arrival_order)

    def best_effort_served(self) -> float:
        """Total best-effort capacity currently served."""
        self._flush()
        return sum(h.served for h in self._best_effort.values())

    def clear_holdings(self) -> RebalanceReport:
        """Drop every holding and rebalance (crash-recovery wipe).

        Failure bookkeeping is untouched — the machine, not the
        partition, is authoritative for lost capacity, and recovery
        re-derives ``failed`` from it separately.
        """
        self._guaranteed.clear()
        self._best_effort.clear()
        self._arrivals = 0
        self._committed = 0.0
        self._sorted = None
        return self.rebalance()

    # ------------------------------------------------------------------
    # Deferred rebalancing (batch admission)
    # ------------------------------------------------------------------

    def defer_rebalances(self) -> None:
        """Enter deferred mode: demand updates postpone the water-fill.

        While deferred, :meth:`set_guaranteed_demand` marks the
        assignment dirty instead of rebalancing. Every reader of
        rebalance-derived state (holdings, served totals, idle
        capacity, snapshots) flushes the pending pass first, so no
        caller can ever observe a stale assignment — which is what
        keeps batched admission decision-identical to sequential
        admission. Mutations that rebalance unconditionally (failures,
        removals, best-effort demand) also absorb the pending pass.
        """
        self._deferred = True

    def resume_rebalances(self) -> Optional[RebalanceReport]:
        """Leave deferred mode, running any pending water-fill.

        Returns the flushed report, or ``None`` when nothing was
        pending.
        """
        self._deferred = False
        if self._dirty:
            return self.rebalance()
        return None

    def _flush(self) -> None:
        """Run a pending deferred water-fill, if any."""
        if self._dirty:
            self.rebalance()

    # ------------------------------------------------------------------
    # The rebalance pass
    # ------------------------------------------------------------------

    def rebalance(self) -> RebalanceReport:
        """Recompute the full assignment (see module docstring)."""
        self._dirty = False
        eff_g, eff_a, eff_b = self.effective_sizes()
        previous_be = {user: holding.served
                       for user, holding in self._best_effort.items()}

        # Pool ledgers: how much each pool supplies to each tier.
        supply = {name: {"guaranteed": 0.0, "excess": 0.0, "best_effort": 0.0}
                  for name in ("g", "a", "b")}
        remaining = {"g": eff_g, "a": eff_a, "b": eff_b}
        protected_b = min(self.best_effort_min, eff_b)

        def draw(pool: str, tier: str, amount: float, *,
                 floor: float = 0.0) -> float:
            """Take up to ``amount`` from a pool, respecting a floor."""
            grantable = max(0.0, remaining[pool] - floor)
            granted = min(amount, grantable)
            remaining[pool] -= granted
            supply[pool][tier] += granted
            return granted

        # --- Tier 1: entitled guaranteed demand -----------------------
        shortfalls: Dict[str, float] = {}
        adapt_transfer = 0.0
        for holding in self._sorted_holdings():
            holding.from_g = holding.from_a = holding.from_b = 0.0
            need = holding.entitled
            got_g = draw("g", "guaranteed", need)
            need -= got_g
            got_a = draw("a", "guaranteed", need)
            need -= got_a
            got_b = draw("b", "guaranteed", need, floor=protected_b)
            need -= got_b
            adapt_transfer += got_a + got_b
            holding.from_g = got_g
            holding.from_a = got_a
            holding.from_b = got_b
            holding.served = got_g + got_a + got_b
            if need > _EPSILON:
                shortfalls[holding.user] = need

        # --- Tier 2: excess guaranteed demand --------------------------
        for holding in self._sorted_holdings():
            excess = max(0.0, holding.demand - holding.committed)
            if excess <= _EPSILON:
                continue
            got_a = draw("a", "excess", excess)
            excess -= got_a
            got_g = draw("g", "excess", excess)
            excess -= got_g
            holding.from_a += got_a
            holding.from_g += got_g
            holding.served += got_a + got_g

        # --- Tier 3: best-effort demand --------------------------------
        preempted: Dict[str, float] = {}
        for holding in self.best_effort_holdings():
            need = holding.demand
            got_b = draw("b", "best_effort", need)
            need -= got_b
            got_a = draw("a", "best_effort", need)
            need -= got_a
            got_g = draw("g", "best_effort", need)
            holding.served = got_b + got_a + got_g
            before = previous_be.get(holding.user, 0.0)
            if holding.served < before - _EPSILON:
                preempted[holding.user] = before - holding.served

        pools = (
            PoolUsage("Cg", eff_g, supply["g"]["guaranteed"],
                      supply["g"]["excess"], supply["g"]["best_effort"]),
            PoolUsage("Ca", eff_a, supply["a"]["guaranteed"],
                      supply["a"]["excess"], supply["a"]["best_effort"]),
            PoolUsage("Cb", eff_b, supply["b"]["guaranteed"],
                      supply["b"]["excess"], supply["b"]["best_effort"]),
        )
        self.last_report = RebalanceReport(
            shortfalls=shortfalls, preempted=preempted,
            adapt_transfer=adapt_transfer, pools=pools)
        if self.observer is not None:
            self.observer(self, self.last_report)
        if self.journal is not None:
            self.journal.append(CAPACITY_REBALANCED, failed=self._failed,
                                committed=self.committed_total(),
                                adapt_transfer=adapt_transfer)
        if self.decisions is not None and (
                shortfalls or preempted or adapt_transfer > _EPSILON):
            # Only eventful passes are provenance-worthy: a quiet
            # water-fill that moved nothing would drown the log.
            self.decisions.decide(
                "rebalance",
                "shortfall" if shortfalls else "adapted",
                subject="partition",
                constraint="capacity" if shortfalls else "",
                reason=f"failed={self._failed:g} "
                       f"adapt_transfer={adapt_transfer:g} "
                       f"shortfalls={len(shortfalls)} "
                       f"preempted={len(preempted)}",
                headroom={"eff_g": eff_g, "eff_a": eff_a, "eff_b": eff_b,
                          "committed": self.committed_total()})
        return self.last_report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def total_served(self) -> float:
        """All capacity currently allocated across every tier."""
        self._flush()
        return (sum(h.served for h in self._guaranteed.values())
                + self.best_effort_served())

    def idle_capacity(self) -> float:
        """Effective capacity not serving anyone."""
        self._flush()
        eff_g, eff_a, eff_b = self.effective_sizes()
        return max(0.0, eff_g + eff_a + eff_b - self.total_served())

    def utilization(self) -> float:
        """Fraction of effective capacity in use (0 when none exists)."""
        self._flush()
        eff_total = sum(self.effective_sizes())
        if eff_total <= 0:
            return 0.0
        return min(1.0, self.total_served() / eff_total)

    def snapshot(self) -> "Dict[str, float]":
        """Flat numeric snapshot for metrics and reports."""
        self._flush()
        eff_g, eff_a, eff_b = self.effective_sizes()
        report = self.last_report
        return {
            "cg": self.cg, "ca": self.ca, "cb": self.cb,
            "eff_g": eff_g, "eff_a": eff_a, "eff_b": eff_b,
            "failed": self._failed,
            "committed": self.committed_total(),
            "guaranteed_served": sum(h.served
                                     for h in self._guaranteed.values()),
            "best_effort_served": self.best_effort_served(),
            "idle": self.idle_capacity(),
            "utilization": self.utilization(),
            "adapt_transfer": (report.adapt_transfer
                               if report is not None else 0.0),
        }
