"""Algorithm 1 under the paper's own function names.

The :class:`AdaptationEngine` exposes the pseudo-code's entry points —
``Available_Guaranteed_Resource``, ``Adapt``,
``Allocate_Guaranteed_Resource``, ``Allocate_Best_Effort_Resource`` —
as snake_case methods over a :class:`~repro.core.capacity.CapacityPartition`,
and keeps the event log the Section 5.6 replay and the benchmarks read.

The engine is the *mechanism*; policy (which SLA to squeeze, when to
run the optimizer) lives in :mod:`repro.core.scenarios` and the broker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sim.trace import TraceRecorder
from .capacity import CapacityPartition, RebalanceReport


@dataclass(frozen=True)
class AllocationDecision:
    """Outcome of one allocation call.

    Attributes:
        user: The requesting user.
        requested: Capacity asked for.
        granted: Capacity actually allocated.
        adapted: Whether ``Adapt()`` had to transfer capacity to serve
            the guaranteed tier during this call.
        preempted: Best-effort capacity reclaimed by this call.
        report: The underlying rebalance report.
    """

    user: str
    requested: float
    granted: float
    adapted: bool
    preempted: float
    report: RebalanceReport

    @property
    def fully_granted(self) -> bool:
        """Whether the full request was served."""
        return self.granted >= self.requested - 1e-9


class AdaptationEngine:
    """Algorithm 1 over one capacity partition.

    Args:
        partition: The managed ``C = Cg + Ca + Cb`` split.
        trace: Optional activity recorder (category ``"adaptation"``).
        now: Callable returning the current time for log stamps.
    """

    def __init__(self, partition: CapacityPartition, *,
                 trace: Optional[TraceRecorder] = None,
                 now=lambda: 0.0) -> None:
        self.partition = partition
        self._trace = trace
        self._now = now
        self.decisions: List[AllocationDecision] = []
        self.adapt_invocations = 0

    # ------------------------------------------------------------------
    # Paper-named primitives
    # ------------------------------------------------------------------

    def available_guaranteed_resource(self, committed: float) -> bool:
        """``Available_Guaranteed_Resource(g(u))``:
        whether ``Σ g(v) + g(u) <= Cg``."""
        return self.partition.available_guaranteed_resource(committed)

    def net_capacity(self) -> float:
        """``Cn(t) = Ca − (Σ c(u,t) − Cg)``: the adaptive head-room
        after covering guaranteed overflow. Negative means guarantees
        cannot be honored from ``Cg + Ca`` alone."""
        entitled = sum(h.entitled
                       for h in self.partition.guaranteed_holdings())
        eff_g, eff_a, _eff_b = self.partition.effective_sizes()
        overflow = max(0.0, entitled - eff_g)
        return eff_a - overflow

    def adapt(self) -> RebalanceReport:
        """``Adapt()``: re-run the water-fill so that any guaranteed
        shortfall is covered from ``Ca`` and then ``Cb`` (down to the
        protected minimum). Returns the rebalance report; its
        ``adapt_transfer`` is the paper's ``ΔG(t)``."""
        self.adapt_invocations += 1
        report = self.partition.rebalance()
        if self._trace is not None and report.adapt_transfer > 0:
            self._trace.record(
                self._now(), "adaptation",
                f"Adapt(): moved {report.adapt_transfer:g} unit(s) to the "
                f"guaranteed tier"
                + (f"; preempted {sum(report.preempted.values()):g} "
                   f"best-effort unit(s)" if report.preempted else ""))
        return report

    def allocate_guaranteed_resource(
            self, user: str, demand: float) -> "Optional[AllocationDecision]":
        """``Allocate_Guaranteed_Resource(c(u,t), g(u))``.

        * demand within ``g(u)`` must be served (``Adapt()`` runs if the
          guaranteed pool alone cannot cover it);
        * demand above ``g(u)`` is the recursive excess claim, served
          opportunistically from adaptive head-room.

        The user must already hold an admitted SLA
        (:meth:`admit_guaranteed`).

        When the partition is in deferred-rebalance mode (batch
        admission), the demand is recorded but no assignment exists
        yet, so ``None`` is returned and no decision is logged — the
        batch's single water-fill settles every member at once.
        """
        before = self.partition.last_report
        before_transfer = before.adapt_transfer if before else 0.0
        report = self.partition.set_guaranteed_demand(user, demand)
        if report is None:
            return None
        holding = self.partition.guaranteed_holding(user)
        adapted = report.adapt_transfer > before_transfer + 1e-9
        if adapted:
            self.adapt_invocations += 1
        decision = AllocationDecision(
            user=user, requested=demand, granted=holding.served,
            adapted=adapted,
            preempted=sum(report.preempted.values()), report=report)
        self.decisions.append(decision)
        self._log_decision("guaranteed", decision)
        return decision

    def allocate_best_effort_resource(self, user: str,
                                      demand: float) -> AllocationDecision:
        """``Allocate_Best_Effort_Resource(b(u,t))``: admit iff the
        demand fits in ``Cb`` plus currently idle ``Cg``/``Ca``
        capacity; granted capacity may be partial (the paper's strict
        variant refuses instead — use
        :meth:`can_allocate_best_effort` first for that behaviour)."""
        report = self.partition.set_best_effort_demand(user, demand)
        served = (self.partition.best_effort_holding(user).served
                  if demand > 0 else 0.0)
        decision = AllocationDecision(
            user=user, requested=demand, granted=served,
            adapted=False, preempted=sum(report.preempted.values()),
            report=report)
        self.decisions.append(decision)
        self._log_decision("best-effort", decision)
        return decision

    def can_allocate_best_effort(self, demand: float) -> bool:
        """The paper's strict test: ``Σ b(u,t) + demand`` fits in
        ``Cb`` plus idle capacity."""
        return demand <= self.partition.idle_capacity() + 1e-9

    # ------------------------------------------------------------------
    # Admission / teardown (delegates)
    # ------------------------------------------------------------------

    def admit_guaranteed(self, user: str, committed: float) -> None:
        """Admit a guaranteed SLA (raises on over-commitment)."""
        self.partition.admit_guaranteed(user, committed)
        if self._trace is not None:
            self._trace.record(
                self._now(), "adaptation",
                f"admitted guaranteed user {user!r} with g(u)={committed:g} "
                f"(Σg={self.partition.committed_total():g} of "
                f"Cg={self.partition.cg:g})")

    def release_guaranteed(self, user: str) -> RebalanceReport:
        """Remove a guaranteed user and rebalance (Scenario 2 trigger)."""
        report = self.partition.remove_guaranteed(user)
        if self._trace is not None:
            self._trace.record(self._now(), "adaptation",
                               f"released guaranteed user {user!r}")
        return report

    def release_best_effort(self, user: str) -> RebalanceReport:
        """Remove a best-effort user and rebalance."""
        return self.partition.set_best_effort_demand(user, 0.0)

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------

    def on_capacity_change(self, delta: float) -> RebalanceReport:
        """React to node failures (``delta < 0``) or repairs.

        This is the compute RM's capacity-change hook; a failure
        triggers ``Adapt()`` implicitly through the rebalance.
        """
        if delta < 0:
            report = self.partition.apply_failure(-delta)
        else:
            report = self.partition.apply_repair(delta)
        if self._trace is not None:
            verb = "failure" if delta < 0 else "repair"
            honored = ("guarantees honored" if report.guarantees_honored
                       else f"SHORTFALL {report.shortfalls}")
            self._trace.record(
                self._now(), "adaptation",
                f"capacity {verb} of {abs(delta):g} unit(s); "
                f"adapt transfer {report.adapt_transfer:g}; {honored}")
        return report

    def _log_decision(self, kind: str, decision: AllocationDecision) -> None:
        if self._trace is None:
            return
        outcome = ("granted" if decision.fully_granted
                   else f"partially granted ({decision.granted:g})")
        extras = []
        if decision.adapted:
            extras.append("via Adapt()")
        if decision.preempted > 0:
            extras.append(f"preempted {decision.preempted:g}")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        self._trace.record(
            self._now(), "adaptation",
            f"{kind} allocation for {decision.user!r}: "
            f"{decision.requested:g} requested, {outcome}{suffix}")
