"""The SOAP-style gateway onto the AQoS broker (Figure 5).

"A client interface application starts at the client side; the client
application communicates with the AQoS broker using SOAP messages over
HTTP protocol" (Section 6). The gateway registers the broker as an
``aqos`` endpoint on a :class:`~repro.xmlmsg.bus.MessageBus` and
handles the four client operations of the Figure 7 interface:

* ``service_request`` — discovery + negotiation; replies with a
  ``service_offer`` message.
* ``accept_offer`` — establishes the SLA; replies with the Table 4
  ``<Service_SLA>`` document.
* ``reject_offer`` — abandons the negotiation.
* ``verify_sla`` — explicit conformance test; replies with the Table 3
  ``<QoS_Levels>`` document.

:class:`ClientStub` is the matching client-side helper, so examples
and tests can drive the broker purely through XML messages.
"""

from __future__ import annotations

from typing import Dict, Optional
from xml.etree import ElementTree as ET

from ..errors import MessageError
from ..sla.negotiation import Negotiation, NegotiationState, Offer, ServiceRequest
from ..xmlmsg import codec
from ..xmlmsg.bus import MessageBus
from ..xmlmsg.document import child_text, element, subelement
from ..xmlmsg.envelope import Envelope
from ..xmlmsg.resilient import ResilientCaller
from .broker import AQoSBroker


class BrokerGateway:
    """Exposes a broker as the ``aqos`` endpoint on a message bus."""

    def __init__(self, broker: AQoSBroker, bus: MessageBus, *,
                 endpoint_name: str = "aqos") -> None:
        self._broker = broker
        self._bus = bus
        self.endpoint_name = endpoint_name
        self._negotiations: Dict[int, Negotiation] = {}
        self._offered_at: Dict[int, float] = {}
        endpoint = bus.endpoint(endpoint_name)
        endpoint.on("service_request", self._on_service_request)
        endpoint.on("accept_offer", self._on_accept_offer)
        endpoint.on("reject_offer", self._on_reject_offer)
        endpoint.on("verify_sla", self._on_verify_sla)
        endpoint.on("renegotiate", self._on_renegotiate)

    @property
    def pending_negotiations(self) -> "tuple[int, ...]":
        """Ids of negotiations still awaiting a client decision."""
        return tuple(self._negotiations)

    def abandon(self, negotiation_id: int) -> bool:
        """Clear a pending negotiation the client never resolved.

        The negotiation leaves the ``OFFERED`` state through the
        regular protocol (a reject), so no state machine is wedged.
        Returns whether the id was pending.
        """
        negotiation = self._negotiations.pop(negotiation_id, None)
        self._offered_at.pop(negotiation_id, None)
        if negotiation is None:
            return False
        if negotiation.state is NegotiationState.OFFERED:
            negotiation.reject()
        return True

    def sweep_stale(self, max_age: float) -> int:
        """Abandon negotiations offered more than ``max_age`` ago.

        With a lossy transport a client's accept/reject can be lost for
        good (circuit open); this sweep guarantees those negotiations
        are cleanly cleared instead of pinning broker state forever.
        Returns the number of negotiations abandoned.
        """
        now = self._bus.sim.now
        stale = [negotiation_id
                 for negotiation_id, offered_at in self._offered_at.items()
                 if now - offered_at > max_age]
        for negotiation_id in stale:
            self.abandon(negotiation_id)
        return len(stale)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _on_service_request(self, envelope: Envelope) -> Envelope:
        request = codec.decode_service_request(envelope.body)
        negotiation, reason = self._broker.negotiate(request)
        if negotiation.state.value != "offered":
            failure = element("Service_Offer_Failure")
            subelement(failure, "Reason", reason or "negotiation failed")
            return envelope.reply("service_offer_failure", failure)
        self._negotiations[negotiation.negotiation_id] = negotiation
        self._offered_at[negotiation.negotiation_id] = self._bus.sim.now
        return envelope.reply(
            "service_offer",
            codec.encode_offers(negotiation.negotiation_id,
                                negotiation.offers))

    def _lookup(self, envelope: Envelope) -> Negotiation:
        negotiation_id = int(child_text(envelope.body, "Negotiation-ID"))
        negotiation = self._negotiations.get(negotiation_id)
        if negotiation is None:
            raise MessageError(
                f"unknown or finished negotiation {negotiation_id}")
        return negotiation

    def _on_accept_offer(self, envelope: Envelope) -> Envelope:
        negotiation = self._lookup(envelope)
        index = int(child_text(envelope.body, "Offer-Index", default="0"))
        negotiation.accept(negotiation.offers[index])
        outcome = self._broker.establish(negotiation)
        del self._negotiations[negotiation.negotiation_id]
        self._offered_at.pop(negotiation.negotiation_id, None)
        if not outcome.accepted or outcome.sla is None:
            failure = element("Establishment_Failure")
            subelement(failure, "Reason", outcome.reason)
            return envelope.reply("establishment_failure", failure)
        return envelope.reply("sla_established",
                              codec.encode_service_sla(outcome.sla))

    def _on_reject_offer(self, envelope: Envelope) -> Envelope:
        negotiation = self._lookup(envelope)
        negotiation.reject()
        del self._negotiations[negotiation.negotiation_id]
        self._offered_at.pop(negotiation.negotiation_id, None)
        acknowledgement = element("Offer_Rejected")
        subelement(acknowledgement, "Negotiation-ID",
                   str(negotiation.negotiation_id))
        return envelope.reply("offer_rejected", acknowledgement)

    def _on_verify_sla(self, envelope: Envelope) -> Envelope:
        sla_id = int(child_text(envelope.body, "SLA-ID"))
        reply = self._broker.verifier.conformance_reply_xml(sla_id)
        return envelope.reply("qos_levels", reply)

    def _on_renegotiate(self, envelope: Envelope) -> Envelope:
        """Mid-session re-negotiation over XML.

        The body carries the SLA id, a replacement
        ``<QoS_Specification>`` and an optional budget rate. On success
        the reply is the updated Table 4 document; on refusal, a
        failure message with the broker's reason.
        """
        from ..xmlmsg.codec import _decode_specification  # noqa: SLF001
        from ..xmlmsg.document import require_child
        body = envelope.body
        sla_id = int(child_text(body, "SLA-ID"))
        specification = _decode_specification(
            require_child(body, "QoS_Specification"))
        budget_text = child_text(body, "Budget_Rate", default="")
        budget = float(budget_text) if budget_text else None
        ok, reason = self._broker.renegotiate_session(
            sla_id, specification, budget_rate=budget)
        if not ok:
            failure = element("Renegotiation_Failure")
            subelement(failure, "Reason", reason)
            return envelope.reply("renegotiation_failure", failure)
        sla = self._broker.repository.get(sla_id)
        return envelope.reply("sla_renegotiated",
                              codec.encode_service_sla(sla))


class ClientStub:
    """Client-side helper sending the Figure 7 XML messages.

    All calls go through a :class:`~repro.xmlmsg.resilient.ResilientCaller`
    so that, under fault injection, lost legs are retried with backoff
    and server-side dedup instead of surfacing to the example code. On
    a perfect transport the caller is pass-through (no extra RNG draws,
    no waits), keeping fault-free runs byte-identical.
    """

    def __init__(self, name: str, bus: MessageBus, *,
                 gateway_name: str = "aqos",
                 caller: Optional[ResilientCaller] = None) -> None:
        self.name = name
        self._gateway_name = gateway_name
        self.caller = caller if caller is not None \
            else ResilientCaller(bus, name=name)

    def _request(self, action: str, body: ET.Element) -> Envelope:
        envelope = Envelope(sender=self.name,
                            recipient=self._gateway_name,
                            action=action, body=body)
        return self.caller.call(envelope)

    def request_service(self, request: ServiceRequest
                        ) -> "tuple[Optional[int], list, str]":
        """Send a ``service_request``; returns
        ``(negotiation_id, offers, failure_reason)``."""
        response = self._request("service_request",
                                 codec.encode_service_request(request))
        if response.action == "service_offer_failure":
            return None, [], child_text(response.body, "Reason")
        negotiation_id, offers = codec.decode_offers(response.body)
        return negotiation_id, offers, ""

    def accept_offer(self, negotiation_id: int, *,
                     offer_index: int = 0):
        """Accept an offer; returns the decoded SLA document (or
        ``None`` with the failure reason)."""
        body = element("Accept_Offer")
        subelement(body, "Negotiation-ID", str(negotiation_id))
        subelement(body, "Offer-Index", str(offer_index))
        response = self._request("accept_offer", body)
        if response.action == "establishment_failure":
            return None, child_text(response.body, "Reason")
        return codec.decode_service_sla(response.body), ""

    def reject_offer(self, negotiation_id: int) -> None:
        """Reject the outstanding offers."""
        body = element("Reject_Offer")
        subelement(body, "Negotiation-ID", str(negotiation_id))
        self._request("reject_offer", body)

    def verify_sla(self, sla_id: int):
        """Explicit SLA verification test; returns the measured values
        decoded from the Table 3 reply."""
        body = element("Verify_SLA")
        subelement(body, "SLA-ID", str(sla_id))
        response = self._request("verify_sla", body)
        return codec.decode_qos_levels(response.body)

    def renegotiate(self, sla_id: int, specification, *,
                    budget_rate: Optional[float] = None):
        """Re-negotiate a live session's QoS; returns the updated SLA
        document (or ``None`` with the broker's refusal reason)."""
        from ..xmlmsg.codec import _encode_specification  # noqa: SLF001
        body = element("Renegotiate")
        subelement(body, "SLA-ID", str(sla_id))
        body.append(_encode_specification(specification))
        if budget_rate is not None:
            subelement(body, "Budget_Rate", f"{budget_rate:.12g}")
        response = self._request("renegotiate", body)
        if response.action == "renegotiation_failure":
            return None, child_text(response.body, "Reason")
        return codec.decode_service_sla(response.body), ""
