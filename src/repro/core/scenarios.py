"""The three adaptation scenarios of Section 4.

* **Scenario 1 — New Service Request**: a request arrives but resources
  are insufficient. The handler queries the repository for active
  services "whose SLAs indicate willingness to accept a degraded QoS
  and/or termination of service", squeezes the degradable ones to their
  floors, and terminates the termination-accepting ones (cheapest
  first) until the request fits.
* **Scenario 2 — Service Termination**: a service completed and
  released resources. The handler (a) restores previously degraded
  sessions, (b) runs the revenue optimizer to upgrade sessions not at
  their best QoS, and (c) presents promotion offers to sessions that
  accept them.
* **Scenario 3 — QoS Degradation**: delivered QoS fell below the SLA.
  The handler first lets the resource-level adaptation run (DSRT
  contract adjustment), then restores at the broker level by squeezing
  others, then degrades the victim itself to an SLA-admissible lower
  point, and finally terminates the session on major unrecoverable
  degradation.

The handlers mutate sessions only through the broker's ``apply_point``
/ ``terminate_session`` entry points, so every move is reflected in the
partition, the reservations, the ledger and the trace at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SLAError
from ..monitoring.notifications import DegradationNotice
from ..obs.decisions import point_payload
from ..sla.document import ServiceSLA

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .broker import AQoSBroker

#: Degradation severity at or above which a session is terminated
#: rather than adapted (the paper's "major QoS degradation").
MAJOR_DEGRADATION = 0.5


@dataclass
class ScenarioStats:
    """Counters for the benchmark harness."""

    squeezes: int = 0
    terminations_for_compensation: int = 0
    restorations: int = 0
    upgrades: int = 0
    promotions_offered: int = 0
    self_degradations: int = 0
    terminal_degradations: int = 0


class ScenarioEngine:
    """Scenario handlers bound to one broker."""

    def __init__(self, broker: "AQoSBroker") -> None:
        self._broker = broker
        self.stats = ScenarioStats()

    # ------------------------------------------------------------------
    # Scenario 1: new service request under pressure
    # ------------------------------------------------------------------

    def free_capacity_for(self, cpu_needed: float,
                          committed_needed: float) -> bool:
        """Try to make room for a new request.

        Args:
            cpu_needed: Instantaneous CPU units the request must be
                served right now.
            committed_needed: ``g(u)`` head-room needed inside ``Cg``
                (0 for best-effort requests).

        Returns:
            Whether the request now fits.
        """
        broker = self._broker
        if self._fits(cpu_needed, committed_needed):
            return True

        # Step 1: squeeze degradable controlled-load sessions to their
        # floors (frees instantaneous capacity, not commitments).
        for sla in broker.repository.degradable():
            if not sla.service_class.adjustable:
                continue
            floor = sla.floor_point()
            if sla.delivered_point != floor and (
                    sla.adaptation.accept_degradation
                    or sla.adaptation.alternative_points):
                lowest = self._lowest_point(sla)
                broker.apply_point(sla, lowest)
                self.stats.squeezes += 1
                if broker.decisions is not None:
                    broker._decide(
                        "adaptation", "squeeze", sla_id=sla.sla_id,
                        subject=f"sla-{sla.sla_id}",
                        reason="Scenario 1: squeezed to floor to free "
                               f"cpu={cpu_needed:g}",
                        chosen={"point": point_payload(lowest)})
                if self._fits(cpu_needed, committed_needed):
                    return True

        # Step 2: terminate sessions that accept termination, cheapest
        # (lowest price rate) first — compensation costs the provider
        # the least that way.
        victims = [sla for sla in broker.repository.active()
                   if sla.adaptation.accept_termination]
        victims.sort(key=lambda sla: sla.price_rate)
        for sla in victims:
            broker._decide("adaptation", "terminate", sla_id=sla.sla_id,
                           subject=f"sla-{sla.sla_id}",
                           constraint="compensation",
                           reason="Scenario 1: terminated (cheapest "
                                  "compensable session) to free capacity")
            broker.terminate_session(sla.sla_id, cause="violation",
                                     note="terminated for compensation "
                                          "(Scenario 1)")
            self.stats.terminations_for_compensation += 1
            if self._fits(cpu_needed, committed_needed):
                return True
        return self._fits(cpu_needed, committed_needed)

    def _fits(self, cpu_needed: float, committed_needed: float) -> bool:
        """Whether the pending request could now be served.

        Commitments must fit inside ``Cg`` (the Algorithm 1 admission
        rule); instantaneous capacity is checked against the compute
        slot table — tier-1 preemption takes care of the partition
        side, but the advance-reservation ledger only frees up when
        squeezed sessions' bookings are actually resized.
        """
        broker = self._broker
        partition = broker.partition
        if committed_needed > 0 and not partition.available_guaranteed_resource(
                committed_needed):
            return False
        now = broker.sim.now
        free = broker.compute_rm.available_at(now)
        return cpu_needed <= free.cpu + 1e-9

    @staticmethod
    def _lowest_point(sla: ServiceSLA) -> "dict":
        """The least-demanding admissible point for a session.

        Prefers the last (most degraded) pre-agreed alternative when
        alternatives were negotiated, falling back to the spec floor.
        """
        candidates = [sla.floor_point()]
        candidates.extend(point for point in sla.adaptation.alternative_points
                          if sla.specification.admits(point))
        def cpu_of(point):
            from ..qos.specification import QoSSpecification
            return QoSSpecification.point_demand(point).cpu
        return min(candidates, key=cpu_of)

    # ------------------------------------------------------------------
    # Scenario 2: service termination frees resources
    # ------------------------------------------------------------------

    def on_service_termination(self) -> None:
        """Use freed resources: restore, upgrade, promote."""
        broker = self._broker

        # (a) restore sessions that adaptation previously degraded.
        for sla in broker.repository.degraded():
            restored = broker.try_apply_point(sla, sla.agreed_point)
            if restored:
                self.stats.restorations += 1
                if broker.decisions is not None:
                    broker._decide(
                        "adaptation", "restore", sla_id=sla.sla_id,
                        subject=f"sla-{sla.sla_id}",
                        reason="Scenario 2: freed resources restored "
                               "the agreed point",
                        chosen={"point": point_payload(sla.agreed_point)})

        # (b) upgrade sessions not receiving their best QoS (the
        # revenue optimizer decides who, within SLA bounds).
        result = broker.run_optimizer()
        if result is not None:
            self.stats.upgrades += sum(
                1 for key, candidate in result.assignment.items()
                if broker.delivers_point(key, candidate.point))

        # (c) promotion offers to sessions that accept them.
        for sla in broker.repository.active():
            if not sla.adaptation.accept_promotion:
                continue
            if not sla.service_class.may_receive_promotions:
                continue
            best = sla.specification.best_point()
            if sla.delivered_point == best:
                continue
            accepted = broker.offer_promotion(sla, best)
            self.stats.promotions_offered += 1
            if accepted:
                self.stats.upgrades += 1

    # ------------------------------------------------------------------
    # Scenario 3: QoS degradation
    # ------------------------------------------------------------------

    def on_degradation(self, notice: DegradationNotice) -> None:
        """Restore, degrade-in-place, or terminate a degraded session."""
        broker = self._broker
        try:
            sla = broker.repository.get(notice.sla_id)
        except SLAError:
            return
        if not sla.status.is_live or not sla.service_class.monitored:
            return

        # Resource-management-level adaptation first (Section 3.2): let
        # DSRT reclaim over-reserved CPU before the broker intervenes.
        broker.compute_rm.dsrt.adjust_contracts()

        # Broker-level restore: squeeze others so this session's
        # entitled demand is served again.
        holding = broker.partition_holding(sla.sla_id)
        if holding is not None and holding.shortfall > 1e-9:
            freed = self.free_capacity_for(holding.shortfall, 0.0)
            broker.partition.rebalance()
            holding = broker.partition_holding(sla.sla_id)
            if freed and holding is not None and holding.shortfall <= 1e-9:
                self.stats.restorations += 1
                broker.record(f"Scenario 3: restored SLA {sla.sla_id} by "
                              f"squeezing other sessions")
                broker._decide("adaptation", "restore", sla_id=sla.sla_id,
                               subject=f"sla-{sla.sla_id}",
                               reason="Scenario 3: restored by squeezing "
                                      "other sessions")
                return

        severity = notice.severity
        if sla.service_class.adjustable:
            # Degrade in place to a pre-agreed lower point.
            lowest = self._lowest_point(sla)
            if sla.delivered_point != lowest:
                if broker.try_apply_point(sla, lowest):
                    self.stats.self_degradations += 1
                    broker.record(f"Scenario 3: degraded SLA {sla.sla_id} "
                                  f"to a pre-agreed lower QoS")
                    if broker.decisions is not None:
                        broker._decide(
                            "adaptation", "degrade", sla_id=sla.sla_id,
                            subject=f"sla-{sla.sla_id}",
                            reason=f"Scenario 3: degraded in place "
                                   f"(severity {severity:.2f})",
                            chosen={"point": point_payload(lowest)})
                    return

        if severity >= MAJOR_DEGRADATION:
            broker._decide("adaptation", "terminate", sla_id=sla.sla_id,
                           subject=f"sla-{sla.sla_id}",
                           constraint="major-degradation",
                           reason=f"Scenario 3: severity {severity:.2f} >= "
                                  f"{MAJOR_DEGRADATION:g} and no restore "
                                  f"or degrade-in-place succeeded")
            broker.terminate_session(sla.sla_id, cause="violation",
                                     note="major QoS degradation "
                                          "(Scenario 3)")
            self.stats.terminal_degradations += 1
        else:
            # Restoration failed but the degradation is tolerable:
            # penalize per the SLA and alert the client.
            broker.penalize(sla, notice)
            broker.record(f"Scenario 3: SLA {sla.sla_id} degraded "
                          f"(severity {severity:.2f}); client alerted")
            broker._decide("adaptation", "penalize", sla_id=sla.sla_id,
                           subject=f"sla-{sla.sla_id}",
                           reason=f"Scenario 3: tolerable degradation "
                                  f"(severity {severity:.2f}); penalized "
                                  f"per the SLA")
