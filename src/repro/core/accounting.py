"""QoS accounting (Figure 3's Active- and Clearing-phase function).

The ledger integrates each session's price rate over time — rates
change when adaptation or the optimizer moves the delivered operating
point — subtracts SLA-violation penalties, and records promotion
offers, so the provider-revenue benchmarks ("increase the profits of
the service provider", Scenario 2) have an auditable money trail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SessionAccount:
    """The money trail of one session.

    Attributes:
        sla_id: The session's SLA.
        segments: Closed ``(start, end, rate)`` spans.
        open_since: Start of the currently accruing span.
        current_rate: Rate of the currently accruing span.
        penalties: ``(time, amount, reason)`` deductions.
        promotions_offered / promotions_accepted: Promotion counters.
        closed: Whether the session has ended.
    """

    sla_id: int
    segments: "List[Tuple[float, float, float]]" = field(default_factory=list)
    open_since: Optional[float] = None
    current_rate: float = 0.0
    penalties: "List[Tuple[float, float, str]]" = field(default_factory=list)
    promotions_offered: int = 0
    promotions_accepted: int = 0
    closed: bool = False

    def gross_revenue(self, now: Optional[float] = None) -> float:
        """Rate integrated over all spans (open span up to ``now``)."""
        total = sum((end - start) * rate
                    for start, end, rate in self.segments)
        if self.open_since is not None and now is not None:
            total += max(0.0, now - self.open_since) * self.current_rate
        return total

    def total_penalties(self) -> float:
        """Sum of all penalty deductions."""
        return sum(amount for _time, amount, _reason in self.penalties)

    def net_revenue(self, now: Optional[float] = None) -> float:
        """Gross revenue minus penalties."""
        return self.gross_revenue(now) - self.total_penalties()


class AccountingLedger:
    """Provider-side ledger across all sessions."""

    def __init__(self) -> None:
        self._accounts: Dict[int, SessionAccount] = {}

    def account(self, sla_id: int) -> SessionAccount:
        """The account for an SLA (created on first touch)."""
        if sla_id not in self._accounts:
            self._accounts[sla_id] = SessionAccount(sla_id=sla_id)
        return self._accounts[sla_id]

    def session_started(self, sla_id: int, time: float,
                        rate: float) -> None:
        """Begin accruing revenue for a session."""
        account = self.account(sla_id)
        account.open_since = time
        account.current_rate = rate
        account.closed = False

    def rate_changed(self, sla_id: int, time: float, rate: float) -> None:
        """Close the current span and continue at a new rate.

        Called whenever adaptation or the optimizer moves a session's
        delivered operating point (and therefore its price).
        """
        account = self.account(sla_id)
        if account.open_since is not None:
            account.segments.append(
                (account.open_since, time, account.current_rate))
        account.open_since = time
        account.current_rate = rate

    def add_penalty(self, sla_id: int, time: float, amount: float,
                    reason: str) -> None:
        """Record an SLA-violation penalty."""
        if amount <= 0:
            return
        self.account(sla_id).penalties.append((time, amount, reason))

    def promotion_offered(self, sla_id: int,
                          accepted: bool = False) -> None:
        """Record a Scenario 2 promotion offer (and its outcome)."""
        account = self.account(sla_id)
        account.promotions_offered += 1
        if accepted:
            account.promotions_accepted += 1

    def session_ended(self, sla_id: int, time: float) -> None:
        """Stop accruing revenue for a session."""
        account = self.account(sla_id)
        if account.open_since is not None:
            account.segments.append(
                (account.open_since, time, account.current_rate))
            account.open_since = None
        account.closed = True

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def accounts(self) -> List[SessionAccount]:
        """All accounts, by SLA id."""
        return [self._accounts[sla_id] for sla_id in sorted(self._accounts)]

    def provider_gross(self, now: Optional[float] = None) -> float:
        """Total gross revenue across sessions."""
        return sum(account.gross_revenue(now) for account in self.accounts())

    def provider_net(self, now: Optional[float] = None) -> float:
        """Total net revenue (gross minus penalties)."""
        return sum(account.net_revenue(now) for account in self.accounts())

    def total_penalties(self) -> float:
        """Total penalties across sessions."""
        return sum(account.total_penalties() for account in self.accounts())


def render_invoice(account: SessionAccount, *,
                   now: Optional[float] = None,
                   client: str = "", service: str = "") -> str:
    """Render one session's money trail as a plain-text invoice.

    The Clearing phase "settles accounting"; this is the artifact a
    provider would hand the client: per-rate billing spans, penalty
    deductions, promotion history and the net total.
    """
    lines = [f"Invoice — SLA {account.sla_id}"]
    if client:
        lines.append(f"Client:  {client}")
    if service:
        lines.append(f"Service: {service}")
    lines.append("-" * 44)
    spans = list(account.segments)
    if account.open_since is not None and now is not None:
        spans.append((account.open_since, now, account.current_rate))
    for start, end, rate in spans:
        amount = (end - start) * rate
        lines.append(f"  [{start:10.2f} .. {end:10.2f}] "
                     f"@ {rate:8.3f}  = {amount:10.2f}")
    lines.append(f"  gross revenue{'':>21}{account.gross_revenue(now):10.2f}")
    for time, amount, reason in account.penalties:
        label = reason if len(reason) <= 24 else reason[:21] + "..."
        lines.append(f"  penalty at {time:10.2f} ({label})"
                     f"  -{amount:.2f}")
    if account.penalties:
        lines.append(f"  total penalties{'':>19}"
                     f"{-account.total_penalties():10.2f}")
    if account.promotions_offered:
        lines.append(f"  promotions: {account.promotions_offered} "
                     f"offered, {account.promotions_accepted} accepted")
    lines.append("-" * 44)
    lines.append(f"  NET DUE{'':>27}{account.net_revenue(now):10.2f}")
    if account.closed:
        lines.append("  (session closed)")
    return "\n".join(lines)
