"""Exception hierarchy for the G-QoSM reproduction.

Every error raised by the library derives from :class:`GQoSMError`, so
callers embedding the broker in a larger system can catch one base type.
The hierarchy mirrors the subsystems: reservation failures come from the
GARA layer, admission failures from the adaptation core, negotiation
failures from the SLA layer, and so on.
"""

from __future__ import annotations


class GQoSMError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class UnitError(GQoSMError, ValueError):
    """A quantity string could not be parsed or converted."""


class ValidationError(GQoSMError, ValueError):
    """A constructor or configuration argument is outside its domain.

    Derives from :class:`ValueError` as well, so call sites written
    against the stdlib type before the hierarchy was unified keep
    working unchanged.
    """


class SimulationError(GQoSMError):
    """The discrete-event engine was driven incorrectly.

    Examples: scheduling an event in the past, or running a simulator
    that was already stopped.
    """


class MessageError(GQoSMError):
    """An XML message could not be encoded or decoded."""


class TransientMessageError(MessageError):
    """A delivery failure that a retry may cure.

    Base class for the failures the chaos layer injects on the message
    bus; :class:`~repro.xmlmsg.resilient.ResilientCaller` retries these
    (and only these) with backoff.
    """


class MessageDropped(TransientMessageError):
    """An envelope was lost in flight (request or reply leg).

    The synchronous caller observes the loss as a timeout on the
    simulation clock; an asynchronous notification lands in the bus's
    dead-letter record instead.
    """


class RemoteFaultError(TransientMessageError):
    """The remote endpoint answered with a transport-level fault.

    Models a SOAP fault / HTTP 5xx: the handler may or may not have
    run, so recovery requires an idempotent retry.
    """


class CircuitOpenError(MessageError):
    """Retries against an endpoint are exhausted; the circuit is open.

    Raised immediately (without touching the bus) until the breaker's
    cooldown expires, so a dead dependency cannot stall every caller.
    """


class RSLError(GQoSMError, ValueError):
    """A Globus RSL resource-specification string failed to parse."""


class QoSSpecificationError(GQoSMError, ValueError):
    """A QoS parameter or specification is malformed.

    Examples: a range whose low bound exceeds its high bound, or a
    discrete value list that is empty.
    """


class SLAError(GQoSMError):
    """Base class for SLA-layer errors."""


class NegotiationError(SLAError):
    """The negotiation protocol was driven out of order or failed."""


class SLAViolationError(SLAError):
    """Raised when an operation would violate an established SLA."""


class LifecycleError(SLAError):
    """An illegal QoS-session phase transition was attempted."""


class ReservationError(GQoSMError):
    """Base class for GARA reservation-layer errors."""


class ReservationNotFound(ReservationError, KeyError):
    """The reservation handle does not refer to a live reservation."""


class ReservationStateError(ReservationError):
    """The reservation is in the wrong state for the requested call."""


class CapacityError(ReservationError):
    """There is not enough capacity to satisfy a reservation/claim."""


class AdmissionError(GQoSMError):
    """The adaptation core rejected an allocation request."""


class RegistryError(GQoSMError):
    """A registry (UDDIe) operation failed."""


class ServiceNotFound(RegistryError, KeyError):
    """No registered service matches the requested key or query."""


class ResourceError(GQoSMError):
    """A resource-manager (compute or network) operation failed."""


class NetworkError(ResourceError):
    """A network-resource-manager operation failed.

    Examples: no path between endpoints, or a bandwidth allocation on
    an unknown link.
    """


class MonitoringError(GQoSMError):
    """A monitoring subsystem (sensor / MDS / verifier) call failed."""


class InstantNotFound(GQoSMError, KeyError):
    """A worked-example timeline lookup named an unknown instant."""


class AnalysisError(GQoSMError):
    """The static-analysis engine was driven incorrectly.

    Examples: analysing a path that contains no Python modules, or
    loading a baseline file with an unknown schema version.
    """


class RecoveryError(GQoSMError):
    """The recovery layer was driven incorrectly.

    Examples: recovering a testbed that has no journal installed, or
    decoding a journal/snapshot record with an unknown type.
    """


class FederationError(GQoSMError):
    """The federated control plane was driven incorrectly.

    Examples: routing a request to an unknown home domain, crashing a
    domain that is already down, or declaring a partition whose window
    ends before it starts.
    """


class BrokerCrash(GQoSMError):
    """A simulated crash of the broker process.

    Raised by the crash-point injection layer at a chosen journal
    write; everything the broker holds only in memory is considered
    lost at the point this propagates, while the authoritative
    GARA/NRM state and the journal survive.
    """
